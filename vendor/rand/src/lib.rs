//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no registry access, so this vendored shim
//! implements exactly the API surface the workspace consumes:
//! [`rngs::StdRng`] (seeded via [`SeedableRng::seed_from_u64`]), and the
//! [`Rng`] extension methods `gen` and `gen_range`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms,
//! which is all the workloads and tests require.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Produce the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods for sampling typed values, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair coin, integers uniform).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for this type.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from this range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let u: f64 = f64::sample(rng);
                self.start + (self.end - self.start) * u as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream `rand`'s ChaCha-based `StdRng`, this is not
    /// cryptographic — it only needs to be fast, well-distributed, and
    /// stable across platforms for reproducible workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=4);
            assert!((0..=4).contains(&y));
            let f = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
