//! The [`Strategy`] trait and the combinators the workspace's property
//! suites use: ranges, tuples, [`Just`], [`Map`] (via `prop_map`),
//! [`Union`] (via `prop_oneof!`) and boxing.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A generator of test-case values.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply produces a value from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
