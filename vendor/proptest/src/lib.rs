//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container has no registry access, so this vendored shim
//! reimplements the subset of proptest the workspace's property suites use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` and boxing,
//! * range / tuple / [`strategy::Just`] strategies,
//! * [`collection::vec`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros,
//! * [`test_runner::ProptestConfig`] / [`test_runner::TestCaseError`].
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name), so failures reproduce exactly on re-run. There is **no
//! shrinking**: a failing case reports its case index and the failed
//! assertion, which for this workspace's small value spaces is enough to
//! debug directly.

#![warn(missing_docs)]

pub mod strategy;

/// Strategies over collections (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy producing `Vec<S::Value>` with a length drawn from a
    /// [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A fixed or bounded length specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            SizeRange { lo, hi: hi + 1 }
        }
    }

    /// `proptest::collection::vec`: a strategy for vectors whose elements
    /// come from `element` and whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner machinery: configuration, error type, and the case loop the
/// [`proptest!`] macro expands into.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration. Only `cases` is honoured by this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Fail the current case with `message`.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// FNV-1a, used to derive a stable per-test seed from the test name.
    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Run `body` for `config.cases` deterministic cases, panicking (as the
    /// surrounding `#[test]` expects) on the first failure.
    pub fn run_cases<F>(config: ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        for case in 0..config.cases as u64 {
            let mut rng = StdRng::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest property `{name}` failed at case {case}/{}: {e}",
                    config.cases
                );
            }
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` header followed by `#[test] fn name(arg in
/// strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            $crate::test_runner::run_cases($cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a [`proptest!`] body, failing the case (not
/// panicking) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($lhs),
                    stringify!($rhs),
                    lhs,
                    rhs
                ),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {} ({}): left {:?}, right {:?}",
                    stringify!($lhs),
                    stringify!($rhs),
                    format!($($fmt)+),
                    lhs,
                    rhs
                ),
            ));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        // Push-after-new keeps each arm a distinct coercion site for the
        // unsized `Box<dyn Strategy>` cast, which `vec![]` would not give.
        #[allow(clippy::vec_init_then_push)]
        let __arms = {
            let mut __arms: ::std::vec::Vec<
                ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
            > = ::std::vec::Vec::new();
            $(__arms.push(::std::boxed::Box::new($arm));)+
            __arms
        };
        $crate::strategy::Union::new(__arms)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Union;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..10, x in -1.5f64..1.5) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-1.5..1.5).contains(&x));
        }

        #[test]
        fn prop_map_applies(v in (0usize..5).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 10);
        }

        #[test]
        fn tuples_and_oneof(pair in ((0usize..4), (0u64..9)), pick in prop_oneof![
            Just(1usize),
            10usize..20,
        ]) {
            prop_assert!(pair.0 < 4 && pair.1 < 9);
            prop_assert!(pick == 1 || (10..20).contains(&pick));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0usize..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn union_covers_all_arms() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let u: Union<usize> = prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(_x in 0usize..4) {
                prop_assert!(false, "intentional");
            }
        }
        always_fails();
    }
}
