//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no registry access, so this vendored shim
//! implements the subset of criterion's API the workspace's `harness =
//! false` benches use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a simple wall-clock loop (median
//! of per-iteration means over a fixed sample count) printed as
//! `name ... time: <value>` — enough to eyeball regressions, with none of
//! upstream's statistics machinery.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness state; handed to every function in a
/// [`criterion_group!`].
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep `cargo bench` fast: per-sample adaptive iteration counts
        // below make total runtime roughly sample_size x ~2ms per bench.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Override the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_bench(name, sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (upstream emits summary reports here; the shim
    /// prints per-bench lines eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identify a benchmark by parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, recording one sample of `iters_per_sample`
    /// iterations (call sites invoke this once per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate: run once to size per-sample iteration counts so a full
    // bench takes on the order of milliseconds, not minutes.
    let mut calib = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut calib);
    let once = calib.samples.first().copied().unwrap_or(Duration::ZERO);
    let target = Duration::from_millis(2);
    let iters = if once.is_zero() {
        64
    } else {
        (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 64) as u64
    };

    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let lo = bencher.samples[0];
    let hi = bencher.samples[bencher.samples.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi)
    );
}

/// Bundle benchmark functions into a single runner function, mirroring
/// criterion's macro of the same name (the `config = ..` form is not
/// supported by the shim).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running one or more [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; the shim
            // accepts and ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default();
        c.sample_size(3);
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("eqm", 16).to_string(), "eqm/16");
        assert_eq!(BenchmarkId::from("pp").to_string(), "pp");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }

    #[test]
    fn group_macro_compiles() {
        criterion_group!(benches, sample_bench);
        let _ = benches;
    }
}
