//! Compiles a circuit with ququart compression and *proves* the result
//! correct by simulating both the logical circuit (ideal qubits) and the
//! compiled physical circuit (4-level transmons), then folding the
//! physical state back onto the logical basis.
//!
//! ```text
//! cargo run --release --example verified_compilation
//! ```

use qompress::{Compiler, PhysicalOp, Strategy};
use qompress_arch::Topology;
use qompress_circuit::{Circuit, Gate};
use qompress_sim::{
    apply_internal, apply_merged, apply_single, apply_two_unit, extract_logical_state,
    physical_zero_state, simulate_logical,
};

fn main() {
    // A 3-qubit Toffoli plus preparation: a state with real entanglement.
    let mut circuit = Circuit::new(3);
    circuit.push(Gate::h(0));
    circuit.push(Gate::h(1));
    circuit.push_ccx(0, 1, 2);

    let topology = Topology::line(3);
    let session = Compiler::builder().build();
    let result = session.compile(&circuit, &topology, Strategy::RingBased);

    println!(
        "compiled with {}: {} physical ops, pairs {:?}",
        result.strategy,
        result.schedule.len(),
        result.pairs
    );

    // Reference: ideal logical simulation.
    let logical = simulate_logical(&circuit, &[0, 0, 0]);

    // Physical: run every scheduled op on 4-level units.
    let mut phys = physical_zero_state(topology.n_nodes());
    for sop in result.schedule.ops() {
        match sop.op {
            PhysicalOp::Single { unit, kind, class } => apply_single(&mut phys, unit, kind, class),
            PhysicalOp::Merged { unit, kind0, kind1 } => {
                apply_merged(&mut phys, unit, kind0, kind1)
            }
            PhysicalOp::Internal { unit, class } => apply_internal(&mut phys, unit, class),
            PhysicalOp::TwoUnit { a, b, class } => apply_two_unit(&mut phys, a, b, class),
        }
    }

    let (folded, captured) =
        extract_logical_state(&phys, &result.final_placements, &result.encoded_units);

    println!("\ncaptured probability in the logical subspace: {captured:.9}");
    println!("\n  state      logical         compiled");
    for (idx, (l, p)) in logical.amplitudes().iter().zip(folded.iter()).enumerate() {
        if l.abs() > 1e-9 || p.abs() > 1e-9 {
            println!("  |{idx:03b}>   {l}   {p}");
        }
    }

    let max_diff = logical
        .amplitudes()
        .iter()
        .zip(folded.iter())
        .map(|(l, p)| (*l - *p).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax amplitude difference: {max_diff:.2e}");
    assert!(max_diff < 1e-9, "compiled state must match");
    println!("compiled circuit verified equivalent to the logical circuit.");
}
