//! CI smoke test of the compilation service: drives a 13-job sweep
//! through the wire protocol over the in-memory loopback transport —
//! submit, poll, deterministic cancellation of still-queued jobs, and
//! streamed per-job completions — then asserts the streamed results are
//! **byte-identical** (by full-result fingerprint) to the same sweep run
//! through `Compiler::compile_batch`, and writes a machine-readable
//! snapshot to `results/service_sweep.json`.
//!
//! ```text
//! cargo run --release --example service_sweep [workers]
//! ```

use qompress::{BatchJob, Compiler, Strategy};
use qompress_arch::Topology;
use qompress_circuit::Circuit;
use qompress_qasm::to_qasm;
use qompress_service::{loopback, result_fingerprint, serve_duplex, ServiceClient, ServiceEvent};
use qompress_workloads::{build, random_circuit, Benchmark};
use std::collections::HashMap;
use std::io::{BufReader, Write as _};
use std::path::PathBuf;
use std::sync::Arc;

/// One sweep entry: label, circuit, strategy, topology spec.
struct SweepJob {
    label: String,
    circuit: Circuit,
    strategy: Strategy,
    topology: String,
}

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    let jobs = sweep_jobs(8);
    assert_eq!(jobs.len(), 13, "the CI sweep is pinned at 13 jobs");
    println!(
        "service sweep: {} jobs over the loopback wire protocol ({workers} workers)\n",
        jobs.len()
    );

    // The server side: one shared session behind the wire protocol.
    let session = Arc::new(Compiler::builder().workers(workers).build());
    let (client_end, server_end) = loopback();
    let (server_reader, server_writer) = server_end.split();
    let server = std::thread::spawn(move || serve_duplex(session, server_reader, server_writer));
    let (reader, writer) = client_end.split();
    let mut client = ServiceClient::new(BufReader::new(reader), writer);

    // Phase 1 — deterministic cancellation: with the workers paused,
    // submit three extra jobs, verify they are queued, cancel them. No
    // race: a paused pool claims nothing.
    client.pause().expect("pause");
    let mut cancelled_ids = Vec::new();
    for i in 0..3 {
        let id = client
            .submit(
                &format!("cancelled-{i}"),
                Strategy::Eqm,
                "grid:8",
                &to_qasm(&build(Benchmark::Cuccaro, 8, 11 + i)),
            )
            .expect("submit cancel-target");
        assert_eq!(client.poll(id).expect("poll"), "queued");
        assert!(client.cancel(id).expect("cancel"), "queued job must cancel");
        assert_eq!(client.poll(id).expect("poll"), "cancelled");
        cancelled_ids.push(id);
    }

    // Phase 2 — the sweep itself, still paused so ids are stable, then
    // one resume releases the whole queue.
    let mut submitted = HashMap::new();
    for job in &jobs {
        let id = client
            .submit(
                &job.label,
                job.strategy,
                &job.topology,
                &to_qasm(&job.circuit),
            )
            .expect("submit sweep job");
        submitted.insert(id, job.label.clone());
    }
    client.resume().expect("resume");

    // Phase 3 — stream completions as they finish: 3 cancellations (they
    // fired at cancel time) + 13 dones, interleaved in completion order.
    let mut done_events = HashMap::new();
    let mut cancelled_seen = Vec::new();
    while done_events.len() < jobs.len() || cancelled_seen.len() < cancelled_ids.len() {
        match client.next_event().expect("event stream") {
            ServiceEvent::Done {
                job,
                label,
                strategy,
                result_fp,
                metrics,
            } => {
                assert_eq!(submitted[&job], label, "event label matches submit");
                done_events.insert(label, (job, strategy, result_fp, metrics));
            }
            ServiceEvent::Cancelled { job, .. } => cancelled_seen.push(job),
            ServiceEvent::Failed { job, label, error } => {
                panic!("job {job} `{label}` failed: {error}")
            }
        }
    }
    cancelled_seen.sort_unstable();
    assert_eq!(cancelled_seen, cancelled_ids, "every cancel streamed");
    for id in submitted.keys() {
        assert_eq!(client.poll(*id).expect("poll"), "done");
    }

    // Phase 4 — the equivalence pin: run the identical sweep through
    // `compile_batch` on a fresh session and compare full-result
    // fingerprints (byte-identity of every observable field).
    let batch_jobs: Vec<BatchJob> = jobs
        .iter()
        .map(|j| {
            BatchJob::new(
                j.label.clone(),
                j.circuit.clone(),
                j.strategy,
                topology_of(&j.topology),
            )
        })
        .collect();
    let batch_session = Compiler::builder().workers(workers).build();
    let batch = batch_session.compile_batch(&batch_jobs);
    for r in &batch.results {
        let (_, strategy, wire_fp, metrics) = &done_events[&r.label];
        let want_fp = result_fingerprint(&r.result);
        assert_eq!(
            *wire_fp, want_fp,
            "`{}`: streamed result differs from compile_batch",
            r.label
        );
        assert_eq!(strategy, &r.result.strategy, "{}", r.label);
        assert_eq!(metrics.total_eps, r.result.metrics.total_eps, "{}", r.label);
        println!(
            "  {:<28} total EPS {:.4}  fp {:016x}  == batch ✓",
            r.label, r.result.metrics.total_eps, want_fp
        );
    }

    // Phase 5 — exact service-side accounting over the wire.
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.service.submitted,
        (jobs.len() + cancelled_ids.len()) as u64
    );
    assert_eq!(stats.service.completed, jobs.len() as u64);
    assert_eq!(stats.service.cancelled, cancelled_ids.len() as u64);
    assert_eq!(
        stats.service.queued + stats.service.running + stats.service.failed,
        0
    );
    println!("\nservice: {}", stats.service);
    println!("server cache: {}", stats.cache);
    println!("batch-session cache: {}", batch_session.cache_stats());

    let path = write_json(&batch, &stats, workers, &cancelled_ids, &done_events);
    println!("\nwrote {}", path.display());

    drop(client);
    server
        .join()
        .expect("server thread")
        .expect("clean server shutdown");
}

/// The pinned 13-job sweep: two benchmarks × four strategies on the paper
/// grid, the AWE contraction on a line, and three QASM-generator random
/// circuits.
fn sweep_jobs(size: usize) -> Vec<SweepJob> {
    let cuccaro = build(Benchmark::Cuccaro, size, 7);
    let bv = build(Benchmark::Bv, size, 7);
    let mut jobs = Vec::new();
    for (name, circuit) in [("cuccaro", &cuccaro), ("bv", &bv)] {
        for strategy in [
            Strategy::QubitOnly,
            Strategy::Eqm,
            Strategy::RingBased,
            Strategy::ProgressivePairing,
        ] {
            jobs.push(SweepJob {
                label: format!("{name}/grid/{}", strategy.name()),
                circuit: circuit.clone(),
                strategy,
                topology: format!("grid:{size}"),
            });
        }
    }
    jobs.push(SweepJob {
        label: "cuccaro/line/awe".to_string(),
        circuit: cuccaro,
        strategy: Strategy::Awe,
        topology: format!("line:{size}"),
    });
    jobs.push(SweepJob {
        label: "bv/ring/awe".to_string(),
        circuit: bv,
        strategy: Strategy::Awe,
        topology: format!("ring:{size}"),
    });
    for seed in 0..3u64 {
        jobs.push(SweepJob {
            label: format!("random-{seed}/grid/eqm"),
            circuit: random_circuit(6, 24, seed),
            strategy: Strategy::Eqm,
            topology: "grid:6".to_string(),
        });
    }
    jobs
}

/// Builds the topology a spec names (mirrors the server's parser — the
/// example compares against an in-process batch, so it needs the same
/// structures client-side).
fn topology_of(spec: &str) -> Topology {
    qompress_service::parse_topology_spec(spec).expect("example specs are valid")
}

/// Hand-rolled JSON emission (the offline build has no serde); labels are
/// `a-z0-9/-` only, so no string escaping is needed.
fn write_json(
    batch: &qompress::BatchResult,
    stats: &qompress_service::StatsSnapshot,
    workers: usize,
    cancelled: &[u64],
    done: &HashMap<String, (u64, String, u64, qompress_service::WireMetrics)>,
) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("service_sweep.json");
    let mut file = std::fs::File::create(&path).expect("create service_sweep.json");

    let mut rows = Vec::new();
    for r in &batch.results {
        let (job, strategy, fp, metrics) = &done[&r.label];
        rows.push(format!(
            "    {{\"job\": {job}, \"label\": \"{}\", \"strategy\": \"{strategy}\", \
             \"total_eps\": {:.9}, \"duration_ns\": {:.3}, \"communication_ops\": {}, \
             \"result_fp\": \"{fp:016x}\", \"matches_batch\": true}}",
            r.label, metrics.total_eps, metrics.duration_ns, metrics.communication_ops,
        ));
    }
    let cancelled_list: Vec<String> = cancelled.iter().map(u64::to_string).collect();
    let s = &stats.service;
    let c = &stats.cache;
    writeln!(
        file,
        "{{\n  \"workers\": {},\n  \"cancelled_jobs\": [{}],\n  \"service\": \
         {{\"submitted\": {}, \"completed\": {}, \"cancelled\": {}, \"failed\": {}}},\n  \
         \"cache\": {},\n  \"jobs\": [\n{}\n  ]\n}}",
        workers,
        cancelled_list.join(", "),
        s.submitted,
        s.completed,
        s.cancelled,
        s.failed,
        c.to_json(),
        rows.join(",\n")
    )
    .expect("write service_sweep.json");
    path
}
