//! CI gate for parametric skeleton compilation: runs one 32-binding
//! sweep as **1 structural compile + 32 stamps** and the same workload
//! as **32 full compiles**, asserts the sweep did exactly one structural
//! compile (pinned by skeleton-cache stats), that every stamped result
//! is byte-identical to its direct compile, and that the warm bind+stamp
//! path is at least 10x faster than recompiling. Writes a
//! machine-readable snapshot to `results/sweep_perf.json`.
//!
//! ```text
//! cargo run --release --example sweep_perf
//! ```

use qompress::{Compiler, Strategy};
use qompress_arch::Topology;
use qompress_qasm::random_parametric_circuit;
use qompress_service::result_fingerprint;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Pinned sweep width: one VQE-style iteration batch.
const N_BINDINGS: usize = 32;

/// Floor on the warm bind+stamp speedup over full recompilation.
const MIN_STAMP_SPEEDUP: f64 = 10.0;

fn main() {
    let skeleton = random_parametric_circuit(12, 260, 4, 7);
    assert!(skeleton.site_count() > 0, "fixture must have live sites");
    let topo = Topology::grid(12);
    let strategy = Strategy::Eqm;
    let bindings: Vec<Vec<f64>> = (0..N_BINDINGS)
        .map(|i| {
            (0..skeleton.n_params())
                .map(|p| 0.1 + 0.19 * i as f64 + 0.47 * p as f64)
                .collect()
        })
        .collect();
    println!(
        "sweep perf: {} qubits, {} gates ({} parametric sites over {} params), {} bindings\n",
        skeleton.n_qubits(),
        skeleton.len(),
        skeleton.site_count(),
        skeleton.n_params(),
        N_BINDINGS
    );

    // Sweep path, cold: one structural compile + N stamps.
    let session = Compiler::new();
    let cold = session.compile_sweep(&skeleton, &topo, strategy, &bindings);
    assert_eq!(
        (cold.skeleton_cache.misses, cold.skeleton_cache.hits),
        (1, N_BINDINGS as u64 - 1),
        "a cold sweep must compile the structure exactly once"
    );

    // Direct path: N full pipeline runs, caching off.
    let direct_session = Compiler::builder().caching(false).build();
    let direct_start = Instant::now();
    let direct: Vec<_> = bindings
        .iter()
        .map(|angles| direct_session.compile(&skeleton.bind(angles), &topo, strategy))
        .collect();
    let direct_elapsed = direct_start.elapsed();

    // Byte-identity, binding by binding.
    for (i, (stamped, fresh)) in cold.results.iter().zip(&direct).enumerate() {
        assert_eq!(
            result_fingerprint(stamped),
            result_fingerprint(fresh),
            "binding {i}: stamped result diverged from its direct compile"
        );
    }

    // Sweep path, warm: the artifact is cached, so this times the pure
    // bind+stamp serving cost.
    let warm_start = Instant::now();
    let warm = session.compile_sweep(&skeleton, &topo, strategy, &bindings);
    let warm_elapsed = warm_start.elapsed();
    assert_eq!(warm.skeleton_cache.misses, 0, "warm sweep recompiled");

    let cold_ratio = ratio(direct_elapsed, cold.elapsed);
    let warm_ratio = ratio(direct_elapsed, warm_elapsed);
    println!("  direct : {N_BINDINGS} full compiles        {direct_elapsed:>12.3?}");
    println!(
        "  cold   : 1 compile + {N_BINDINGS} stamps    {:>12.3?}  ({cold_ratio:.1}x)",
        cold.elapsed
    );
    println!(
        "  warm   : {N_BINDINGS} stamps              {warm_elapsed:>12.3?}  ({warm_ratio:.1}x)"
    );
    println!("  skeleton cache: {}", session.skeleton_cache_stats());
    assert!(
        warm_ratio >= MIN_STAMP_SPEEDUP,
        "bind+stamp must be at least {MIN_STAMP_SPEEDUP}x faster than \
         recompiling (got {warm_ratio:.1}x)"
    );

    let path = write_json(
        &skeleton,
        direct_elapsed,
        cold.elapsed,
        warm_elapsed,
        cold_ratio,
        warm_ratio,
        &session.skeleton_cache_stats().to_json(),
    );
    println!("\nwrote {}", path.display());
}

fn ratio(slow: Duration, fast: Duration) -> f64 {
    slow.as_secs_f64() / fast.as_secs_f64().max(1e-12)
}

/// Hand-rolled JSON emission (the offline build has no serde).
#[allow(clippy::too_many_arguments)]
fn write_json(
    skeleton: &qompress_circuit::ParametricCircuit,
    direct: Duration,
    cold: Duration,
    warm: Duration,
    cold_ratio: f64,
    warm_ratio: f64,
    skeleton_cache: &str,
) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("sweep_perf.json");
    let mut file = std::fs::File::create(&path).expect("create sweep_perf.json");
    writeln!(
        file,
        "{{\n  \"bindings\": {N_BINDINGS},\n  \"qubits\": {},\n  \"gates\": {},\n  \
         \"parametric_sites\": {},\n  \"params\": {},\n  \"structural_compiles\": 1,\n  \
         \"direct_ms\": {:.3},\n  \"cold_sweep_ms\": {:.3},\n  \"warm_sweep_ms\": {:.3},\n  \
         \"cold_speedup\": {cold_ratio:.2},\n  \"warm_speedup\": {warm_ratio:.2},\n  \
         \"skeleton_cache\": {skeleton_cache}\n}}",
        skeleton.n_qubits(),
        skeleton.len(),
        skeleton.site_count(),
        skeleton.n_params(),
        direct.as_secs_f64() * 1e3,
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3,
    )
    .expect("write sweep_perf.json");
    path
}
