//! Runs a strategy × benchmark × topology sweep through a `Compiler`
//! session's parallel batch engine and emits per-job JSON metrics to
//! `results/batch_sweep.json` — the paper's Figure 7/13 evaluation loop as
//! one batched request.
//!
//! ```text
//! cargo run --release --example batch_sweep [workers] [size]
//! ```
//!
//! With no arguments the worker count defaults to the machine's available
//! parallelism and the sweep size to 10 qubits. The example re-runs the
//! same jobs serially on the **same session** — every repeat must be a
//! result-cache hit (asserted nonzero) — and once more through a
//! caching-disabled session, and exits non-zero if any of the three runs
//! diverge: worker count and caching may change timing, never output.

use qompress::{BatchJob, BatchResult, Compiler, Strategy};
use qompress_arch::Topology;
use qompress_workloads::{build, random_circuit, Benchmark};
use std::io::Write as _;
use std::path::PathBuf;

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    let size: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let jobs = sweep_jobs(size);
    println!(
        "batch sweep: {} jobs ({} qubits) on {} workers\n",
        jobs.len(),
        size,
        workers
    );

    let session = Compiler::builder().workers(workers).build();
    let parallel = session.compile_batch(&jobs);

    // Re-run the sweep serially on the same session: byte-identical output
    // served entirely from the result cache.
    let serial_session = Compiler::builder().workers(1).build();
    let serial = serial_session.compile_batch(&jobs);
    let replay = session.compile_batch(&jobs);

    // The batch engine's core guarantee: worker count and caching never
    // change output. Compare every observable field, not just metrics, so
    // a scheduling bug that happens to preserve EPS totals still fails CI.
    for (p, s) in parallel.results.iter().zip(&serial.results) {
        assert_eq!(
            render_job(p),
            render_job(s),
            "job `{}` diverged between parallel and serial runs",
            p.label
        );
    }
    for (p, r) in parallel.results.iter().zip(&replay.results) {
        assert_eq!(
            render_job(p),
            render_job(r),
            "job `{}` diverged between fresh compile and cache replay",
            p.label
        );
    }
    assert!(
        replay.cache.hits > 0,
        "replaying the duplicate-topology sweep on the same session must hit the cache"
    );
    assert_eq!(
        replay.cache.misses, 0,
        "every replayed job was already cached"
    );

    for r in &parallel.results {
        println!(
            "  {:<28} total EPS {:.4}  duration {:>8.0} ns  {:>4} comm ops",
            r.label,
            r.result.metrics.total_eps,
            r.result.metrics.duration_ns,
            r.result.metrics.communication_ops,
        );
    }
    println!(
        "\n{} jobs, {} shared topology caches",
        parallel.results.len(),
        parallel.distinct_topologies
    );
    println!(
        "parallel ({workers} workers): {:>8.1} ms   ({:.1} jobs/s)",
        parallel.elapsed.as_secs_f64() * 1e3,
        parallel.throughput()
    );
    println!(
        "serial   (1 worker):  {:>8.1} ms   speedup {:.2}x",
        serial.elapsed.as_secs_f64() * 1e3,
        serial.elapsed.as_secs_f64() / parallel.elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "cache replay:         {:>8.1} ms   {}",
        replay.elapsed.as_secs_f64() * 1e3,
        replay.cache
    );
    assert!(
        (replay.cache.hit_rate() - 1.0).abs() < f64::EPSILON,
        "a full replay on one session must be a 100% hit rate"
    );

    let path = write_json(&parallel, &replay, workers);
    println!("\nwrote {}", path.display());
}

/// Renders every observable field of one job result for the divergence
/// checks.
fn render_job(r: &qompress::BatchJobResult) -> String {
    format!(
        "{} #{} {} {:?} {:?} {:?} {:?} {:?} {:?}",
        r.label,
        r.job_index,
        r.result.strategy,
        r.result.metrics,
        r.result.schedule,
        r.result.initial_placements,
        r.result.final_placements,
        r.result.encoded_units,
        r.result.pairs,
    )
}

/// The job list: every strategy on two benchmarks and a QASM-generator
/// random circuit, over the paper grid and the 65-qubit heavy-hex device.
fn sweep_jobs(size: usize) -> Vec<BatchJob> {
    let strategies = [
        Strategy::QubitOnly,
        Strategy::FullQuquart,
        Strategy::Eqm,
        Strategy::RingBased,
        Strategy::Awe,
        Strategy::ProgressivePairing,
    ];
    let circuits = vec![
        ("cuccaro".to_string(), build(Benchmark::Cuccaro, size, 7)),
        ("bv".to_string(), build(Benchmark::Bv, size, 7)),
        ("qasm-random".to_string(), random_circuit(size, 4 * size, 7)),
    ];
    let topologies = vec![Topology::grid(size), Topology::heavy_hex_65()];

    let mut jobs = Vec::new();
    for (name, circuit) in &circuits {
        for topo in &topologies {
            for strategy in strategies {
                jobs.push(BatchJob::new(
                    format!("{name}/{}/{}", topo.name(), strategy.name()),
                    circuit.clone(),
                    strategy,
                    topo.clone(),
                ));
            }
        }
    }
    jobs
}

/// Hand-rolled JSON emission (the offline build has no serde); labels are
/// `a-z0-9/-` only, so no string escaping is needed.
fn write_json(batch: &BatchResult, replay: &BatchResult, workers: usize) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("batch_sweep.json");
    let mut file = std::fs::File::create(&path).expect("create batch_sweep.json");

    let mut rows = Vec::new();
    for r in &batch.results {
        let m = &r.result.metrics;
        rows.push(format!(
            "    {{\"label\": \"{}\", \"strategy\": \"{}\", \"gate_eps\": {:.9}, \
             \"coherence_eps\": {:.9}, \"total_eps\": {:.9}, \"duration_ns\": {:.3}, \
             \"physical_ops\": {}, \"communication_ops\": {}, \"logical_gates\": {}, \
             \"pairs\": {}}}",
            r.label,
            r.result.strategy,
            m.gate_eps,
            m.coherence_eps,
            m.total_eps,
            m.duration_ns,
            m.total_ops(),
            m.communication_ops,
            r.result.logical_gates,
            r.result.pairs.len(),
        ));
    }
    writeln!(
        file,
        "{{\n  \"workers\": {},\n  \"distinct_topologies\": {},\n  \"elapsed_ms\": {:.3},\n  \
         \"cache\": {},\n  \"replay_cache\": {},\n  \"jobs\": [\n{}\n  ]\n}}",
        workers,
        batch.distinct_topologies,
        batch.elapsed.as_secs_f64() * 1e3,
        batch.cache.to_json(),
        replay.cache.to_json(),
        rows.join(",\n")
    )
    .expect("write batch_sweep.json");
    path
}
