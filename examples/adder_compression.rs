//! Compiles the Cuccaro ripple-carry adder — the paper's flagship
//! structured benchmark — under every compression strategy and prints a
//! comparison table (gate EPS, coherence EPS, duration, gate mix).
//!
//! ```text
//! cargo run --release --example adder_compression [bits]
//! ```

use qompress::{Compiler, ALL_STRATEGIES};
use qompress_arch::Topology;
use qompress_pulse::GateClass;
use qompress_workloads::cuccaro_adder;

fn main() {
    let bits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let circuit = cuccaro_adder(bits);
    let topology = Topology::grid(circuit.n_qubits());
    // One session for the whole strategy table: the expanded graph and
    // distance oracles are built once and shared by all seven compiles.
    let session = Compiler::builder().build();

    println!(
        "{}-bit Cuccaro adder: {} qubits, {} gates ({} two-qubit)",
        bits,
        circuit.n_qubits(),
        circuit.len(),
        circuit.two_qubit_gate_count()
    );
    println!("architecture: {topology}\n");
    println!(
        "{:<14}{:>10}{:>12}{:>12}{:>12}{:>8}{:>10}{:>8}",
        "strategy", "gate EPS", "coher. EPS", "total EPS", "dur (ns)", "pairs", "intern.CX", "comm"
    );

    for strategy in ALL_STRATEGIES {
        let r = session.compile(&circuit, &topology, strategy);
        let internal = r.metrics.count(GateClass::Cx0) + r.metrics.count(GateClass::Cx1);
        println!(
            "{:<14}{:>10.4}{:>12.4}{:>12.4}{:>12.0}{:>8}{:>10}{:>8}",
            strategy.name(),
            r.metrics.gate_eps,
            r.metrics.coherence_eps,
            r.metrics.total_eps,
            r.metrics.duration_ns,
            r.pairs.len(),
            internal,
            r.metrics.communication_ops,
        );
    }

    println!("\nExpected shape (paper Figure 7): EQM and RB lead on gate EPS;");
    println!("FQ trails everything; coherence still favors qubit-only at the");
    println!("worst-case 1:3 ququart T1 ratio (Figure 10).");
}
