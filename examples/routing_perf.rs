//! Routing hot-path performance snapshot.
//!
//! Times the route phase alone (mapping excluded) for a set of
//! communication-heavy circuits over line/grid/ring topologies, plus one
//! exhaustive-search round and a repeated exhaustive sweep on a single
//! `Compiler` session (whose replay must be served from the session's
//! result cache). Writes a machine-readable snapshot to
//! `results/routing_perf.json` so CI accumulates a bench trajectory
//! across PRs.
//!
//! ```text
//! cargo run --release --example routing_perf [repeats]
//! ```

use qompress::{
    route_cached, Compiler, CompilerConfig, ExhaustiveOptions, MappingOptions, PhysicalOp,
};
use qompress_arch::Topology;
use qompress_circuit::{Circuit, CircuitDag};
use qompress_workloads::{build, random_circuit, Benchmark};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Entry {
    circuit: String,
    topology: String,
    logical_gates: usize,
    route_us: f64,
    ops: usize,
}

struct LargeEntry {
    circuit: String,
    topology: String,
    units: usize,
    route_us: f64,
    ops: usize,
    oracle_bytes: usize,
    all_pairs_bytes: usize,
}

struct CrosscheckEntry {
    circuit: String,
    topology: String,
    units: usize,
    exact_comm: usize,
    landmark_comm: usize,
    delta_pct: f64,
}

fn main() {
    let repeats: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);

    let config = CompilerConfig::paper();
    let size = 16usize;
    let circuits: Vec<(String, Circuit)> = vec![
        ("cuccaro16".into(), build(Benchmark::Cuccaro, size, 7)),
        ("qram16".into(), build(Benchmark::Qram, size, 7)),
        ("qasm-random16".into(), random_circuit(size, 6 * size, 7)),
    ];
    let topologies = vec![
        Topology::line(size),
        Topology::grid(size),
        Topology::ring(size),
    ];

    let session = Compiler::builder().config(config.clone()).build();
    let mut entries = Vec::new();
    println!("route-only timings (median of {repeats} runs):\n");
    for (name, circuit) in &circuits {
        let dag = CircuitDag::build(circuit);
        for topo in &topologies {
            let tcache = session.topology_cache(topo);
            let base_layout =
                qompress::map_circuit(circuit, topo, &config, &MappingOptions::qubit_only());
            // Warm the topology cache's oracle rows so the median measures
            // steady-state routing, not first-touch Dijkstra.
            let mut warm = base_layout.clone();
            let ops = route_cached(circuit, &dag, &mut warm, &tcache, &config);

            let mut samples = Vec::with_capacity(repeats);
            for _ in 0..repeats {
                let mut layout = base_layout.clone();
                let t = Instant::now();
                let out = route_cached(circuit, &dag, &mut layout, &tcache, &config);
                samples.push(t.elapsed().as_secs_f64() * 1e6);
                assert_eq!(out.len(), ops.len(), "routing must be deterministic");
            }
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let route_us = samples[samples.len() / 2];
            println!(
                "  {:<14} {:<8} {:>4} gates -> {:>4} ops  {:>10.1} us",
                name,
                topo.name(),
                circuit.len(),
                ops.len(),
                route_us
            );
            entries.push(Entry {
                circuit: name.clone(),
                topology: topo.name().to_string(),
                logical_gates: circuit.len(),
                route_us,
                ops: ops.len(),
            });
        }
    }

    // Utility-scale devices: the same 16-qubit workloads routed on a
    // 1121-unit heavy-hex member and a 1024-unit grid. The landmark
    // oracle must hold the distance footprint under 10% of the all-pairs
    // matrix while the route phase stays interactive.
    let large_topologies = vec![Topology::heavy_hex(21), Topology::grid(1024)];
    let mut large_entries = Vec::new();
    println!("\nlarge-device route timings (median of {repeats} runs):\n");
    for (name, circuit) in circuits.iter().filter(|(n, _)| !n.starts_with("qasm")) {
        let dag = CircuitDag::build(circuit);
        for topo in &large_topologies {
            let tcache = session.topology_cache(topo);
            let base_layout =
                qompress::map_circuit(circuit, topo, &config, &MappingOptions::qubit_only());
            let mut warm = base_layout.clone();
            let ops = route_cached(circuit, &dag, &mut warm, &tcache, &config);

            let mut samples = Vec::with_capacity(repeats);
            for _ in 0..repeats {
                let mut layout = base_layout.clone();
                let t = Instant::now();
                let out = route_cached(circuit, &dag, &mut layout, &tcache, &config);
                samples.push(t.elapsed().as_secs_f64() * 1e6);
                assert_eq!(out.len(), ops.len(), "routing must be deterministic");
            }
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let route_us = samples[samples.len() / 2];

            let stats = tcache.oracle_stats();
            assert!(
                stats.landmark_oracles > 0,
                "devices this size must select landmark mode"
            );
            let n_slots = 2 * topo.n_nodes();
            let all_pairs_bytes = n_slots * n_slots * 8;
            assert!(
                stats.approx_bytes < all_pairs_bytes / 10,
                "oracle footprint {} exceeds 10% of all-pairs {} on {}",
                stats.approx_bytes,
                all_pairs_bytes,
                topo.name()
            );
            println!(
                "  {:<14} {:<16} {:>5} units -> {:>4} ops  {:>10.1} us  \
                 oracle {:>8} B ({:.2}% of all-pairs)",
                name,
                topo.name(),
                topo.n_nodes(),
                ops.len(),
                route_us,
                stats.approx_bytes,
                100.0 * stats.approx_bytes as f64 / all_pairs_bytes as f64
            );
            large_entries.push(LargeEntry {
                circuit: name.clone(),
                topology: topo.name().to_string(),
                units: topo.n_nodes(),
                route_us,
                ops: ops.len(),
                oracle_bytes: stats.approx_bytes,
                all_pairs_bytes,
            });
        }
    }

    // Cross-check: on mid-size heavy-hex devices (which the exact
    // threshold still covers) force landmark mode from the *same* mapped
    // layout and compare communication. The estimates only steer
    // lookahead, so the realized two-unit op count must stay within 5%.
    let mut landmark_config = config.clone();
    landmark_config.oracle_exact_threshold = 1;
    let landmark_session = Compiler::builder().config(landmark_config.clone()).build();
    let mut crosscheck_entries = Vec::new();
    println!("\nexact vs landmark communication cross-check:\n");
    for distance in [5usize, 7] {
        let topo = Topology::heavy_hex(distance);
        let comm = |ops: &[PhysicalOp]| {
            ops.iter()
                .filter(|op| matches!(op, PhysicalOp::TwoUnit { .. }))
                .count()
        };
        for (name, circuit) in circuits.iter().filter(|(n, _)| !n.starts_with("qasm")) {
            let dag = CircuitDag::build(circuit);
            let base_layout =
                qompress::map_circuit(circuit, &topo, &config, &MappingOptions::qubit_only());

            let exact_cache = session.topology_cache(&topo);
            let mut exact_layout = base_layout.clone();
            let exact_ops = route_cached(circuit, &dag, &mut exact_layout, &exact_cache, &config);

            let landmark_cache = landmark_session.topology_cache(&topo);
            let mut landmark_layout = base_layout.clone();
            let landmark_ops = route_cached(
                circuit,
                &dag,
                &mut landmark_layout,
                &landmark_cache,
                &landmark_config,
            );

            let (exact_comm, landmark_comm) = (comm(&exact_ops), comm(&landmark_ops));
            let delta_pct =
                100.0 * (landmark_comm as f64 - exact_comm as f64).abs() / exact_comm as f64;
            assert!(
                delta_pct <= 5.0,
                "landmark routing drifted {delta_pct:.2}% from exact on {} ({name}): \
                 {exact_comm} vs {landmark_comm} two-unit ops",
                topo.name()
            );
            println!(
                "  {:<14} {:<16} {:>5} units  exact {:>4} / landmark {:>4} two-unit ops \
                 ({delta_pct:.2}% apart)",
                name,
                topo.name(),
                topo.n_nodes(),
                exact_comm,
                landmark_comm
            );
            crosscheck_entries.push(CrosscheckEntry {
                circuit: name.clone(),
                topology: topo.name().to_string(),
                units: topo.n_nodes(),
                exact_comm,
                landmark_comm,
                delta_pct,
            });
        }
    }

    // One exhaustive round plus a full-sweep replay on the same session:
    // the replay recompiles nothing, so every candidate evaluation must be
    // served from the session's result cache.
    let ec_circuit = build(Benchmark::Cuccaro, 8, 7);
    let ec_topo = Topology::grid(8);
    let ec_opts = ExhaustiveOptions {
        ordered: true,
        max_rounds: 1,
        ..ExhaustiveOptions::default()
    };
    let t = Instant::now();
    let (first, _) = session.compile_exhaustive(&ec_circuit, &ec_topo, &ec_opts);
    let first_ms = t.elapsed().as_secs_f64() * 1e3;
    let before = session.cache_stats();
    let t = Instant::now();
    let (replay, _) = session.compile_exhaustive(&ec_circuit, &ec_topo, &ec_opts);
    let replay_ms = t.elapsed().as_secs_f64() * 1e3;
    let after = session.cache_stats();
    let replay_hits = after.hits.saturating_sub(before.hits);
    let replay_misses = after.misses.saturating_sub(before.misses);
    assert!(
        replay_hits > 0,
        "replaying an exhaustive sweep on one session must hit the result cache"
    );
    assert_eq!(
        format!("{:?}", first.metrics),
        format!("{:?}", replay.metrics),
        "cache replay diverged from the fresh exhaustive sweep"
    );
    println!(
        "\nexhaustive round (cuccaro-8, grid): {first_ms:.1} ms fresh, \
         {replay_ms:.1} ms replay ({replay_hits} hits / {replay_misses} misses)"
    );
    let session_cache = session.cache_stats();
    println!("session cache: {session_cache}");

    let path = write_json(
        &entries,
        &large_entries,
        &crosscheck_entries,
        first_ms,
        replay_ms,
        replay_hits,
        repeats,
        &session_cache,
    );
    println!("\nwrote {}", path.display());
}

/// Hand-rolled JSON emission (the offline build has no serde); names are
/// `a-z0-9-` only, so no string escaping is needed.
#[allow(clippy::too_many_arguments)]
fn write_json(
    entries: &[Entry],
    large_entries: &[LargeEntry],
    crosscheck_entries: &[CrosscheckEntry],
    ec_first_ms: f64,
    ec_replay_ms: f64,
    ec_replay_hits: u64,
    repeats: usize,
    cache: &qompress::CacheStats,
) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("routing_perf.json");
    let mut file = std::fs::File::create(&path).expect("create routing_perf.json");

    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"circuit\": \"{}\", \"topology\": \"{}\", \"logical_gates\": {}, \
                 \"route_us\": {:.2}, \"ops\": {}}}",
                e.circuit, e.topology, e.logical_gates, e.route_us, e.ops
            )
        })
        .collect();
    let large_rows: Vec<String> = large_entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"circuit\": \"{}\", \"topology\": \"{}\", \"units\": {}, \
                 \"route_us\": {:.2}, \"ops\": {}, \"oracle_bytes\": {}, \
                 \"all_pairs_bytes\": {}}}",
                e.circuit,
                e.topology,
                e.units,
                e.route_us,
                e.ops,
                e.oracle_bytes,
                e.all_pairs_bytes
            )
        })
        .collect();
    let crosscheck_rows: Vec<String> = crosscheck_entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"circuit\": \"{}\", \"topology\": \"{}\", \"units\": {}, \
                 \"exact_comm\": {}, \"landmark_comm\": {}, \"delta_pct\": {:.3}}}",
                e.circuit, e.topology, e.units, e.exact_comm, e.landmark_comm, e.delta_pct
            )
        })
        .collect();
    writeln!(
        file,
        "{{\n  \"repeats\": {},\n  \"route\": [\n{}\n  ],\n  \"large_device\": [\n{}\n  ],\n  \
         \"landmark_crosscheck\": [\n{}\n  ],\n  \"exhaustive\": \
         {{\"circuit\": \"cuccaro8\", \"topology\": \"grid8\", \"fresh_ms\": {:.3}, \
         \"replay_ms\": {:.3}, \"replay_cache_hits\": {}}},\n  \"session_cache\": \
         {}\n}}",
        repeats,
        rows.join(",\n"),
        large_rows.join(",\n"),
        crosscheck_rows.join(",\n"),
        ec_first_ms,
        ec_replay_ms,
        ec_replay_hits,
        cache.to_json()
    )
    .expect("write routing_perf.json");
    path
}
