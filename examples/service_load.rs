//! Concurrent load generator for the compilation service: N clients,
//! each on its own loopback connection to one shared session, drive a
//! mixed submit / poll / cancel / sweep workload — plus deliberately
//! over-limit requests — and the run records submit round-trip and
//! completion latencies (p50/p99) and aggregate throughput to
//! `results/service_load.json`.
//!
//! The assertions are deterministic, so CI can run it as a gate: zero
//! protocol-level errors, every over-limit request rejected with the
//! expected structured error, and every accepted job reaching a
//! terminal event (none failed).
//!
//! ```text
//! cargo run --release --example service_load [clients] [jobs-per-client] [workers]
//! ```

use qompress::{Compiler, Strategy};
use qompress_qasm::to_qasm;
use qompress_service::{
    loopback, serve_duplex_with_limits, ServiceClient, ServiceError, ServiceEvent, ServiceLimits,
};
use qompress_workloads::{build, Benchmark};
use std::collections::HashMap;
use std::io::{BufReader, Write as _};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// What one client measured over its connection.
#[derive(Debug, Default)]
struct ClientReport {
    /// Submit/submit_sweep request round-trips, milliseconds.
    submit_rtt_ms: Vec<f64>,
    /// Submit-to-terminal-event latencies, milliseconds.
    completion_ms: Vec<f64>,
    accepted: usize,
    completed: usize,
    cancelled: usize,
    quota_rejections: usize,
    shape_rejections: usize,
    /// Transport or protocol failures — the run fails unless zero.
    protocol_errors: usize,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next =
        |default: usize| -> usize { args.next().and_then(|s| s.parse().ok()).unwrap_or(default) };
    let clients = next(4);
    let jobs_per_client = next(6);
    let workers = next(2);

    println!(
        "service load: {clients} clients x {jobs_per_client} jobs \
         (+1 sweep, +2 hostile requests each), {workers} workers\n"
    );

    // One shared session; every client connection gets its own loopback
    // transport and server thread, all with the same tightened limits so
    // the over-limit traffic is rejected deterministically.
    let session = Arc::new(Compiler::builder().workers(workers).build());
    let limits = ServiceLimits {
        max_sweep_bindings: 4,
        ..ServiceLimits::default()
    };

    let started = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let session = Arc::clone(&session);
        let limits = limits.clone();
        threads.push(std::thread::spawn(move || {
            run_client(c, jobs_per_client, session, limits)
        }));
    }
    let reports: Vec<ClientReport> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    let elapsed = started.elapsed();

    // The deterministic gates.
    let total = |f: fn(&ClientReport) -> usize| -> usize { reports.iter().map(f).sum() };
    let protocol_errors = total(|r| r.protocol_errors);
    let accepted = total(|r| r.accepted);
    let completed = total(|r| r.completed);
    let cancelled = total(|r| r.cancelled);
    let quota_rejections = total(|r| r.quota_rejections);
    let shape_rejections = total(|r| r.shape_rejections);
    assert_eq!(protocol_errors, 0, "no protocol-level errors allowed");
    assert_eq!(
        quota_rejections, clients,
        "every client's over-wide sweep must be quota-rejected"
    );
    assert_eq!(
        shape_rejections, clients,
        "every client's qubit bomb must be shape-rejected"
    );
    assert_eq!(
        completed + cancelled,
        accepted,
        "every accepted job must reach a terminal event"
    );

    let mut submit_rtts: Vec<f64> = reports
        .iter()
        .flat_map(|r| r.submit_rtt_ms.iter().copied())
        .collect();
    let mut completions: Vec<f64> = reports
        .iter()
        .flat_map(|r| r.completion_ms.iter().copied())
        .collect();
    submit_rtts.sort_by(|a, b| a.total_cmp(b));
    completions.sort_by(|a, b| a.total_cmp(b));
    let jobs_per_sec = completed as f64 / elapsed.as_secs_f64();

    println!(
        "accepted {accepted}  completed {completed}  cancelled {cancelled}  \
         quota-rejected {quota_rejections}  shape-rejected {shape_rejections}"
    );
    println!(
        "submit rtt   p50 {:.3} ms  p99 {:.3} ms",
        percentile(&submit_rtts, 50.0),
        percentile(&submit_rtts, 99.0)
    );
    println!(
        "completion   p50 {:.3} ms  p99 {:.3} ms",
        percentile(&completions, 50.0),
        percentile(&completions, 99.0)
    );
    println!(
        "throughput   {jobs_per_sec:.1} jobs/sec over {:.3} s",
        elapsed.as_secs_f64()
    );

    let path = write_json(
        clients,
        jobs_per_client,
        workers,
        &submit_rtts,
        &completions,
        jobs_per_sec,
        elapsed.as_secs_f64(),
        [
            accepted,
            completed,
            cancelled,
            quota_rejections,
            shape_rejections,
        ],
    );
    println!("\nwrote {}", path.display());
}

/// One client's full scripted conversation with the service.
fn run_client(
    c: usize,
    jobs: usize,
    session: Arc<Compiler>,
    limits: ServiceLimits,
) -> ClientReport {
    let (client_end, server_end) = loopback();
    let (server_reader, server_writer) = server_end.split();
    let server = std::thread::spawn(move || {
        serve_duplex_with_limits(session, server_reader, server_writer, limits)
    });
    let (reader, writer) = client_end.split();
    let mut client = ServiceClient::new(BufReader::new(reader), writer);
    let mut report = ClientReport::default();
    let mut submit_instants: HashMap<u64, Instant> = HashMap::new();

    // The mixed legitimate workload: distinct small circuits (per-client
    // seeds keep the shared cache honest — some hits, some misses) with
    // strategies round-robined, polled right after submission.
    let strategies = [Strategy::Eqm, Strategy::QubitOnly, Strategy::RingBased];
    let mut last_id = None;
    for i in 0..jobs {
        let circuit = build(Benchmark::Bv, 5, (c * jobs + i) as u64);
        let t0 = Instant::now();
        match client.submit(
            &format!("c{c}-j{i}"),
            strategies[i % strategies.len()],
            "grid:5",
            &to_qasm(&circuit),
        ) {
            Ok(id) => {
                report.submit_rtt_ms.push(ms(t0));
                submit_instants.insert(id, t0);
                report.accepted += 1;
                last_id = Some(id);
                if client.poll(id).is_err() {
                    report.protocol_errors += 1;
                }
            }
            Err(_) => report.protocol_errors += 1,
        }
    }

    // A cancel race on the last submit: either answer is legal (the job
    // may already be done), but the response must be well-formed and a
    // successful cancel must stream a Cancelled event.
    if let Some(id) = last_id {
        if client.cancel(id).is_err() {
            report.protocol_errors += 1;
        }
    }

    // One parametric sweep within the binding quota…
    let skeleton = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\nrz(theta0) q[0];\n\
                    cx q[0], q[1];\nrx(theta1) q[1];\ncx q[1], q[2];\n";
    let bindings: Vec<Vec<f64>> = (0..3)
        .map(|i| vec![0.1 + i as f64, 1.0 - 0.2 * i as f64])
        .collect();
    let t0 = Instant::now();
    match client.submit_sweep(
        &format!("c{c}-sweep"),
        Strategy::Eqm,
        "grid:3",
        skeleton,
        &bindings,
    ) {
        Ok(ids) => {
            report.submit_rtt_ms.push(ms(t0));
            report.accepted += ids.len();
            for id in ids {
                submit_instants.insert(id, t0);
            }
        }
        Err(_) => report.protocol_errors += 1,
    }

    // …and two hostile requests: a sweep past the binding quota and a
    // billion-qubit register. Both must be rejected structurally.
    let wide: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, 0.0]).collect();
    match client.submit_sweep(
        &format!("c{c}-wide"),
        Strategy::Eqm,
        "grid:3",
        skeleton,
        &wide,
    ) {
        Err(ServiceError::Quota { .. }) => report.quota_rejections += 1,
        _ => report.protocol_errors += 1,
    }
    match client.submit(
        &format!("c{c}-bomb"),
        Strategy::Eqm,
        "grid:3",
        "OPENQASM 2.0;\nqreg q[1000000000];\nh q[0];\n",
    ) {
        Err(ServiceError::Remote(_)) => report.shape_rejections += 1,
        _ => report.protocol_errors += 1,
    }

    // Drain a terminal event for every accepted job.
    let mut terminal = 0;
    while terminal < report.accepted {
        match client.next_event() {
            Ok(ServiceEvent::Done { job, .. }) => {
                report.completed += 1;
                terminal += 1;
                if let Some(t) = submit_instants.get(&job) {
                    report.completion_ms.push(ms(*t));
                }
            }
            Ok(ServiceEvent::Cancelled { .. }) => {
                report.cancelled += 1;
                terminal += 1;
            }
            Ok(ServiceEvent::Failed { job, label, error }) => {
                panic!("job {job} `{label}` failed under load: {error}")
            }
            Err(_) => {
                report.protocol_errors += 1;
                break;
            }
        }
    }
    // Every tracked job observable as terminal via poll, too.
    for id in submit_instants.keys() {
        match client.poll(*id) {
            Ok(status) if status == "done" || status == "cancelled" => {}
            _ => report.protocol_errors += 1,
        }
    }

    drop(client);
    if server.join().expect("server thread").is_err() {
        report.protocol_errors += 1;
    }
    report
}

fn ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Hand-rolled JSON emission (the offline build has no serde).
#[allow(clippy::too_many_arguments)]
fn write_json(
    clients: usize,
    jobs_per_client: usize,
    workers: usize,
    submit_rtts: &[f64],
    completions: &[f64],
    jobs_per_sec: f64,
    elapsed_s: f64,
    [accepted, completed, cancelled, quota_rejections, shape_rejections]: [usize; 5],
) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("service_load.json");
    let mut file = std::fs::File::create(&path).expect("create service_load.json");
    writeln!(
        file,
        "{{\n  \"clients\": {clients},\n  \"jobs_per_client\": {jobs_per_client},\n  \
         \"workers\": {workers},\n  \"accepted_jobs\": {accepted},\n  \
         \"completed\": {completed},\n  \"cancelled\": {cancelled},\n  \
         \"quota_rejections\": {quota_rejections},\n  \
         \"shape_rejections\": {shape_rejections},\n  \"protocol_errors\": 0,\n  \
         \"submit_rtt_ms\": {{\"p50\": {:.6}, \"p99\": {:.6}}},\n  \
         \"completion_ms\": {{\"p50\": {:.6}, \"p99\": {:.6}}},\n  \
         \"jobs_per_sec\": {jobs_per_sec:.3},\n  \"elapsed_s\": {elapsed_s:.6}\n}}",
        percentile(submit_rtts, 50.0),
        percentile(submit_rtts, 99.0),
        percentile(completions, 50.0),
        percentile(completions, 99.0),
    )
    .expect("write service_load.json");
    path
}
