//! Quickstart: compile a small circuit with and without ququart
//! compression and compare the expected probability of success.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qompress::{Compiler, Strategy};
use qompress_arch::Topology;
use qompress_circuit::{Circuit, Gate};

fn main() {
    // A toy workload: a hot pair of qubits (0, 1) with occasional traffic
    // to two spectators.
    let mut circuit = Circuit::new(4);
    circuit.push(Gate::h(0));
    for _ in 0..6 {
        circuit.push(Gate::cx(0, 1));
    }
    circuit.push(Gate::cx(1, 2));
    circuit.push(Gate::cx(2, 3));
    circuit.push(Gate::cx(0, 3));

    // The paper's evaluation setup: a just-large-enough grid, Table 1 gate
    // library, worst-case ququart T1 — all defaults of a Compiler session,
    // which also shares the per-topology precomputation across the three
    // strategy compiles below.
    let topology = Topology::grid(circuit.n_qubits());
    let session = Compiler::builder().build();

    println!(
        "input: {} gates on {} qubits",
        circuit.len(),
        circuit.n_qubits()
    );
    println!("architecture: {topology}\n");

    for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
        let result = session.compile(&circuit, &topology, strategy);
        print!("{result}");
        if !result.pairs.is_empty() {
            println!("  compressed pairs: {:?}", result.pairs);
        }
        println!();
    }

    println!("Compressing the hot pair turns its CX2 gates (251 ns, 99%) into");
    println!("internal CX gates (83 ns, 99.9%) — the core Qompress effect.");
}
