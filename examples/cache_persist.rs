//! CI gate for the persistent cache tier: compiles a sweep of circuits
//! into a fresh persist directory, **drops the session** (the in-memory
//! tier dies with it), reopens a second session on the same directory,
//! and asserts every circuit comes back as a disk-tier hit with a
//! byte-identical result. Writes p50 warm-vs-cold latency to
//! `results/cache_persist.json`.
//!
//! ```text
//! cargo run --release --example cache_persist
//! ```

use qompress::{Compiler, Strategy};
use qompress_arch::Topology;
use qompress_service::result_fingerprint;
use qompress_workloads::random_circuit;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Sweep width: enough circuits to make the p50 stable, small enough to
/// keep the gate fast.
const N_CIRCUITS: usize = 24;

fn strategy_from_index(i: usize) -> Strategy {
    [
        Strategy::QubitOnly,
        Strategy::Eqm,
        Strategy::RingBased,
        Strategy::Awe,
        Strategy::ProgressivePairing,
    ][i % 5]
}

fn topology_from_index(i: usize, n: usize) -> Topology {
    match i % 3 {
        0 => Topology::grid(n),
        1 => Topology::line(n),
        _ => Topology::ring(n.max(3)),
    }
}

fn main() {
    // A scratch persist dir under target/, recreated empty per run so the
    // cold pass is genuinely cold.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("tmp")
        .join("cache_persist_example");
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear persist dir");
    }

    let workload: Vec<(qompress_circuit::Circuit, Topology, Strategy)> = (0..N_CIRCUITS)
        .map(|i| {
            let n = 4 + i % 4;
            (
                random_circuit(n, 20 + 3 * i, i as u64),
                topology_from_index(i, n),
                strategy_from_index(i),
            )
        })
        .collect();
    println!(
        "cache persist: {N_CIRCUITS} circuits, persist dir {}\n",
        dir.display()
    );

    // Cold pass: every circuit is a true compile, written back to disk.
    let mut cold_latencies = Vec::with_capacity(N_CIRCUITS);
    let fingerprints: Vec<u64> = {
        let cold = Compiler::builder().workers(1).persist_dir(&dir).build();
        let prints = workload
            .iter()
            .map(|(circuit, topo, strategy)| {
                let start = Instant::now();
                let result = cold.compile(circuit, topo, *strategy);
                cold_latencies.push(start.elapsed());
                result_fingerprint(&result)
            })
            .collect();
        let stats = cold.tiered_cache_stats();
        assert_eq!(stats.misses, N_CIRCUITS as u64, "cold pass must compile");
        assert_eq!(
            stats.disk_writes, N_CIRCUITS as u64,
            "every result written back"
        );
        assert_eq!(stats.disk_write_errors, 0);
        prints
    }; // session dropped here — only the directory survives

    // Warm pass in a new session: memory tier is empty, so every hit is
    // served from disk, decoded, and must match the cold result exactly.
    let warm = Compiler::builder().workers(1).persist_dir(&dir).build();
    let mut warm_latencies = Vec::with_capacity(N_CIRCUITS);
    for (i, (circuit, topo, strategy)) in workload.iter().enumerate() {
        let start = Instant::now();
        let result = warm.compile(circuit, topo, *strategy);
        warm_latencies.push(start.elapsed());
        assert_eq!(
            result_fingerprint(&result),
            fingerprints[i],
            "circuit {i}: disk-tier result diverged from the cold compile"
        );
    }
    let stats = warm.tiered_cache_stats();
    assert!(stats.disk_hits > 0, "restart must produce disk hits");
    assert_eq!(
        stats.disk_hits, N_CIRCUITS as u64,
        "every circuit must be served from the disk tier"
    );
    assert_eq!(stats.misses, 0, "warm pass must not recompile");
    assert_eq!(stats.disk_rejects, 0, "no artifact may fail validation");

    let cold_p50 = p50(&mut cold_latencies);
    let warm_p50 = p50(&mut warm_latencies);
    let speedup = cold_p50.as_secs_f64() / warm_p50.as_secs_f64().max(1e-12);
    println!("  cold p50 (compile + write-back) {cold_p50:>12.3?}");
    println!("  warm p50 (disk hit + decode)    {warm_p50:>12.3?}  ({speedup:.1}x)");
    println!("  tiers: {stats}");

    let path = write_json(cold_p50, warm_p50, speedup, &stats.to_json());
    println!("\nwrote {}", path.display());
}

/// Median latency (the slice is sorted in place).
fn p50(latencies: &mut [Duration]) -> Duration {
    latencies.sort();
    latencies[latencies.len() / 2]
}

/// Hand-rolled JSON emission (the offline build has no serde).
fn write_json(cold_p50: Duration, warm_p50: Duration, speedup: f64, tiers: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("cache_persist.json");
    let mut file = std::fs::File::create(&path).expect("create cache_persist.json");
    writeln!(
        file,
        "{{\n  \"circuits\": {N_CIRCUITS},\n  \"cold_p50_ms\": {:.3},\n  \
         \"warm_p50_ms\": {:.3},\n  \"warm_speedup\": {speedup:.2},\n  \
         \"tiers\": {tiers}\n}}",
        cold_p50.as_secs_f64() * 1e3,
        warm_p50.as_secs_f64() * 1e3,
    )
    .expect("write cache_persist.json");
    path
}
