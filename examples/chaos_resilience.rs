//! CI gate for the resilience stack: runs one sweep of circuits through
//! a **clean** loopback server, then the same sweep through a **chaotic**
//! one — a flaky disk (every 3rd write-back fails with `ENOSPC`), a
//! hair-trigger circuit breaker, a 4-deep admission queue forcing `busy`
//! backpressure, and a retrying client riding over all of it. Asserts
//! zero lost jobs and fingerprint-identical results, that the breaker
//! tripped and then recovered through a half-open probe after the disk
//! healed, that an unopenable cache dir degrades (never aborts), and
//! that a drained server rejects new submits structurally. Writes the
//! observed fault/retry/breaker counters to
//! `results/chaos_resilience.json`.
//!
//! ```text
//! cargo run --release --example chaos_resilience
//! ```

use qompress::{BreakerState, Compiler, FaultKind, FaultOp, FaultPlan, Strategy};
use qompress_arch::Topology;
use qompress_qasm::to_qasm;
use qompress_service::{
    loopback, serve_duplex, serve_duplex_draining, DrainHandle, RetryPolicy, ServiceClient,
    ServiceError, ServiceEvent, ServiceLimits,
};
use qompress_workloads::random_circuit;
use std::collections::HashMap;
use std::io::{BufReader, Write as _};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Sweep width of the chaos run (one more circuit rides along as the
/// post-heal recovery probe).
const N_CIRCUITS: usize = 24;

/// Every 3rd disk write-back fails: enough to trip a hair-trigger
/// breaker repeatedly without ever failing a compile.
const FAULT_PERIOD: u64 = 3;

/// Breaker cooldown in the chaos session; the recovery probe sleeps past
/// it after healing the disk.
const COOLDOWN: Duration = Duration::from_millis(100);

type LoopClient =
    ServiceClient<BufReader<qompress_service::LoopbackReader>, qompress_service::LoopbackWriter>;

fn strategy_from_index(i: usize) -> Strategy {
    [
        Strategy::QubitOnly,
        Strategy::Eqm,
        Strategy::RingBased,
        Strategy::Awe,
        Strategy::ProgressivePairing,
    ][i % 5]
}

fn spec_from_index(i: usize, n: usize) -> String {
    match i % 3 {
        0 => format!("grid:{n}"),
        1 => format!("line:{n}"),
        _ => format!("ring:{}", n.max(3)),
    }
}

/// One wire job: label, strategy, topology spec, QASM text.
struct WireJob {
    label: String,
    strategy: Strategy,
    spec: String,
    qasm: String,
}

/// Submits every job (retrying under the client's policy) and returns
/// label → result fingerprint once all completions have streamed back.
fn run_sweep(client: &mut LoopClient, jobs: &[WireJob]) -> HashMap<String, u64> {
    let mut pending: HashMap<u64, &str> = HashMap::new();
    for job in jobs {
        let id = client
            .submit(&job.label, job.strategy, &job.spec, &job.qasm)
            .unwrap_or_else(|err| panic!("submit {}: {err}", job.label));
        pending.insert(id, &job.label);
    }
    let mut fingerprints = HashMap::new();
    while !pending.is_empty() {
        match client.next_event().expect("completion event") {
            ServiceEvent::Done {
                job,
                label,
                result_fp,
                ..
            } => {
                assert_eq!(
                    pending.remove(&job).map(str::to_string),
                    Some(label.clone()),
                    "completion for an unknown job"
                );
                fingerprints.insert(label, result_fp);
            }
            other => panic!("job lost to chaos: {other:?}"),
        }
    }
    fingerprints
}

fn main() {
    let workload: Vec<WireJob> = (0..=N_CIRCUITS)
        .map(|i| {
            let n = 4 + i % 4;
            WireJob {
                label: format!("job-{i}"),
                strategy: strategy_from_index(i),
                spec: spec_from_index(i, n),
                qasm: to_qasm(&random_circuit(n, 20 + 3 * i, i as u64)),
            }
        })
        .collect();
    let (sweep, probe) = workload.split_at(N_CIRCUITS);
    println!("chaos resilience: {N_CIRCUITS} circuits + 1 recovery probe\n");

    // ── Clean pass: no faults, no backpressure — the reference run. ──
    let clean_fps: HashMap<String, u64> = {
        let session = Arc::new(Compiler::builder().workers(1).build());
        let (client_end, server_end) = loopback();
        let (sr, sw) = server_end.split();
        let server = std::thread::spawn(move || serve_duplex(session, sr, sw));
        let (reader, writer) = client_end.split();
        let mut client = ServiceClient::new(BufReader::new(reader), writer);
        let mut fps = run_sweep(&mut client, sweep);
        fps.extend(run_sweep(&mut client, probe));
        drop(client);
        server.join().expect("clean server").expect("clean exit");
        fps
    };

    // ── Chaos pass: flaky disk + hair-trigger breaker + tiny queue. ──
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("tmp")
        .join("chaos_resilience_example");
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear persist dir");
    }
    let faults = FaultPlan::every_nth(FAULT_PERIOD, FaultKind::DiskFull).on_ops(&[FaultOp::Store]);
    let session = Arc::new(
        Compiler::builder()
            .workers(1)
            .persist_dir(&dir)
            .persist_faults(faults.clone())
            .persist_breaker(1, COOLDOWN)
            .build(),
    );
    assert!(session.persistence_enabled());

    let drain = DrainHandle::new();
    let limits = ServiceLimits {
        max_queue_depth: 4,
        ..ServiceLimits::default()
    };
    let (client_end, server_end) = loopback();
    let (sr, sw) = server_end.split();
    let server = {
        let session = Arc::clone(&session);
        let drain = drain.clone();
        std::thread::spawn(move || serve_duplex_draining(session, sr, sw, limits, drain))
    };
    let (reader, writer) = client_end.split();
    let mut client =
        ServiceClient::new(BufReader::new(reader), writer).with_retry_policy(RetryPolicy {
            max_attempts: 40,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(50),
            deadline: Some(Duration::from_secs(30)),
            jitter: true,
            seed: 0xC4A05,
        });

    // Park the pool so the 4-deep queue fills and submits hit `busy`;
    // un-park from the side once the client is deep in its retry loop.
    session.pause_workers();
    let unpause = {
        let session = Arc::clone(&session);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            session.resume_workers();
        })
    };
    let chaos_fps = run_sweep(&mut client, sweep);
    unpause.join().expect("unpause thread");

    // Zero lost jobs, zero divergent results.
    let mismatches = sweep
        .iter()
        .filter(|job| chaos_fps.get(&job.label) != clean_fps.get(&job.label))
        .count();
    assert_eq!(chaos_fps.len(), N_CIRCUITS, "every job must complete");
    assert_eq!(mismatches, 0, "chaos must never change results");

    let retries = client.retry_stats();
    assert!(
        retries.busy_retries >= 1,
        "backpressure must have been retried: {retries:?}"
    );
    assert_eq!(retries.give_ups, 0, "no submit may be abandoned");

    let mid = client.stats().expect("stats").tiers;
    assert!(
        mid.disk_write_errors >= 1,
        "the flaky disk must have bitten"
    );
    assert!(mid.breaker_trips >= 1, "a hair-trigger breaker must trip");
    assert!(mid.disk_writes >= 1, "some write-backs still land");

    // ── Heal the disk; the breaker recovers through a probe. ──
    faults.heal();
    std::thread::sleep(COOLDOWN + Duration::from_millis(150));
    let recovery_fps = run_sweep(&mut client, probe);
    assert_eq!(
        recovery_fps.get(&probe[0].label),
        clean_fps.get(&probe[0].label),
        "the recovery probe result must match the clean run"
    );
    let healed = client.stats().expect("stats").tiers;
    assert!(
        healed.breaker_probes >= 1,
        "recovery goes through half-open"
    );
    assert_eq!(
        healed.breaker_state,
        BreakerState::Closed,
        "the breaker must close once the disk heals"
    );

    // ── Drain: new submits are rejected structurally, stats still work. ──
    drain.trigger();
    let err = client
        .submit("late", Strategy::Eqm, "grid:2", &sweep[0].qasm)
        .expect_err("a draining server accepts no new jobs");
    assert!(matches!(err, ServiceError::Draining { .. }), "{err}");
    let _ = client.stats().expect("stats during drain");
    drop(client);
    server.join().expect("chaos server").expect("chaos exit");

    // ── An unopenable cache dir degrades to memory-only, never aborts. ──
    let blocker = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("tmp")
        .join("chaos_resilience_blocker");
    let _ = std::fs::remove_dir_all(&blocker);
    let _ = std::fs::remove_file(&blocker);
    std::fs::write(&blocker, b"not a directory").expect("plant blocker");
    let degraded = Compiler::builder()
        .workers(1)
        .persist_dir(blocker.join("cache"))
        .build();
    assert!(!degraded.persistence_enabled(), "must degrade, not abort");
    assert!(
        !degraded.diagnostics().is_empty(),
        "degradation is reported"
    );
    let _ = degraded.compile(&random_circuit(3, 10, 1), &Topology::grid(3), Strategy::Eqm);

    println!("  clean == chaos on {N_CIRCUITS}/{N_CIRCUITS} fingerprints");
    println!(
        "  retries: {} busy, {} reconnects, {} give-ups",
        retries.busy_retries, retries.reconnects, retries.give_ups
    );
    println!(
        "  breaker: {} trip(s), {} probe(s), final state {}",
        healed.breaker_trips, healed.breaker_probes, healed.breaker_state
    );
    println!("  tiers: {healed}");

    let path = write_json(retries.busy_retries, &healed.to_json());
    println!("\nwrote {}", path.display());
}

/// Hand-rolled JSON emission (the offline build has no serde).
fn write_json(busy_retries: u64, tiers: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("chaos_resilience.json");
    let mut file = std::fs::File::create(&path).expect("create chaos_resilience.json");
    writeln!(
        file,
        "{{\n  \"circuits\": {N_CIRCUITS},\n  \"fault_period\": {FAULT_PERIOD},\n  \
         \"lost_jobs\": 0,\n  \"fingerprint_mismatches\": 0,\n  \
         \"busy_retries\": {busy_retries},\n  \"tiers\": {tiers}\n}}",
    )
    .expect("write chaos_resilience.json");
    path
}
