//! Compiles a cylinder-graph QAOA circuit onto the paper's three
//! architectures — just-large-enough grid, 65-qubit IBM heavy-hex, and a
//! 65-node ring — showing that the compression strategies adapt across
//! connectivities (paper Figure 13).
//!
//! ```text
//! cargo run --release --example qaoa_topologies [size]
//! ```

use qompress::{Compiler, Strategy};
use qompress_arch::Topology;
use qompress_workloads::{graphs, qaoa};

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let graph = graphs::cylinder_for(size);
    let circuit = qaoa(&graph, 7);
    // One session across all three architectures; the qubit-only baseline
    // below is compiled once per topology and the comparison loop's repeat
    // of it is served from the session's result cache.
    let session = Compiler::builder().build();

    println!(
        "cylinder QAOA: {} qubits, {} gates\n",
        circuit.n_qubits(),
        circuit.len()
    );

    for topology in [
        Topology::grid(circuit.n_qubits()),
        Topology::heavy_hex_65(),
        Topology::ring(65),
    ] {
        println!("== {topology}");
        let baseline = session.compile(&circuit, &topology, Strategy::QubitOnly);
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
            let r = session.compile(&circuit, &topology, strategy);
            println!(
                "  {:<12} gate EPS {:.4} ({:+.1}% vs qubit-only), {} communication ops",
                strategy.name(),
                r.metrics.gate_eps,
                100.0 * (r.metrics.gate_eps / baseline.metrics.gate_eps - 1.0),
                r.metrics.communication_ops,
            );
        }
        println!();
    }

    println!("Paper finding (Figure 13): no significant difference between");
    println!("architectures — the methods adapt to each topology similarly.");
    let stats = session.cache_stats();
    println!(
        "\nsession cache: {} hits / {} misses (the repeated qubit-only baselines)",
        stats.hits, stats.misses
    );
}
