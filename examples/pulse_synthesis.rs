//! Synthesizes a control pulse with the GRAPE substrate (the stand-in for
//! the paper's Juqbox runs): finds the shortest X-gate pulse on the
//! paper's transmon and prints the optimized waveform.
//!
//! ```text
//! cargo run --release --example pulse_synthesis
//! ```

use qompress_pulse::{
    find_min_duration, DeviceModel, DurationSearchConfig, GateClass, GateLibrary, GateTarget,
    GrapeConfig,
};

fn main() {
    // A 3-level transmon: qubit levels {0,1} plus one guard level, with
    // the paper's frequency/anharmonicity (§3.2).
    let device = DeviceModel::paper_single(3);
    let target = GateTarget::for_class(GateClass::X, &device);
    let config = DurationSearchConfig {
        shrink: 0.8,
        max_rounds: 5,
        grape: GrapeConfig {
            segments: 40,
            max_iters: 400,
            learning_rate: 0.03,
            leakage_weight: 0.5,
            target_fidelity: 0.999,
            seed: 17,
        },
    };

    println!("searching for the shortest X pulse (target F = 0.999)...");
    let result = find_min_duration(&device, &target, 60.0, &config);

    println!("\nduration search history:");
    for (t, f) in &result.history {
        println!("  T = {t:>6.1} ns -> F = {f:.5}");
    }
    match result.duration_ns {
        Some(d) => println!(
            "\nshortest converged duration: {d:.1} ns \
             (paper Table 1: {} ns on the full Juqbox budget)",
            GateLibrary::paper().duration(GateClass::X)
        ),
        None => println!("\nno duration converged under this budget"),
    }

    let pulse = &result.best.pulse;
    println!(
        "final pulse: {} segments x {:.2} ns, fidelity {:.5}, leakage {:.2e}",
        pulse.segments(),
        pulse.dt,
        result.best.fidelity,
        result.best.leakage
    );
    println!("\nI-quadrature waveform (rad/ns):");
    for (j, amp) in pulse.amps[0].iter().enumerate() {
        let bar = "#".repeat(((amp.abs() / device.max_amp()) * 40.0) as usize);
        println!("  seg {j:>2}: {amp:>8.4} {bar}");
    }
}
