//! Workspace-level integration crate for the Qompress reproduction.
//!
//! This crate carries no logic of its own: it exists so the cross-crate
//! integration suites under `tests/` and the runnable `examples/` are
//! first-class members of the Cargo workspace. It re-exports the public
//! crates so examples and tests can reach everything through one
//! dependency if they wish.

pub use qompress;
pub use qompress_arch;
pub use qompress_circuit;
pub use qompress_pulse;
pub use qompress_sim;
pub use qompress_workloads;
