//! Cross-checks between the simulator's gate constructions: the two-unit
//! class unitaries must agree with Kronecker compositions of their
//! single-unit building blocks, matching the paper's Figure 2 relations.

use qompress_circuit::SingleQubitKind;
use qompress_linalg::{CMat, C64};
use qompress_pulse::GateClass;
use qompress_sim::{
    cx_qubit, embed_slot, one_unit_class_unitary, single_qubit_unitary, two_unit_class_unitary,
};

#[test]
fn internal_cx_equals_lifted_logical_cx() {
    // The encoding |2·q0 + q1⟩ makes the logical 4-dim two-qubit space the
    // ququart space in the same basis order, so CX0 IS the logical CX.
    assert!(one_unit_class_unitary(GateClass::Cx0).max_abs_diff(&cx_qubit()) < 1e-12);
}

#[test]
fn x0_embedding_is_x_tensor_identity() {
    let x = single_qubit_unitary(SingleQubitKind::X);
    let id = CMat::identity(2);
    assert!(embed_slot(&x, 0).max_abs_diff(&x.kron(&id)) < 1e-12);
    assert!(embed_slot(&x, 1).max_abs_diff(&id.kron(&x)) < 1e-12);
}

#[test]
fn cx00_is_controlled_x0_on_partner() {
    // CX00 = control on q0 of unit A applying X⊗I on unit B.
    let x0 = embed_slot(&single_qubit_unitary(SingleQubitKind::X), 0);
    let mut want = CMat::zeros(16, 16);
    for a in 0..4usize {
        let control_set = a / 2 == 1;
        for b_in in 0..4usize {
            for b_out in 0..4usize {
                let amp = if control_set {
                    x0[(b_out, b_in)]
                } else if b_in == b_out {
                    C64::ONE
                } else {
                    C64::ZERO
                };
                if amp != C64::ZERO {
                    want[(a * 4 + b_out, a * 4 + b_in)] = amp;
                }
            }
        }
    }
    let got = two_unit_class_unitary(GateClass::Cx00);
    assert!(got.max_abs_diff(&want) < 1e-12);
}

#[test]
fn swap4_is_the_tensor_swap() {
    let got = two_unit_class_unitary(GateClass::Swap4);
    let mut want = CMat::zeros(16, 16);
    for a in 0..4usize {
        for b in 0..4usize {
            want[(b * 4 + a, a * 4 + b)] = C64::ONE;
        }
    }
    assert!(got.max_abs_diff(&want) < 1e-12);
}

#[test]
fn partial_swaps_compose_to_swap4() {
    // SWAP00 · SWAP11 exchanges both slots = SWAP4.
    let s00 = two_unit_class_unitary(GateClass::Swap00);
    let s11 = two_unit_class_unitary(GateClass::Swap11);
    let composed = s00.mul_mat(&s11);
    let swap4 = two_unit_class_unitary(GateClass::Swap4);
    assert!(composed.max_abs_diff(&swap4) < 1e-12);
}

#[test]
fn cx_chain_builds_swap_internally() {
    // CX0 · CX1 · CX0 = SWAPin (the 3-CX SWAP identity, internal form).
    let cx0 = one_unit_class_unitary(GateClass::Cx0);
    let cx1 = one_unit_class_unitary(GateClass::Cx1);
    let composed = cx0.mul_mat(&cx1).mul_mat(&cx0);
    let swap = one_unit_class_unitary(GateClass::SwapIn);
    assert!(composed.max_abs_diff(&swap) < 1e-12);
}

#[test]
fn enc_conjugation_turns_cx2_into_internal_cx() {
    // ENC · CX2 · DEC on an encoded input acts as the internal CX0 with
    // unit B restored to |0⟩ — the core claim of the encoding (Figure 2).
    let enc = two_unit_class_unitary(GateClass::Enc);
    let dec = two_unit_class_unitary(GateClass::Dec);
    let cx2 = two_unit_class_unitary(GateClass::Cx2);
    let conj = enc.mul_mat(&cx2).mul_mat(&dec);
    let cx0 = one_unit_class_unitary(GateClass::Cx0);
    for a_in in 0..4usize {
        for a_out in 0..4usize {
            let got = conj[(a_out * 4, a_in * 4)];
            let expect = cx0[(a_out, a_in)];
            assert!(
                (got - expect).abs() < 1e-12,
                "block ({a_out},{a_in}) mismatch: {got} vs {expect}"
            );
        }
    }
}

#[test]
fn partial_cx_restricted_to_bare_target_matches_cx2_block() {
    // CXq0 with the encoded unit holding only its slot-0 qubit (slot 1
    // vacuum) behaves like CX2 with roles matched: control bare b flips
    // the q0 bit (levels 0↔2).
    let cxq0 = two_unit_class_unitary(GateClass::CxBareE0);
    // Input (a=0, b=1) -> (a=2, b=1).
    let col = 1; // a = 0, b = 1
    let row = 2 * 4 + 1;
    assert_eq!(cxq0[(row, col)], C64::ONE);
    // Input (a=0, b=0) unchanged.
    assert_eq!(cxq0[(0, 0)], C64::ONE);
}
