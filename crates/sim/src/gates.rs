//! Concrete unitaries: standard single-qubit gates, their embeddings into
//! 4-level physical units, and the full Qompress physical gate set built
//! from the permutation semantics in [`qompress_pulse::gateset`].

use qompress_circuit::SingleQubitKind;
use qompress_linalg::{CMat, C64};
use qompress_pulse::gateset::{one_unit_permutation, two_unit_permutation};
use qompress_pulse::GateClass;

/// The 2×2 unitary of a logical single-qubit gate.
pub fn single_qubit_unitary(kind: SingleQubitKind) -> CMat {
    use std::f64::consts::FRAC_1_SQRT_2;
    let c = C64::real;
    match kind {
        SingleQubitKind::X => CMat::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]),
        SingleQubitKind::Y => CMat::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]]),
        SingleQubitKind::Z => CMat::diag(&[C64::ONE, -C64::ONE]),
        SingleQubitKind::H => CMat::from_rows(&[
            &[c(FRAC_1_SQRT_2), c(FRAC_1_SQRT_2)],
            &[c(FRAC_1_SQRT_2), c(-FRAC_1_SQRT_2)],
        ]),
        SingleQubitKind::S => CMat::diag(&[C64::ONE, C64::I]),
        SingleQubitKind::Sdg => CMat::diag(&[C64::ONE, -C64::I]),
        SingleQubitKind::T => CMat::diag(&[C64::ONE, C64::cis(std::f64::consts::FRAC_PI_4)]),
        SingleQubitKind::Tdg => CMat::diag(&[C64::ONE, C64::cis(-std::f64::consts::FRAC_PI_4)]),
        SingleQubitKind::Rz(t) => CMat::diag(&[C64::cis(-t / 2.0), C64::cis(t / 2.0)]),
        SingleQubitKind::Rx(t) => {
            let (cos, sin) = ((t / 2.0).cos(), (t / 2.0).sin());
            CMat::from_rows(&[
                &[c(cos), C64::new(0.0, -sin)],
                &[C64::new(0.0, -sin), c(cos)],
            ])
        }
        SingleQubitKind::Ry(t) => {
            let (cos, sin) = ((t / 2.0).cos(), (t / 2.0).sin());
            CMat::from_rows(&[&[c(cos), c(-sin)], &[c(sin), c(cos)]])
        }
    }
}

/// Embeds a 2×2 unitary on levels `{0,1}` of a 4-level unit (bare qubit).
pub fn embed_bare(u: &CMat) -> CMat {
    CMat::embed(u, 4, &[0, 1])
}

/// Embeds a 2×2 unitary on one encoded slot of a ququart: slot 0 acts on
/// the high bit (`U ⊗ I`), slot 1 on the low bit (`I ⊗ U`) under the
/// encoding `|2·q0 + q1⟩`.
pub fn embed_slot(u: &CMat, slot: usize) -> CMat {
    assert!(slot < 2, "slot must be 0 or 1");
    let id = CMat::identity(2);
    if slot == 0 {
        u.kron(&id)
    } else {
        id.kron(u)
    }
}

/// The merged ququart gate applying `u` on slot 0 and `v` on slot 1
/// simultaneously (the paper's `X0,1`-class operation).
pub fn merged_pair(u: &CMat, v: &CMat) -> CMat {
    u.kron(v)
}

/// The 4×4 unitary of a single-unit permutation gate class
/// (`Cx0`, `Cx1`, `SwapIn`).
///
/// # Panics
///
/// Panics for classes that are not single-unit permutations.
pub fn one_unit_class_unitary(class: GateClass) -> CMat {
    let mut m = CMat::zeros(4, 4);
    for a in 0..4 {
        let out = one_unit_permutation(class, a);
        m[(out, a)] = C64::ONE;
    }
    m
}

/// The 16×16 unitary of a two-unit gate class on a pair of 4-level units,
/// with matrix index `la·4 + lb`.
///
/// # Panics
///
/// Panics for single-unit classes.
pub fn two_unit_class_unitary(class: GateClass) -> CMat {
    let mut m = CMat::zeros(16, 16);
    for a in 0..4 {
        for b in 0..4 {
            let (x, y) = two_unit_permutation(class, a, b);
            m[(x * 4 + y, a * 4 + b)] = C64::ONE;
        }
    }
    m
}

/// The 4×4 logical-qubit CX with matrix index `control·2 + target`.
pub fn cx_qubit() -> CMat {
    let mut m = CMat::zeros(4, 4);
    m[(0, 0)] = C64::ONE;
    m[(1, 1)] = C64::ONE;
    m[(3, 2)] = C64::ONE;
    m[(2, 3)] = C64::ONE;
    m
}

/// The 4×4 logical-qubit SWAP.
pub fn swap_qubit() -> CMat {
    let mut m = CMat::zeros(4, 4);
    m[(0, 0)] = C64::ONE;
    m[(2, 1)] = C64::ONE;
    m[(1, 2)] = C64::ONE;
    m[(3, 3)] = C64::ONE;
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_single_qubit_gates_unitary() {
        use SingleQubitKind::*;
        for kind in [X, Y, Z, H, S, Sdg, T, Tdg, Rz(0.7), Rx(1.2), Ry(-0.4)] {
            assert!(
                single_qubit_unitary(kind).is_unitary(1e-12),
                "{kind:?} not unitary"
            );
        }
    }

    #[test]
    fn t_tdg_inverse() {
        let t = single_qubit_unitary(SingleQubitKind::T);
        let tdg = single_qubit_unitary(SingleQubitKind::Tdg);
        assert!(t.mul_mat(&tdg).is_identity(1e-12));
    }

    #[test]
    fn embed_bare_leaves_high_levels() {
        let x = single_qubit_unitary(SingleQubitKind::X);
        let e = embed_bare(&x);
        assert_eq!(e[(2, 2)], C64::ONE);
        assert_eq!(e[(3, 3)], C64::ONE);
        assert_eq!(e[(1, 0)], C64::ONE);
        assert!(e.is_unitary(1e-12));
    }

    #[test]
    fn embed_slot0_is_x0_permutation() {
        // X on slot 0 maps |0⟩↔|2⟩, |1⟩↔|3⟩ (paper §3.1.1).
        let x = single_qubit_unitary(SingleQubitKind::X);
        let e = embed_slot(&x, 0);
        assert_eq!(e[(2, 0)], C64::ONE);
        assert_eq!(e[(3, 1)], C64::ONE);
        assert_eq!(e[(0, 2)], C64::ONE);
        assert_eq!(e[(1, 3)], C64::ONE);
    }

    #[test]
    fn embed_slot1_is_x1_permutation() {
        let x = single_qubit_unitary(SingleQubitKind::X);
        let e = embed_slot(&x, 1);
        assert_eq!(e[(1, 0)], C64::ONE);
        assert_eq!(e[(0, 1)], C64::ONE);
        assert_eq!(e[(3, 2)], C64::ONE);
        assert_eq!(e[(2, 3)], C64::ONE);
    }

    #[test]
    fn merged_pair_acts_independently() {
        let x = single_qubit_unitary(SingleQubitKind::X);
        let z = single_qubit_unitary(SingleQubitKind::Z);
        let m = merged_pair(&x, &z);
        // |01⟩ = level 1 -> X on q0, Z on q1: level 3 with phase -1.
        assert_eq!(m[(3, 1)], -C64::ONE);
        assert!(m.is_unitary(1e-12));
    }

    #[test]
    fn class_unitaries_are_unitary() {
        for class in [GateClass::Cx0, GateClass::Cx1, GateClass::SwapIn] {
            assert!(one_unit_class_unitary(class).is_unitary(1e-12));
        }
        for class in [
            GateClass::Cx2,
            GateClass::Swap2,
            GateClass::CxE0Bare,
            GateClass::CxBareE1,
            GateClass::SwapBareE0,
            GateClass::Cx00,
            GateClass::Swap11,
            GateClass::Swap4,
            GateClass::Enc,
            GateClass::Dec,
        ] {
            assert!(two_unit_class_unitary(class).is_unitary(1e-12), "{class}");
        }
    }

    #[test]
    fn internal_cx_matches_embedded_logical_cx() {
        // CX0 (control slot 0, target slot 1) must equal the 2-qubit CX
        // lifted through the encoding.
        let internal = one_unit_class_unitary(GateClass::Cx0);
        let logical = cx_qubit(); // control = high bit = slot 0 ordering
        assert!(internal.max_abs_diff(&logical) < 1e-12);
    }

    #[test]
    fn swap_in_matches_embedded_swap() {
        let internal = one_unit_class_unitary(GateClass::SwapIn);
        assert!(internal.max_abs_diff(&swap_qubit()) < 1e-12);
    }

    #[test]
    fn enc_then_dec_is_identity_on_logical_inputs() {
        let enc = two_unit_class_unitary(GateClass::Enc);
        let dec = two_unit_class_unitary(GateClass::Dec);
        assert!(dec.mul_mat(&enc).is_identity(1e-12));
    }
}
