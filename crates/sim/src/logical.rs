//! Reference simulation of *logical* circuits on ideal qubits.

use crate::gates::{cx_qubit, single_qubit_unitary, swap_qubit};
use crate::state::State;
use qompress_circuit::{Circuit, Gate};

/// Simulates `circuit` from the given initial computational basis state
/// (one bit per qubit), returning the final state over `2^n` amplitudes.
///
/// # Panics
///
/// Panics if `init` length mismatches the circuit's qubit count.
pub fn simulate_logical(circuit: &Circuit, init: &[usize]) -> State {
    assert_eq!(init.len(), circuit.n_qubits(), "initial state length");
    let mut state = State::basis(vec![2; circuit.n_qubits()], init);
    for gate in circuit.iter() {
        apply_logical_gate(&mut state, gate);
    }
    state
}

/// Applies one logical gate to a qubit-register state.
pub fn apply_logical_gate(state: &mut State, gate: &Gate) {
    match *gate {
        Gate::Single { kind, qubit } => {
            state.apply_one(qubit, &single_qubit_unitary(kind));
        }
        Gate::Cx { control, target } => {
            state.apply_two(control, target, &cx_qubit());
        }
        Gate::Swap { a, b } => {
            state.apply_two(a, b, &swap_qubit());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_linalg::C64;

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let s = simulate_logical(&c, &[0, 0]);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!((s.amp(&[0, 0]) - C64::real(r)).abs() < 1e-12);
        assert!((s.amp(&[1, 1]) - C64::real(r)).abs() < 1e-12);
        assert!(s.amp(&[0, 1]).abs() < 1e-12);
    }

    #[test]
    fn cx_on_basis_states() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        assert_eq!(simulate_logical(&c, &[1, 0]).amp(&[1, 1]), C64::ONE);
        assert_eq!(simulate_logical(&c, &[0, 1]).amp(&[0, 1]), C64::ONE);
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut c = Circuit::new(3);
        c.push(Gate::swap(0, 2));
        assert_eq!(simulate_logical(&c, &[1, 0, 0]).amp(&[0, 0, 1]), C64::ONE);
    }

    #[test]
    fn ccx_truth_table() {
        let mut c = Circuit::new(3);
        c.push_ccx(0, 1, 2);
        for a in 0..2 {
            for b in 0..2 {
                for t in 0..2 {
                    let s = simulate_logical(&c, &[a, b, t]);
                    let want_t = if a == 1 && b == 1 { t ^ 1 } else { t };
                    let p = s.probability(&[a, b, want_t]);
                    assert!((p - 1.0).abs() < 1e-9, "ccx({a},{b},{t}) gave p={p}");
                }
            }
        }
    }

    #[test]
    fn cswap_truth_table() {
        let mut c = Circuit::new(3);
        c.push_cswap(0, 1, 2);
        for ctrl in 0..2 {
            for x in 0..2 {
                for y in 0..2 {
                    let s = simulate_logical(&c, &[ctrl, x, y]);
                    let (wx, wy) = if ctrl == 1 { (y, x) } else { (x, y) };
                    assert!(
                        (s.probability(&[ctrl, wx, wy]) - 1.0).abs() < 1e-9,
                        "cswap({ctrl},{x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn cuccaro_adds_correctly() {
        // 2-bit adder: verify a + b on every input pair.
        use qompress_workloads_shim::cuccaro_like;
        let (circuit, layout_b, layout_a) = cuccaro_like();
        for a_val in 0..4usize {
            for b_val in 0..4usize {
                let mut init = vec![0usize; circuit.n_qubits()];
                for i in 0..2 {
                    init[layout_a[i]] = (a_val >> i) & 1;
                    init[layout_b[i]] = (b_val >> i) & 1;
                }
                let s = simulate_logical(&circuit, &init);
                let sum = a_val + b_val;
                let mut want = init.clone();
                for i in 0..2 {
                    want[layout_b[i]] = (sum >> i) & 1;
                }
                want[circuit.n_qubits() - 1] = (sum >> 2) & 1; // carry out
                assert!((s.probability(&want) - 1.0).abs() < 1e-9, "{a_val}+{b_val}");
            }
        }
    }

    /// Minimal in-test replica of the Cuccaro construction so this crate
    /// does not depend on `qompress-workloads` (which would be cyclic in
    /// dev-dependencies). Mirrors `qompress_workloads::cuccaro_adder(2)`.
    mod qompress_workloads_shim {
        use qompress_circuit::{Circuit, Gate};

        pub fn cuccaro_like() -> (Circuit, [usize; 2], [usize; 2]) {
            // Layout: c=0, b0=1, a0=2, b1=3, a1=4, z=5.
            let mut c = Circuit::new(6);
            let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
                c.push(Gate::cx(z, y));
                c.push(Gate::cx(z, x));
                c.push_ccx(x, y, z);
            };
            let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
                c.push_ccx(x, y, z);
                c.push(Gate::cx(z, x));
                c.push(Gate::cx(x, y));
            };
            maj(&mut c, 0, 1, 2);
            maj(&mut c, 2, 3, 4);
            c.push(Gate::cx(4, 5));
            uma(&mut c, 2, 3, 4);
            uma(&mut c, 0, 1, 2);
            (c, [1, 3], [2, 4])
        }
    }
}
