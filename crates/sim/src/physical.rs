//! Execution of *physical* mixed-radix operations on a register of 4-level
//! units.
//!
//! The compiler emits operations labeled by [`GateClass`]; this module maps
//! each class to its concrete unitary and applies it. Every physical unit is
//! simulated with all four levels whether it is used as a bare qubit or as
//! an encoded ququart — exactly the hardware picture of the paper.

use crate::gates::{
    embed_bare, embed_slot, merged_pair, one_unit_class_unitary, single_qubit_unitary,
    two_unit_class_unitary,
};
use crate::state::State;
use qompress_circuit::SingleQubitKind;
use qompress_pulse::GateClass;

/// Creates the all-ground physical register for `n_units` transmons.
pub fn physical_zero_state(n_units: usize) -> State {
    State::zero(vec![4; n_units])
}

/// Applies a single-qubit logical gate physically.
///
/// `class` selects the embedding: [`GateClass::X`] acts on a bare unit's
/// levels `{0,1}`, [`GateClass::X0`]/[`GateClass::X1`] act on one encoded
/// slot of a ququart.
///
/// # Panics
///
/// Panics if `class` is not one of `X`, `X0`, `X1`.
pub fn apply_single(state: &mut State, unit: usize, kind: SingleQubitKind, class: GateClass) {
    let u2 = single_qubit_unitary(kind);
    let u4 = match class {
        GateClass::X => embed_bare(&u2),
        GateClass::X0 => embed_slot(&u2, 0),
        GateClass::X1 => embed_slot(&u2, 1),
        _ => panic!("{class} is not a single-qubit embedding class"),
    };
    state.apply_one(unit, &u4);
}

/// Applies two merged single-qubit gates on the two slots of one ququart
/// (the `X0,1` class).
pub fn apply_merged(
    state: &mut State,
    unit: usize,
    kind0: SingleQubitKind,
    kind1: SingleQubitKind,
) {
    let u = merged_pair(&single_qubit_unitary(kind0), &single_qubit_unitary(kind1));
    state.apply_one(unit, &u);
}

/// Applies an internal ququart operation (`Cx0`, `Cx1`, `SwapIn`).
///
/// # Panics
///
/// Panics for non-internal classes.
pub fn apply_internal(state: &mut State, unit: usize, class: GateClass) {
    state.apply_one(unit, &one_unit_class_unitary(class));
}

/// Applies a two-unit gate of the given class to units `(a, b)` in the
/// class's operand order (encoded side first for mixed classes, control
/// side first for `CX`-style classes — see [`qompress_pulse::gateset`]).
pub fn apply_two_unit(state: &mut State, a: usize, b: usize, class: GateClass) {
    state.apply_two(a, b, &two_unit_class_unitary(class));
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_linalg::C64;

    #[test]
    fn enc_packs_two_qubits() {
        let mut s = State::basis(vec![4, 4], &[1, 1]); // |q0=1⟩, |q1=1⟩
        apply_two_unit(&mut s, 0, 1, GateClass::Enc);
        assert_eq!(s.amp(&[3, 0]), C64::ONE); // |11⟩ -> level 3
    }

    #[test]
    fn enc_dec_roundtrip() {
        for a in 0..2 {
            for b in 0..2 {
                let mut s = State::basis(vec![4, 4], &[a, b]);
                apply_two_unit(&mut s, 0, 1, GateClass::Enc);
                apply_two_unit(&mut s, 0, 1, GateClass::Dec);
                assert_eq!(s.amp(&[a, b]), C64::ONE, "({a},{b})");
            }
        }
    }

    #[test]
    fn internal_cx_after_encoding_matches_logical_cx() {
        // Encode |q0=1, q1=0⟩ then internal CX0 (control q0): q1 flips.
        let mut s = State::basis(vec![4, 4], &[1, 0]);
        apply_two_unit(&mut s, 0, 1, GateClass::Enc);
        apply_internal(&mut s, 0, GateClass::Cx0);
        // Expect level |11⟩ = 3.
        assert_eq!(s.amp(&[3, 0]), C64::ONE);
    }

    #[test]
    fn partial_cx_encoded_controls_bare_target() {
        // Unit 0 encodes |q0 q1⟩ = |10⟩ (level 2); bare unit 1 at |0⟩.
        let mut s = State::basis(vec![4, 4], &[2, 0]);
        apply_two_unit(&mut s, 0, 1, GateClass::CxE0Bare);
        assert_eq!(s.amp(&[2, 1]), C64::ONE);
        // Control on q1 instead: no flip for level 2 (q1 = 0).
        let mut s2 = State::basis(vec![4, 4], &[2, 0]);
        apply_two_unit(&mut s2, 0, 1, GateClass::CxE1Bare);
        assert_eq!(s2.amp(&[2, 0]), C64::ONE);
    }

    #[test]
    fn swap_bare_e0_moves_logical_qubit() {
        // Encoded unit 0 at |q0 q1⟩=|01⟩ (level 1), bare unit 1 at |1⟩.
        let mut s = State::basis(vec![4, 4], &[1, 1]);
        apply_two_unit(&mut s, 0, 1, GateClass::SwapBareE0);
        // q0 (=0) goes to bare; bare (=1) becomes new q0: level |11⟩=3, bare 0.
        assert_eq!(s.amp(&[3, 0]), C64::ONE);
    }

    #[test]
    fn merged_single_acts_on_both_slots() {
        // Encoded |q0 q1⟩ = |00⟩ (level 0): X on both slots -> |11⟩ = 3.
        let mut s = State::basis(vec![4], &[0]);
        apply_merged(&mut s, 0, SingleQubitKind::X, SingleQubitKind::X);
        assert_eq!(s.amp(&[3]), C64::ONE);
    }

    #[test]
    fn bare_single_gate_ignores_encoded_levels() {
        let mut s = State::basis(vec![4], &[2]);
        apply_single(&mut s, 0, SingleQubitKind::X, GateClass::X);
        assert_eq!(s.amp(&[2]), C64::ONE); // level 2 untouched by bare X
    }

    #[test]
    fn swap4_exchanges_units() {
        let mut s = State::basis(vec![4, 4], &[3, 1]);
        apply_two_unit(&mut s, 0, 1, GateClass::Swap4);
        assert_eq!(s.amp(&[1, 3]), C64::ONE);
    }

    #[test]
    fn cx00_between_two_ququarts() {
        // A = |10⟩ (level 2, q0=1), B = |01⟩ (level 1, q0=0): CX00 flips B's
        // q0 -> B = |11⟩ = 3.
        let mut s = State::basis(vec![4, 4], &[2, 1]);
        apply_two_unit(&mut s, 0, 1, GateClass::Cx00);
        assert_eq!(s.amp(&[2, 3]), C64::ONE);
    }
}
