//! Mixed-radix state vectors.
//!
//! A [`State`] holds the amplitudes of a register of qudits with
//! per-unit dimensions (2 for simulated logical qubits, 4 for physical
//! transmon units). Gates are applied in place with stride arithmetic.

use qompress_linalg::{CMat, C64};

/// A pure state over a register of qudits with independent dimensions.
///
/// Basis index convention is row-major in unit order: unit 0 is the most
/// significant digit.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    dims: Vec<usize>,
    amps: Vec<C64>,
}

impl State {
    /// The all-zeros basis state for the given unit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the register is empty.
    pub fn zero(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "register needs at least one unit");
        assert!(dims.iter().all(|&d| d >= 1), "unit dimension must be >= 1");
        let total: usize = dims.iter().product();
        let mut amps = vec![C64::ZERO; total];
        amps[0] = C64::ONE;
        State { dims, amps }
    }

    /// A specific basis state.
    ///
    /// # Panics
    ///
    /// Panics if `levels` length mismatches or any level is out of range.
    pub fn basis(dims: Vec<usize>, levels: &[usize]) -> Self {
        let mut s = State::zero(dims);
        let idx = s.index_of(levels);
        s.amps[0] = C64::ZERO;
        s.amps[idx] = C64::ONE;
        s
    }

    /// Number of units.
    pub fn n_units(&self) -> usize {
        self.dims.len()
    }

    /// Per-unit dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The raw amplitude vector.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Flat index of a basis assignment.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or out-of-range level.
    pub fn index_of(&self, levels: &[usize]) -> usize {
        assert_eq!(levels.len(), self.dims.len());
        let mut idx = 0;
        for (l, d) in levels.iter().zip(self.dims.iter()) {
            assert!(l < d, "level {l} out of range for dim {d}");
            idx = idx * d + l;
        }
        idx
    }

    /// Amplitude of a basis assignment.
    pub fn amp(&self, levels: &[usize]) -> C64 {
        self.amps[self.index_of(levels)]
    }

    /// Probability of a basis assignment.
    pub fn probability(&self, levels: &[usize]) -> f64 {
        self.amp(levels).norm_sqr()
    }

    /// Squared norm (should stay 1 under unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        qompress_linalg::norm_sqr(&self.amps)
    }

    fn stride(&self, unit: usize) -> usize {
        self.dims[unit + 1..].iter().product()
    }

    /// Applies a `d×d` unitary to one unit.
    ///
    /// # Panics
    ///
    /// Panics if `u` does not match the unit's dimension.
    pub fn apply_one(&mut self, unit: usize, u: &CMat) {
        let d = self.dims[unit];
        assert_eq!(u.rows(), d);
        assert_eq!(u.cols(), d);
        let stride = self.stride(unit);
        let block = stride * d;
        let mut scratch = vec![C64::ZERO; d];
        let n = self.amps.len();
        let mut base = 0;
        while base < n {
            for offset in 0..stride {
                let start = base + offset;
                for k in 0..d {
                    scratch[k] = self.amps[start + k * stride];
                }
                for r in 0..d {
                    let mut acc = C64::ZERO;
                    for c in 0..d {
                        acc += u[(r, c)] * scratch[c];
                    }
                    self.amps[start + r * stride] = acc;
                }
            }
            base += block;
        }
    }

    /// Applies a `(da·db)×(da·db)` unitary to the ordered unit pair
    /// `(a, b)`; the matrix index convention is `la·db + lb`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or dimensions mismatch.
    pub fn apply_two(&mut self, a: usize, b: usize, u: &CMat) {
        assert_ne!(a, b, "two-unit gate needs distinct units");
        let da = self.dims[a];
        let db = self.dims[b];
        let joint = da * db;
        assert_eq!(u.rows(), joint);
        assert_eq!(u.cols(), joint);
        let sa = self.stride(a);
        let sb = self.stride(b);
        let n = self.amps.len();
        let mut scratch = vec![C64::ZERO; joint];
        // Enumerate all basis indices with units a and b at level 0, then
        // fan out over their joint levels.
        let mut visited = vec![false; n];
        for idx in 0..n {
            if visited[idx] {
                continue;
            }
            // Extract levels of a and b at this index.
            let la = (idx / sa) % da;
            let lb = (idx / sb) % db;
            if la != 0 || lb != 0 {
                continue;
            }
            for ka in 0..da {
                for kb in 0..db {
                    let j = idx + ka * sa + kb * sb;
                    visited[j] = true;
                    scratch[ka * db + kb] = self.amps[j];
                }
            }
            for ra in 0..da {
                for rb in 0..db {
                    let mut acc = C64::ZERO;
                    let row = ra * db + rb;
                    for c in 0..joint {
                        acc += u[(row, c)] * scratch[c];
                    }
                    self.amps[idx + ra * sa + rb * sb] = acc;
                }
            }
        }
    }

    /// Total probability of basis states where `unit` is at `level`.
    pub fn marginal_probability(&self, unit: usize, level: usize) -> f64 {
        let stride = self.stride(unit);
        let d = self.dims[unit];
        self.amps
            .iter()
            .enumerate()
            .filter(|(idx, _)| (idx / stride) % d == level)
            .map(|(_, z)| z.norm_sqr())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x2() -> CMat {
        CMat::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
    }

    #[test]
    fn zero_state_has_unit_amp_at_origin() {
        let s = State::zero(vec![2, 4]);
        assert_eq!(s.amp(&[0, 0]), C64::ONE);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn index_convention_row_major() {
        let s = State::zero(vec![2, 4, 3]);
        assert_eq!(s.index_of(&[0, 0, 0]), 0);
        assert_eq!(s.index_of(&[0, 0, 2]), 2);
        assert_eq!(s.index_of(&[0, 1, 0]), 3);
        assert_eq!(s.index_of(&[1, 0, 0]), 12);
    }

    #[test]
    fn apply_one_flips_target_unit_only() {
        let mut s = State::basis(vec![2, 2, 2], &[0, 1, 0]);
        s.apply_one(2, &x2());
        assert_eq!(s.amp(&[0, 1, 1]), C64::ONE);
        s.apply_one(0, &x2());
        assert_eq!(s.amp(&[1, 1, 1]), C64::ONE);
    }

    #[test]
    fn apply_one_on_middle_unit_with_mixed_dims() {
        let mut s = State::basis(vec![4, 2, 4], &[3, 0, 2]);
        s.apply_one(1, &x2());
        assert_eq!(s.amp(&[3, 1, 2]), C64::ONE);
    }

    #[test]
    fn apply_two_cx_semantics() {
        // CX on qubit pair with 4x4 matrix index la*2+lb.
        let mut cx = CMat::zeros(4, 4);
        cx[(0, 0)] = C64::ONE;
        cx[(1, 1)] = C64::ONE;
        cx[(2, 3)] = C64::ONE;
        cx[(3, 2)] = C64::ONE;
        let mut s = State::basis(vec![2, 2], &[1, 0]);
        s.apply_two(0, 1, &cx);
        assert_eq!(s.amp(&[1, 1]), C64::ONE);
        // Control at 0: no-op.
        let mut s2 = State::basis(vec![2, 2], &[0, 1]);
        s2.apply_two(0, 1, &cx);
        assert_eq!(s2.amp(&[0, 1]), C64::ONE);
    }

    #[test]
    fn apply_two_operand_order_matters() {
        let mut cx = CMat::zeros(4, 4);
        cx[(0, 0)] = C64::ONE;
        cx[(1, 1)] = C64::ONE;
        cx[(2, 3)] = C64::ONE;
        cx[(3, 2)] = C64::ONE;
        // Reversed operands: control is unit 1.
        let mut s = State::basis(vec![2, 2], &[0, 1]);
        s.apply_two(1, 0, &cx);
        assert_eq!(s.amp(&[1, 1]), C64::ONE);
    }

    #[test]
    fn apply_two_mixed_dims() {
        // 4-level unit with 2-level unit: SWAP-like permutation u: (a,b) ->
        // swap a's low bit with b.
        let da = 4;
        let db = 2;
        let mut u = CMat::zeros(8, 8);
        for a in 0..da {
            for b in 0..db {
                let (hi, lo) = (a / 2, a % 2);
                let (na, nb) = (2 * hi + b, lo);
                u[(na * db + nb, a * db + b)] = C64::ONE;
            }
        }
        let mut s = State::basis(vec![4, 2], &[1, 0]);
        s.apply_two(0, 1, &u);
        assert_eq!(s.amp(&[0, 1]), C64::ONE);
    }

    #[test]
    fn norm_preserved_by_unitaries() {
        let h = CMat::from_rows(&[
            &[C64::real(std::f64::consts::FRAC_1_SQRT_2); 2],
            &[
                C64::real(std::f64::consts::FRAC_1_SQRT_2),
                C64::real(-std::f64::consts::FRAC_1_SQRT_2),
            ],
        ]);
        let mut s = State::zero(vec![2, 2, 2]);
        for u in 0..3 {
            s.apply_one(u, &h);
        }
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        // Uniform superposition.
        for idx in 0..8 {
            assert!((s.amplitudes()[idx].abs() - (1.0 / 8.0f64).sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn marginal_probability_sums() {
        let mut s = State::zero(vec![2, 2]);
        let h = CMat::from_rows(&[
            &[C64::real(std::f64::consts::FRAC_1_SQRT_2); 2],
            &[
                C64::real(std::f64::consts::FRAC_1_SQRT_2),
                C64::real(-std::f64::consts::FRAC_1_SQRT_2),
            ],
        ]);
        s.apply_one(0, &h);
        assert!((s.marginal_probability(0, 0) - 0.5).abs() < 1e-12);
        assert!((s.marginal_probability(1, 0) - 1.0).abs() < 1e-12);
    }
}
