//! # qompress-sim
//!
//! A mixed-radix state-vector simulator used to *validate* Qompress
//! compilations: every physical transmon is simulated with all four levels,
//! logical reference circuits with ideal qubits, and
//! [`states_equivalent`] proves a compiled circuit reproduces its input up
//! to the encoding and final qubit placement.
//!
//! ```
//! use qompress_sim::{physical_zero_state, apply_single, apply_two_unit};
//! use qompress_circuit::SingleQubitKind;
//! use qompress_pulse::GateClass;
//!
//! // Prepare |11⟩ on two transmons, then compress into one ququart.
//! let mut s = physical_zero_state(2);
//! apply_single(&mut s, 0, SingleQubitKind::X, GateClass::X);
//! apply_single(&mut s, 1, SingleQubitKind::X, GateClass::X);
//! apply_two_unit(&mut s, 0, 1, GateClass::Enc);
//! assert!((s.probability(&[3, 0]) - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the math

mod equivalence;
mod gates;
mod logical;
mod physical;
mod state;

pub use equivalence::{extract_logical_state, states_equivalent, Placement};
pub use gates::{
    cx_qubit, embed_bare, embed_slot, merged_pair, one_unit_class_unitary, single_qubit_unitary,
    swap_qubit, two_unit_class_unitary,
};
pub use logical::{apply_logical_gate, simulate_logical};
pub use physical::{
    apply_internal, apply_merged, apply_single, apply_two_unit, physical_zero_state,
};
pub use state::State;
