//! Logical-vs-physical equivalence checking.
//!
//! After compilation every logical qubit resides at some `(unit, slot)`;
//! this module folds a physical 4-level register state back onto the
//! logical qubit space and compares it with a reference logical simulation.
//! This validates the whole pipeline end to end: gate semantics, routing
//! bookkeeping and layout tracking.
//!
//! Level conventions follow the paper: a *bare* unit stores its qubit in
//! levels `{0,1}` (level = bit), while an *encoded* unit stores the pair as
//! `|2·q0 + q1⟩` with slot 0 the high bit.

use crate::state::State;
use qompress_linalg::{equal_up_to_phase, C64};

/// Where a logical qubit ended up: physical unit and slot (0 or 1).
pub type Placement = (usize, usize);

/// Projects a physical register state onto the logical qubit basis.
///
/// `placements[q] = (unit, slot)` gives the final home of logical qubit
/// `q`; `encoded[u]` says whether unit `u` is an encoded ququart. Units and
/// slots not named by any placement must hold `|0⟩`. Returns the `2^n`
/// logical amplitudes indexed with qubit 0 as the most significant bit —
/// the same convention as [`crate::State`] and [`crate::simulate_logical`]
/// — plus the total captured probability (how much of the physical state
/// lives in the expected subspace; ≈ 1 for a correct compilation).
///
/// # Panics
///
/// Panics if two qubits share a placement, a placement is out of range, a
/// qubit sits at slot 1 of a non-encoded unit, or `encoded` has the wrong
/// length.
pub fn extract_logical_state(
    physical: &State,
    placements: &[Placement],
    encoded: &[bool],
) -> (Vec<C64>, f64) {
    let n = placements.len();
    let n_units = physical.n_units();
    assert_eq!(encoded.len(), n_units, "encoded flags length");
    let mut seen = std::collections::HashSet::new();
    for &(unit, slot) in placements {
        assert!(unit < n_units, "placement unit out of range");
        assert!(slot < 2, "slot must be 0 or 1");
        assert!(
            slot == 0 || encoded[unit],
            "slot 1 of a bare unit cannot hold a qubit"
        );
        assert!(seen.insert((unit, slot)), "duplicate placement");
    }

    let mut logical = vec![C64::ZERO; 1 << n];
    let mut captured = 0.0;
    for x in 0..(1usize << n) {
        // Build the unit-level assignment realizing bitstring x.
        let mut levels = vec![0usize; n_units];
        for (q, &(unit, slot)) in placements.iter().enumerate() {
            let bit = (x >> (n - 1 - q)) & 1;
            levels[unit] += if encoded[unit] {
                // |2·q0 + q1⟩: slot 0 is the high bit.
                bit << (1 - slot)
            } else {
                bit
            };
        }
        let amp = physical.amp(&levels);
        logical[x] = amp;
        captured += amp.norm_sqr();
    }
    (logical, captured)
}

/// Compares a compiled physical state against a reference logical state.
///
/// Returns `true` when (a) at least `1 − tol` of the physical probability
/// mass sits in the subspace described by `placements`, and (b) the folded
/// state equals `logical` up to a global phase.
pub fn states_equivalent(
    physical: &State,
    placements: &[Placement],
    encoded: &[bool],
    logical: &State,
    tol: f64,
) -> bool {
    let (folded, captured) = extract_logical_state(physical, placements, encoded);
    if (1.0 - captured).abs() > tol {
        return false;
    }
    equal_up_to_phase(&folded, logical.amplitudes(), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{apply_single, apply_two_unit, physical_zero_state};
    use qompress_circuit::SingleQubitKind;
    use qompress_pulse::GateClass;

    #[test]
    fn extracts_bare_qubit_bits() {
        // Two bare units, X on unit 1.
        let mut phys = physical_zero_state(2);
        apply_single(&mut phys, 1, SingleQubitKind::X, GateClass::X);
        let placements = vec![(0, 0), (1, 0)];
        let (folded, captured) = extract_logical_state(&phys, &placements, &[false, false]);
        assert!((captured - 1.0).abs() < 1e-12);
        assert_eq!(folded[1], C64::ONE); // |q0 q1⟩ = |01⟩ -> index 0b01
    }

    #[test]
    fn extracts_encoded_pair() {
        // Encode qubits (q0 at slot0, q1 at slot1) of unit 0 after setting
        // q0 = 1 on unit 0 and q1 = 1 on unit 1.
        let mut phys = physical_zero_state(2);
        apply_single(&mut phys, 0, SingleQubitKind::X, GateClass::X);
        apply_single(&mut phys, 1, SingleQubitKind::X, GateClass::X);
        apply_two_unit(&mut phys, 0, 1, GateClass::Enc);
        let placements = vec![(0, 0), (0, 1)];
        let (folded, captured) = extract_logical_state(&phys, &placements, &[true, false]);
        assert!((captured - 1.0).abs() < 1e-12);
        assert_eq!(folded[3], C64::ONE); // both bits set
    }

    #[test]
    fn encoded_single_bit_lands_on_high_level() {
        // q0 = 1, q1 = 0 encoded: unit level must be 2, and extraction with
        // the encoded flag recovers x = 0b01.
        let mut phys = physical_zero_state(2);
        apply_single(&mut phys, 0, SingleQubitKind::X, GateClass::X);
        apply_two_unit(&mut phys, 0, 1, GateClass::Enc);
        assert!((phys.probability(&[2, 0]) - 1.0).abs() < 1e-12);
        let (folded, captured) = extract_logical_state(&phys, &[(0, 0), (0, 1)], &[true, false]);
        assert!((captured - 1.0).abs() < 1e-12);
        assert_eq!(folded[0b10], C64::ONE); // q0 = 1 is the high bit
    }

    #[test]
    fn captured_probability_detects_leakage() {
        // Claim the qubit lives on unit 0 but actually excite unit 1.
        let mut phys = physical_zero_state(2);
        apply_single(&mut phys, 1, SingleQubitKind::X, GateClass::X);
        let (_, captured) = extract_logical_state(&phys, &[(0, 0)], &[false, false]);
        // All mass is outside the claimed subspace (unit 1 must be |0⟩).
        assert!(captured < 1e-12);
    }

    #[test]
    fn states_equivalent_on_bell_pair() {
        use crate::logical::simulate_logical;
        use qompress_circuit::{Circuit, Gate};
        // Logical Bell pair.
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let logical = simulate_logical(&c, &[0, 0]);
        // Physical: H on bare unit 0, CX2 between bare units.
        let mut phys = physical_zero_state(2);
        apply_single(&mut phys, 0, SingleQubitKind::H, GateClass::X);
        apply_two_unit(&mut phys, 0, 1, GateClass::Cx2);
        assert!(states_equivalent(
            &phys,
            &[(0, 0), (1, 0)],
            &[false, false],
            &logical,
            1e-9
        ));
    }

    #[test]
    fn encoded_bell_pair_is_equivalent() {
        use crate::logical::simulate_logical;
        use crate::physical::apply_internal;
        use qompress_circuit::{Circuit, Gate};
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let logical = simulate_logical(&c, &[0, 0]);
        // Physical: encode first, then H on slot 0 and internal CX0.
        let mut phys = physical_zero_state(2);
        apply_two_unit(&mut phys, 0, 1, GateClass::Enc);
        apply_single(&mut phys, 0, SingleQubitKind::H, GateClass::X0);
        apply_internal(&mut phys, 0, GateClass::Cx0);
        assert!(states_equivalent(
            &phys,
            &[(0, 0), (0, 1)],
            &[true, false],
            &logical,
            1e-9
        ));
    }

    #[test]
    fn equivalence_fails_for_wrong_state() {
        use crate::logical::simulate_logical;
        use qompress_circuit::{Circuit, Gate};
        let mut c = Circuit::new(1);
        c.push(Gate::x(0));
        let logical = simulate_logical(&c, &[0]);
        let phys = physical_zero_state(1); // still |0⟩
        assert!(!states_equivalent(
            &phys,
            &[(0, 0)],
            &[false],
            &logical,
            1e-9
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate placement")]
    fn duplicate_placements_rejected() {
        let phys = physical_zero_state(1);
        extract_logical_state(&phys, &[(0, 0), (0, 0)], &[false]);
    }

    #[test]
    #[should_panic(expected = "slot 1 of a bare unit")]
    fn slot_one_of_bare_unit_rejected() {
        let phys = physical_zero_state(1);
        extract_logical_state(&phys, &[(0, 1)], &[false]);
    }
}
