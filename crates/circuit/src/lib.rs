//! # qompress-circuit
//!
//! Logical quantum circuit IR and the analyses Qompress builds on: the
//! dependency DAG with ASAP layering, the time-discounted interaction graph
//! (paper §4.2) and the small graph toolkit (BFS/Dijkstra/shortest-cycle)
//! shared with the architecture layer.
//!
//! ```
//! use qompress_circuit::{Circuit, CircuitDag, Gate, InteractionGraph};
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::h(0));
//! c.push(Gate::cx(0, 1));
//! c.push(Gate::cx(1, 2));
//!
//! let dag = CircuitDag::build(&c);
//! assert_eq!(dag.depth(), 3);
//!
//! let ig = InteractionGraph::build(&c);
//! assert!(ig.weight(0, 1) > ig.weight(1, 2)); // earlier gates weigh more
//! ```

#![warn(missing_docs)]

mod circuit;
mod dag;
mod gate;
pub mod graph;
mod interaction;
mod parametric;

pub use circuit::Circuit;
pub use dag::{ActivityTable, CircuitDag};
pub use gate::{Gate, Qubit, SingleQubitKind};
pub use interaction::InteractionGraph;
pub use parametric::{ParamId, ParametricCircuit, ParametricGate, RotationAxis};
