//! Small undirected-graph utilities shared by the interaction graph and the
//! architecture layer: BFS distances, Dijkstra, graph center and the
//! shortest-cycle-through-vertex search used by the Ring-Based strategy.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simple undirected graph over `0..n` vertices with adjacency lists.
#[derive(Debug, Clone, Default)]
pub struct UGraph {
    adj: Vec<Vec<usize>>,
}

impl UGraph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        UGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge; duplicate and self edges are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        if !self.adj[a].contains(&b) {
            self.adj[a].push(b);
            self.adj[b].push(a);
        }
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Returns `true` if `a` and `b` are adjacent.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(&b)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// All edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for (a, ns) in self.adj.iter().enumerate() {
            for &b in ns {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// BFS hop distances from `src`; unreachable vertices get `usize::MAX`.
    pub fn bfs_distances(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v] {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// The vertex minimizing the sum of BFS distances to all others
    /// (a graph median — the paper's "center-most" unit). Ties break to the
    /// lowest index; unreachable pairs contribute a large constant.
    pub fn center(&self) -> usize {
        let n = self.len();
        let mut best = 0;
        let mut best_score = u64::MAX;
        for v in 0..n {
            let d = self.bfs_distances(v);
            let score: u64 = d
                .iter()
                .map(|&x| {
                    if x == usize::MAX {
                        n as u64 * 2
                    } else {
                        x as u64
                    }
                })
                .sum();
            if score < best_score {
                best_score = score;
                best = v;
            }
        }
        best
    }

    /// Length of the shortest cycle passing through `v`, along with its
    /// vertices, or `None` when `v` lies on no cycle.
    ///
    /// Works by removing each incident edge `(v, u)` in turn and asking for
    /// the shortest alternative `v..u` path; the cycle is that path plus the
    /// removed edge.
    pub fn min_cycle_through(&self, v: usize) -> Option<Vec<usize>> {
        let mut best: Option<Vec<usize>> = None;
        for &u in &self.adj[v] {
            if let Some(path) = self.shortest_path_avoiding_edge(v, u, (v, u)) {
                let better = match &best {
                    None => true,
                    Some(b) => path.len() < b.len(),
                };
                if better {
                    best = Some(path);
                }
            }
        }
        best
    }

    /// Shortest path from `src` to `dst` (inclusive) that never traverses
    /// `banned` in either direction. Returns the vertex list.
    fn shortest_path_avoiding_edge(
        &self,
        src: usize,
        dst: usize,
        banned: (usize, usize),
    ) -> Option<Vec<usize>> {
        let mut prev = vec![usize::MAX; self.len()];
        let mut seen = vec![false; self.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[src] = true;
        queue.push_back(src);
        while let Some(x) = queue.pop_front() {
            if x == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while cur != src {
                    cur = prev[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &y in &self.adj[x] {
                if (x, y) == banned || (y, x) == banned {
                    continue;
                }
                if !seen[y] {
                    seen[y] = true;
                    prev[y] = x;
                    queue.push_back(y);
                }
            }
        }
        None
    }
}

/// A weighted undirected graph for Dijkstra searches (edge costs `>= 0`).
#[derive(Debug, Clone, Default)]
pub struct WGraph {
    adj: Vec<Vec<(usize, f64)>>,
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    cost: f64,
    vertex: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost via reversed comparison; NaN-free by contract.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl WGraph {
    /// Creates a weighted graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        WGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of incident edges of `v` (isolated vertices report 0).
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Adds an undirected edge with the given cost.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite cost.
    pub fn add_edge(&mut self, a: usize, b: usize, cost: f64) {
        assert!(cost.is_finite() && cost >= 0.0, "invalid edge cost {cost}");
        self.adj[a].push((b, cost));
        self.adj[b].push((a, cost));
    }

    /// Dijkstra distances from `src`; unreachable vertices get `f64::INFINITY`.
    pub fn dijkstra(&self, src: usize) -> Vec<f64> {
        self.dijkstra_core(src, None)
    }

    /// Dijkstra with path recovery: returns `(distances, predecessor)`.
    ///
    /// Runs the exact same search as [`WGraph::dijkstra`] (shared core), so
    /// the distance vector is bit-identical between the two entry points —
    /// callers memoizing both rows may fill either from one run.
    pub fn dijkstra_with_prev(&self, src: usize) -> (Vec<f64>, Vec<usize>) {
        let mut prev = vec![usize::MAX; self.len()];
        let dist = self.dijkstra_core(src, Some(&mut prev));
        (dist, prev)
    }

    /// The single Dijkstra implementation behind both public entry points;
    /// predecessor tracking is the only difference, so distances cannot
    /// drift between [`WGraph::dijkstra`] and [`WGraph::dijkstra_with_prev`].
    fn dijkstra_core(&self, src: usize, mut prev: Option<&mut Vec<usize>>) -> Vec<f64> {
        let mut dist = vec![f64::INFINITY; self.len()];
        let mut heap = BinaryHeap::with_capacity(self.len());
        dist[src] = 0.0;
        heap.push(HeapItem {
            cost: 0.0,
            vertex: src,
        });
        while let Some(HeapItem { cost, vertex }) = heap.pop() {
            if cost > dist[vertex] {
                continue;
            }
            for &(next, w) in &self.adj[vertex] {
                let nd = cost + w;
                if nd < dist[next] {
                    dist[next] = nd;
                    if let Some(prev) = prev.as_deref_mut() {
                        prev[next] = vertex;
                    }
                    heap.push(HeapItem {
                        cost: nd,
                        vertex: next,
                    });
                }
            }
        }
        dist
    }

    /// Recovers the `src..dst` path from a predecessor table produced by
    /// [`WGraph::dijkstra_with_prev`]. Returns `None` when unreachable.
    pub fn path_from_prev(prev: &[usize], src: usize, dst: usize) -> Option<Vec<usize>> {
        if src == dst {
            return Some(vec![src]);
        }
        if prev[dst] == usize::MAX {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[cur];
            path.push(cur);
            if path.len() > prev.len() {
                return None; // defensive: corrupt table
            }
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> UGraph {
        // 0-1-2-0 triangle, 2-3 tail.
        let mut g = UGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn bfs_distances_on_path() {
        let mut g = UGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn center_of_path_is_middle() {
        let mut g = UGraph::new(5);
        for i in 0..4 {
            g.add_edge(i, i + 1);
        }
        assert_eq!(g.center(), 2);
    }

    #[test]
    fn min_cycle_through_triangle_vertex() {
        let g = triangle_plus_tail();
        let cyc = g.min_cycle_through(0).expect("0 lies on the triangle");
        assert_eq!(cyc.len(), 3);
        // Tail vertex 3 lies on no cycle.
        assert!(g.min_cycle_through(3).is_none());
    }

    #[test]
    fn min_cycle_in_square() {
        let mut g = UGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        let cyc = g.min_cycle_through(1).unwrap();
        assert_eq!(cyc.len(), 4);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = UGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        let mut g = WGraph::new(3);
        g.add_edge(0, 2, 10.0);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        let d = g.dijkstra(0);
        assert!((d[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_path_recovery() {
        let mut g = WGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(0, 3, 10.0);
        let (_, prev) = g.dijkstra_with_prev(0);
        let p = WGraph::path_from_prev(&prev, 0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dijkstra_and_with_prev_distances_agree_bitwise() {
        let mut g = WGraph::new(6);
        g.add_edge(0, 1, 0.3);
        g.add_edge(1, 2, 0.7);
        g.add_edge(0, 2, 1.1);
        g.add_edge(2, 3, 0.05);
        g.add_edge(3, 4, 2.0);
        for src in 0..6 {
            let plain = g.dijkstra(src);
            let (with_prev, _) = g.dijkstra_with_prev(src);
            for (a, b) in plain.iter().zip(&with_prev) {
                assert_eq!(a.to_bits(), b.to_bits(), "distances drifted from {src}");
            }
        }
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let g = WGraph::new(2);
        let d = g.dijkstra(0);
        assert!(d[1].is_infinite());
        let (_, prev) = g.dijkstra_with_prev(0);
        assert!(WGraph::path_from_prev(&prev, 0, 1).is_none());
    }

    #[test]
    fn ugraph_edges_listing() {
        let g = triangle_plus_tail();
        let mut e = g.edges();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }
}
