//! The circuit interaction graph and its compression-oriented analyses.
//!
//! The paper weighs each qubit pair by `w(i,j) = Σ_o 1(i,j ∈ o)/s(o)` where
//! `s(o)` is the (1-based) ASAP timestep of operation `o` (§4.2): early
//! interactions matter more than late ones. The Ring-Based and AWE
//! strategies operate on *contractions* of this graph, merging candidate
//! pairs into single nodes.

use crate::circuit::Circuit;
use crate::dag::CircuitDag;
use crate::graph::UGraph;
use std::collections::BTreeMap;

/// Weighted interaction graph between logical qubits.
#[derive(Debug, Clone)]
pub struct InteractionGraph {
    n: usize,
    /// Sparse symmetric weights keyed by `(min, max)`.
    weights: BTreeMap<(usize, usize), f64>,
}

impl InteractionGraph {
    /// Builds the interaction graph of `circuit` using the paper's
    /// time-discounted weighting.
    pub fn build(circuit: &Circuit) -> Self {
        let dag = CircuitDag::build(circuit);
        Self::build_with_dag(circuit, &dag)
    }

    /// Builds the interaction graph reusing an existing DAG.
    pub fn build_with_dag(circuit: &Circuit, dag: &CircuitDag) -> Self {
        let mut weights = BTreeMap::new();
        for (idx, gate) in circuit.iter().enumerate() {
            if let Some((a, b)) = gate.qubit_pair() {
                let key = (a.min(b), a.max(b));
                let s = dag.layer_of(idx) as f64;
                *weights.entry(key).or_insert(0.0) += 1.0 / s;
            }
        }
        InteractionGraph {
            n: circuit.n_qubits(),
            weights,
        }
    }

    /// Number of qubits (vertices).
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The weight `w(i,j)`; zero when the pair never interacts.
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let key = (i.min(j), i.max(j));
        self.weights.get(&key).copied().unwrap_or(0.0)
    }

    /// Total weight `W(i) = Σ_j w(i,j)` of a qubit.
    pub fn total_weight(&self, i: usize) -> f64 {
        self.weights
            .iter()
            .filter(|((a, b), _)| *a == i || *b == i)
            .map(|(_, w)| *w)
            .sum()
    }

    /// The qubit maximizing [`InteractionGraph::total_weight`]; ties break to
    /// the lowest index. Returns `None` for an edgeless graph.
    pub fn heaviest_qubit(&self) -> Option<usize> {
        (0..self.n)
            .map(|i| (i, self.total_weight(i)))
            .filter(|(_, w)| *w > 0.0)
            .max_by(|(ia, wa), (ib, wb)| {
                wa.partial_cmp(wb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i)
    }

    /// Pairs with nonzero weight, as `((a, b), w)` with `a < b`.
    pub fn weighted_edges(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.weights.iter().map(|(&k, &w)| (k, w))
    }

    /// Number of edges with nonzero weight.
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    /// Sum of all edge weights.
    pub fn total_edge_weight(&self) -> f64 {
        self.weights.values().sum()
    }

    /// Average weight per edge; zero for an edgeless graph.
    pub fn average_weight_per_edge(&self) -> f64 {
        if self.weights.is_empty() {
            0.0
        } else {
            self.total_edge_weight() / self.weights.len() as f64
        }
    }

    /// Unweighted view of the interaction structure.
    pub fn to_ugraph(&self) -> UGraph {
        let mut g = UGraph::new(self.n);
        for &(a, b) in self.weights.keys() {
            g.add_edge(a, b);
        }
        g
    }

    /// Neighbors of `i` (qubits with nonzero interaction weight).
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .weights
            .keys()
            .filter_map(|&(a, b)| {
                if a == i {
                    Some(b)
                } else if b == i {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of interaction partners shared by `i` and `j`.
    pub fn shared_neighbors(&self, i: usize, j: usize) -> usize {
        let ni = self.neighbors(i);
        let nj = self.neighbors(j);
        ni.iter().filter(|q| **q != j && nj.contains(q)).count()
    }

    /// Degree (number of interaction partners) of `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.neighbors(i).len()
    }

    /// Number of interactions `i` has with qubits *outside* the given set.
    pub fn external_degree(&self, i: usize, inside: &[usize]) -> usize {
        self.neighbors(i)
            .iter()
            .filter(|q| !inside.contains(q))
            .count()
    }

    /// Contracts `a` and `b` into a single node (keeping index `a`):
    /// weights to common neighbors add; the internal edge disappears.
    ///
    /// Node `b` keeps its index but becomes isolated, which keeps external
    /// indices stable across contractions.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn contract(&self, a: usize, b: usize) -> InteractionGraph {
        assert!(a != b && a < self.n && b < self.n, "bad contraction");
        let mut weights: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for (&(x, y), &w) in &self.weights {
            let rx = if x == b { a } else { x };
            let ry = if y == b { a } else { y };
            if rx == ry {
                continue; // internal edge vanishes
            }
            let key = (rx.min(ry), rx.max(ry));
            *weights.entry(key).or_insert(0.0) += w;
        }
        InteractionGraph { n: self.n, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn sample() -> Circuit {
        // Layer structure:
        //   g0 cx(0,1)  layer 1
        //   g1 cx(1,2)  layer 2
        //   g2 cx(0,1)  layer 3 (after g1 via qubit 1, after g0 via 0)
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        c.push(Gate::cx(0, 1));
        c
    }

    #[test]
    fn weights_use_layer_discount() {
        let g = InteractionGraph::build(&sample());
        // w(0,1) = 1/1 + 1/3 ; w(1,2) = 1/2.
        assert!((g.weight(0, 1) - (1.0 + 1.0 / 3.0)).abs() < 1e-12);
        assert!((g.weight(1, 2) - 0.5).abs() < 1e-12);
        assert_eq!(g.weight(0, 2), 0.0);
    }

    #[test]
    fn weight_is_symmetric() {
        let g = InteractionGraph::build(&sample());
        assert_eq!(g.weight(0, 1), g.weight(1, 0));
    }

    #[test]
    fn total_weight_sums_incident() {
        let g = InteractionGraph::build(&sample());
        assert!((g.total_weight(1) - (1.0 + 1.0 / 3.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn heaviest_qubit_is_hub() {
        let g = InteractionGraph::build(&sample());
        assert_eq!(g.heaviest_qubit(), Some(1));
    }

    #[test]
    fn single_qubit_gates_do_not_contribute() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        let g = InteractionGraph::build(&c);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.heaviest_qubit(), None);
    }

    #[test]
    fn contraction_merges_weights() {
        // Triangle 0-1-2; contract (0,1) -> single edge to 2 with summed weight.
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        c.push(Gate::cx(0, 2));
        let g = InteractionGraph::build(&c);
        let w02 = g.weight(0, 2);
        let w12 = g.weight(1, 2);
        let contracted = g.contract(0, 1);
        assert_eq!(contracted.edge_count(), 1);
        assert!((contracted.weight(0, 2) - (w02 + w12)).abs() < 1e-12);
        assert_eq!(contracted.weight(0, 1), 0.0);
    }

    #[test]
    fn shared_neighbors_in_triangle() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        c.push(Gate::cx(0, 2));
        c.push(Gate::cx(2, 3));
        let g = InteractionGraph::build(&c);
        assert_eq!(g.shared_neighbors(0, 1), 1); // qubit 2
        assert_eq!(g.shared_neighbors(0, 3), 1); // qubit 2
        assert_eq!(g.external_degree(2, &[0, 1]), 1); // edge to 3
    }

    #[test]
    fn average_weight_per_edge() {
        let g = InteractionGraph::build(&sample());
        let expect = (1.0 + 1.0 / 3.0 + 0.5) / 2.0;
        assert!((g.average_weight_per_edge() - expect).abs() < 1e-12);
    }

    #[test]
    fn to_ugraph_mirrors_edges() {
        let g = InteractionGraph::build(&sample());
        let u = g.to_ugraph();
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(1, 2));
        assert!(!u.has_edge(0, 2));
    }
}
