//! The logical circuit container.

use crate::gate::{Gate, Qubit, SingleQubitKind};
use core::fmt;

/// An ordered list of logical gates over `n_qubits` qubits.
///
/// ```
/// use qompress_circuit::{Circuit, Gate};
/// let mut c = Circuit::new(3);
/// c.push(Gate::h(0));
/// c.push(Gate::cx(0, 1));
/// c.push(Gate::cx(1, 2));
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.two_qubit_gate_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of logical qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` when the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate list.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if any operand is out of range or a two-qubit gate addresses
    /// the same qubit twice.
    pub fn push(&mut self, gate: Gate) {
        for q in gate.qubits() {
            assert!(
                q < self.n_qubits,
                "gate {gate} addresses qubit {q} but circuit has {} qubits",
                self.n_qubits
            );
        }
        if let Some((a, b)) = gate.qubit_pair() {
            assert_ne!(a, b, "two-qubit gate with identical operands: {gate}");
        }
        self.gates.push(gate);
    }

    /// Builds a circuit from gates that are already known to be valid for
    /// `n_qubits` (operands in range, no self-loop two-qubit gates).
    ///
    /// Used by the parametric bind path, which validates operands once at
    /// skeleton-construction time and must not pay per-gate re-validation
    /// (or the `Vec` allocation `Gate::qubits` implies) on every stamp-out.
    #[inline]
    pub(crate) fn from_validated(n_qubits: usize, gates: Vec<Gate>) -> Self {
        Circuit { n_qubits, gates }
    }

    /// Appends every gate of `other`, which must act on no more qubits than
    /// `self` has.
    ///
    /// # Panics
    ///
    /// Panics if `other` has more qubits than `self`.
    pub fn extend_from(&mut self, other: &Circuit) {
        assert!(other.n_qubits <= self.n_qubits);
        for g in &other.gates {
            self.push(*g);
        }
    }

    /// Iterates over gates.
    pub fn iter(&self) -> core::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Count of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Indices of the two-qubit gates (CX and SWAP), in circuit order.
    ///
    /// The router's incremental lookahead walks exactly this sequence, so
    /// it is exposed here rather than re-derived per compilation.
    pub fn two_qubit_gate_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_two_qubit())
            .map(|(i, _)| i)
    }

    /// Count of single-qubit gates.
    pub fn single_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_single_qubit()).count()
    }

    /// The set of qubits actually used by at least one gate.
    pub fn used_qubits(&self) -> Vec<Qubit> {
        let mut used = vec![false; self.n_qubits];
        for g in &self.gates {
            for q in g.qubits() {
                used[q] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter_map(|(q, &u)| u.then_some(q))
            .collect()
    }

    /// Appends a decomposed Toffoli (CCX) using the standard 6-CX,
    /// 9-single-qubit construction.
    ///
    /// The compiler's gate set has no native three-qubit operations, so all
    /// workload generators lower CCX through this helper.
    pub fn push_ccx(&mut self, c0: Qubit, c1: Qubit, target: Qubit) {
        use SingleQubitKind::{Tdg, H, T};
        self.push(Gate::single(H, target));
        self.push(Gate::cx(c1, target));
        self.push(Gate::single(Tdg, target));
        self.push(Gate::cx(c0, target));
        self.push(Gate::single(T, target));
        self.push(Gate::cx(c1, target));
        self.push(Gate::single(Tdg, target));
        self.push(Gate::cx(c0, target));
        self.push(Gate::single(T, c1));
        self.push(Gate::single(T, target));
        self.push(Gate::single(H, target));
        self.push(Gate::cx(c0, c1));
        self.push(Gate::single(T, c0));
        self.push(Gate::single(Tdg, c1));
        self.push(Gate::cx(c0, c1));
    }

    /// Appends a decomposed Fredkin (controlled-SWAP) gate:
    /// `CSWAP(c, a, b) = CX(b,a) · CCX(c,a,b) · CX(b,a)`.
    pub fn push_cswap(&mut self, control: Qubit, a: Qubit, b: Qubit) {
        self.push(Gate::cx(b, a));
        self.push_ccx(control, a, b);
        self.push(Gate::cx(b, a));
    }
}

impl FromIterator<Gate> for Circuit {
    /// Builds a circuit sized to the largest qubit index seen.
    fn from_iter<T: IntoIterator<Item = Gate>>(iter: T) -> Self {
        let gates: Vec<Gate> = iter.into_iter().collect();
        let n = gates
            .iter()
            .flat_map(|g| g.qubits())
            .max()
            .map_or(0, |m| m + 1);
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit({} qubits, {} gates)", self.n_qubits, self.len())?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_counts() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.single_qubit_gate_count(), 1);
        assert_eq!(c.two_qubit_gate_count(), 1);
    }

    #[test]
    fn two_qubit_indices_in_order() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0)); // 0
        c.push(Gate::cx(0, 1)); // 1
        c.push(Gate::x(2)); // 2
        c.push(Gate::swap(1, 2)); // 3
        c.push(Gate::cx(2, 0)); // 4
        let idx: Vec<usize> = c.two_qubit_gate_indices().collect();
        assert_eq!(idx, vec![1, 3, 4]);
        assert_eq!(idx.len(), c.two_qubit_gate_count());
    }

    #[test]
    #[should_panic(expected = "addresses qubit")]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(1);
        c.push(Gate::cx(0, 1));
    }

    #[test]
    #[should_panic(expected = "identical operands")]
    fn push_rejects_self_loop() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx {
            control: 1,
            target: 1,
        });
    }

    #[test]
    fn ccx_decomposition_shape() {
        let mut c = Circuit::new(3);
        c.push_ccx(0, 1, 2);
        assert_eq!(c.two_qubit_gate_count(), 6);
        assert_eq!(c.single_qubit_gate_count(), 9);
    }

    #[test]
    fn cswap_decomposition_shape() {
        let mut c = Circuit::new(3);
        c.push_cswap(0, 1, 2);
        assert_eq!(c.two_qubit_gate_count(), 8);
    }

    #[test]
    fn from_iterator_sizes_to_max_qubit() {
        let c: Circuit = vec![Gate::h(0), Gate::cx(2, 4)].into_iter().collect();
        assert_eq!(c.n_qubits(), 5);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn used_qubits_skips_idle() {
        let mut c = Circuit::new(5);
        c.push(Gate::cx(0, 3));
        assert_eq!(c.used_qubits(), vec![0, 3]);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        let s = format!("{c}");
        assert!(s.contains("cx q0, q1"));
    }
}
