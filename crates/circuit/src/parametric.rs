//! Parametric circuit skeletons: rotation gates with symbolic angles.
//!
//! Parameter-sweep workloads (QAOA, VQE) compile one circuit *structure*
//! under many rotation-angle vectors. A [`ParametricCircuit`] captures
//! that structure once: every gate is either a fully concrete [`Gate`] or
//! a rotation site carrying a symbolic parameter id instead of an angle.
//! [`ParametricCircuit::bind`] stamps a concrete angle vector into the
//! skeleton in `O(gates)` with a single allocation, producing an ordinary
//! [`Circuit`] the compiler accepts unchanged.
//!
//! ```
//! use qompress_circuit::{Gate, ParametricCircuit, RotationAxis};
//!
//! let mut skeleton = ParametricCircuit::new(2);
//! skeleton.push(Gate::h(0));
//! skeleton.push_param(RotationAxis::Rz, 0, 0);
//! skeleton.push(Gate::cx(0, 1));
//! skeleton.push_param(RotationAxis::Rx, 1, 1);
//! assert_eq!(skeleton.n_params(), 2);
//!
//! let bound = skeleton.bind(&[0.5, -0.25]);
//! assert_eq!(bound.gates()[1], Gate::rz(0.5, 0));
//! assert_eq!(bound.gates()[3], Gate::single(
//!     qompress_circuit::SingleQubitKind::Rx(-0.25), 1));
//! ```

use crate::circuit::Circuit;
use crate::gate::{Gate, Qubit, SingleQubitKind};
use core::fmt;

/// Identifier of one formal parameter of a [`ParametricCircuit`].
///
/// Parameter ids are dense indices into the angle vector passed to
/// [`ParametricCircuit::bind`]; the same id may appear at many rotation
/// sites (all of them receive the same bound angle).
pub type ParamId = usize;

/// The rotation axis of a parametric rotation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationAxis {
    /// X-axis rotation (`rx`).
    Rx,
    /// Y-axis rotation (`ry`).
    Ry,
    /// Z-axis rotation (`rz`).
    Rz,
}

impl RotationAxis {
    /// The concrete [`SingleQubitKind`] for this axis at `angle` radians.
    pub fn kind(self, angle: f64) -> SingleQubitKind {
        match self {
            RotationAxis::Rx => SingleQubitKind::Rx(angle),
            RotationAxis::Ry => SingleQubitKind::Ry(angle),
            RotationAxis::Rz => SingleQubitKind::Rz(angle),
        }
    }

    /// The lowercase gate name (`"rx"`, `"ry"`, `"rz"`).
    pub fn name(self) -> &'static str {
        match self {
            RotationAxis::Rx => "rx",
            RotationAxis::Ry => "ry",
            RotationAxis::Rz => "rz",
        }
    }
}

/// One gate of a [`ParametricCircuit`]: concrete, or a rotation whose
/// angle is a formal parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParametricGate {
    /// A fully concrete gate (including rotations with literal angles).
    Fixed(Gate),
    /// A rotation site: `axis(param)` applied to `qubit`.
    Rotation {
        /// Which rotation axis.
        axis: RotationAxis,
        /// The formal parameter supplying the angle at bind time.
        param: ParamId,
        /// Target qubit.
        qubit: Qubit,
    },
}

/// A circuit skeleton over `n_qubits` qubits whose rotation angles may be
/// symbolic (the module-level comment walks through the sweep workflow).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParametricCircuit {
    n_qubits: usize,
    gates: Vec<ParametricGate>,
    /// One past the largest parameter id referenced so far (= the length
    /// [`ParametricCircuit::bind`] requires of its angle vector).
    n_params: usize,
}

impl ParametricCircuit {
    /// Creates an empty skeleton over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        ParametricCircuit {
            n_qubits,
            gates: Vec::new(),
            n_params: 0,
        }
    }

    /// Number of logical qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates (concrete and parametric).
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` when the skeleton has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Length of the angle vector [`ParametricCircuit::bind`] expects:
    /// one past the largest parameter id referenced by any rotation site.
    #[inline]
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Number of parametric rotation sites (a parameter used at three
    /// sites counts three times).
    pub fn site_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, ParametricGate::Rotation { .. }))
            .count()
    }

    /// The gate stream.
    #[inline]
    pub fn gates(&self) -> &[ParametricGate] {
        &self.gates
    }

    /// Appends a concrete gate.
    ///
    /// # Panics
    ///
    /// Panics if any operand is out of range or a two-qubit gate addresses
    /// the same qubit twice (same contract as [`Circuit::push`]).
    pub fn push(&mut self, gate: Gate) {
        for q in gate.qubits() {
            assert!(
                q < self.n_qubits,
                "gate {gate} addresses qubit {q} but skeleton has {} qubits",
                self.n_qubits
            );
        }
        if let Some((a, b)) = gate.qubit_pair() {
            assert_ne!(a, b, "two-qubit gate with identical operands: {gate}");
        }
        self.gates.push(ParametricGate::Fixed(gate));
    }

    /// Appends a parametric rotation site: `axis(param)` on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn push_param(&mut self, axis: RotationAxis, param: ParamId, qubit: Qubit) {
        assert!(
            qubit < self.n_qubits,
            "{}(theta{param}) addresses qubit {qubit} but skeleton has {} qubits",
            axis.name(),
            self.n_qubits
        );
        let needed = param.checked_add(1).expect("parameter id overflow");
        self.n_params = self.n_params.max(needed);
        self.gates
            .push(ParametricGate::Rotation { axis, param, qubit });
    }

    /// Stamps `angles` into the skeleton, producing a concrete [`Circuit`].
    ///
    /// `O(gates)` with a single allocation (the output gate vector):
    /// operands were validated at push time, so no re-validation happens
    /// here.
    ///
    /// # Panics
    ///
    /// Panics when `angles.len() != self.n_params()` or any bound angle is
    /// non-finite (a NaN or infinite angle would poison fingerprints and
    /// simulation downstream).
    pub fn bind(&self, angles: &[f64]) -> Circuit {
        assert_eq!(
            angles.len(),
            self.n_params,
            "skeleton has {} parameter(s) but {} angle(s) were bound",
            self.n_params,
            angles.len()
        );
        for (p, a) in angles.iter().enumerate() {
            assert!(a.is_finite(), "bound angle theta{p} = {a} is not finite");
        }
        let gates = self
            .gates
            .iter()
            .map(|g| match *g {
                ParametricGate::Fixed(gate) => gate,
                ParametricGate::Rotation { axis, param, qubit } => {
                    Gate::single(axis.kind(angles[param]), qubit)
                }
            })
            .collect();
        Circuit::from_validated(self.n_qubits, gates)
    }
}

impl From<&Circuit> for ParametricCircuit {
    /// Wraps a concrete circuit as a skeleton with zero parameters.
    fn from(circuit: &Circuit) -> Self {
        ParametricCircuit {
            n_qubits: circuit.n_qubits(),
            gates: circuit.iter().map(|&g| ParametricGate::Fixed(g)).collect(),
            n_params: 0,
        }
    }
}

impl fmt::Display for ParametricCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "parametric circuit({} qubits, {} gates, {} params)",
            self.n_qubits,
            self.len(),
            self.n_params
        )?;
        for g in &self.gates {
            match g {
                ParametricGate::Fixed(gate) => writeln!(f, "  {gate}")?,
                ParametricGate::Rotation { axis, param, qubit } => {
                    writeln!(f, "  {}(theta{param}) q{qubit}", axis.name())?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skeleton() -> ParametricCircuit {
        let mut s = ParametricCircuit::new(3);
        s.push(Gate::h(0));
        s.push_param(RotationAxis::Rz, 0, 0);
        s.push(Gate::cx(0, 1));
        s.push_param(RotationAxis::Rx, 1, 1);
        s.push_param(RotationAxis::Rz, 0, 2);
        s
    }

    #[test]
    fn bind_stamps_angles_by_param_id() {
        let s = skeleton();
        assert_eq!(s.n_params(), 2);
        assert_eq!(s.site_count(), 3);
        let c = s.bind(&[0.5, -1.25]);
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(
            c.gates(),
            &[
                Gate::h(0),
                Gate::rz(0.5, 0),
                Gate::cx(0, 1),
                Gate::single(SingleQubitKind::Rx(-1.25), 1),
                Gate::rz(0.5, 2), // param 0 reused at a second site
            ]
        );
    }

    #[test]
    fn zero_param_skeleton_binds_empty() {
        let mut s = ParametricCircuit::new(2);
        s.push(Gate::h(0));
        s.push(Gate::cx(0, 1));
        let c = s.bind(&[]);
        assert_eq!(c.gates(), &[Gate::h(0), Gate::cx(0, 1)]);
    }

    #[test]
    fn from_circuit_round_trips() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::rz(0.75, 1));
        c.push(Gate::cx(0, 1));
        let s = ParametricCircuit::from(&c);
        assert_eq!(s.n_params(), 0);
        assert_eq!(s.bind(&[]), c);
    }

    #[test]
    #[should_panic(expected = "2 parameter(s) but 1 angle(s)")]
    fn bind_rejects_wrong_arity() {
        skeleton().bind(&[0.5]);
    }

    #[test]
    #[should_panic(expected = "is not finite")]
    fn bind_rejects_non_finite_angles() {
        skeleton().bind(&[0.5, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "addresses qubit")]
    fn push_param_rejects_out_of_range() {
        let mut s = ParametricCircuit::new(1);
        s.push_param(RotationAxis::Ry, 0, 1);
    }

    #[test]
    #[should_panic(expected = "identical operands")]
    fn push_rejects_self_loop() {
        let mut s = ParametricCircuit::new(2);
        s.push(Gate::Cx {
            control: 1,
            target: 1,
        });
    }

    #[test]
    fn display_names_formal_params() {
        let text = format!("{}", skeleton());
        assert!(text.contains("rz(theta0) q0"), "{text}");
        assert!(text.contains("rx(theta1) q1"), "{text}");
    }
}
