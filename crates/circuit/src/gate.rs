//! Logical gate definitions.
//!
//! Qompress compiles circuits written over the standard qubit gate set
//! `{single-qubit, CX, SWAP}` (the paper decomposes everything else into
//! this set before compilation, §3.4).

use core::fmt;

/// A logical qubit index inside a [`crate::Circuit`].
pub type Qubit = usize;

/// The kind of a single-qubit logical gate.
///
/// The compiler treats all single-qubit gates as having the duration and
/// fidelity of an `X` pulse (paper §3.4), so the distinction only matters to
/// the state-vector simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SingleQubitKind {
    /// Pauli X (NOT).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// T gate (π/8 phase).
    T,
    /// T-dagger.
    Tdg,
    /// S gate (phase).
    S,
    /// S-dagger.
    Sdg,
    /// Z-axis rotation by the given angle (radians).
    Rz(f64),
    /// X-axis rotation by the given angle (radians).
    Rx(f64),
    /// Y-axis rotation by the given angle (radians).
    Ry(f64),
}

impl fmt::Display for SingleQubitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SingleQubitKind::X => write!(f, "x"),
            SingleQubitKind::Y => write!(f, "y"),
            SingleQubitKind::Z => write!(f, "z"),
            SingleQubitKind::H => write!(f, "h"),
            SingleQubitKind::T => write!(f, "t"),
            SingleQubitKind::Tdg => write!(f, "tdg"),
            SingleQubitKind::S => write!(f, "s"),
            SingleQubitKind::Sdg => write!(f, "sdg"),
            SingleQubitKind::Rz(a) => write!(f, "rz({a:.4})"),
            SingleQubitKind::Rx(a) => write!(f, "rx({a:.4})"),
            SingleQubitKind::Ry(a) => write!(f, "ry({a:.4})"),
        }
    }
}

/// A logical gate acting on one or two qubits.
///
/// ```
/// use qompress_circuit::{Gate, SingleQubitKind};
/// let g = Gate::cx(0, 1);
/// assert_eq!(g.qubits(), vec![0, 1]);
/// assert!(g.is_two_qubit());
/// let h = Gate::single(SingleQubitKind::H, 2);
/// assert_eq!(h.qubits(), vec![2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Gate {
    /// A single-qubit gate.
    Single {
        /// Which unitary.
        kind: SingleQubitKind,
        /// Target qubit.
        qubit: Qubit,
    },
    /// Controlled-X with `control` and `target`.
    Cx {
        /// Control qubit.
        control: Qubit,
        /// Target qubit.
        target: Qubit,
    },
    /// SWAP of two qubits (appears in inputs rarely; mostly inserted by
    /// routing at the physical level).
    Swap {
        /// First qubit.
        a: Qubit,
        /// Second qubit.
        b: Qubit,
    },
}

impl Gate {
    /// Convenience constructor for a single-qubit gate.
    pub fn single(kind: SingleQubitKind, qubit: Qubit) -> Self {
        Gate::Single { kind, qubit }
    }

    /// Convenience constructor for an X gate.
    pub fn x(qubit: Qubit) -> Self {
        Gate::single(SingleQubitKind::X, qubit)
    }

    /// Convenience constructor for an H gate.
    pub fn h(qubit: Qubit) -> Self {
        Gate::single(SingleQubitKind::H, qubit)
    }

    /// Convenience constructor for a Z gate.
    pub fn z(qubit: Qubit) -> Self {
        Gate::single(SingleQubitKind::Z, qubit)
    }

    /// Convenience constructor for a T gate.
    pub fn t(qubit: Qubit) -> Self {
        Gate::single(SingleQubitKind::T, qubit)
    }

    /// Convenience constructor for a T-dagger gate.
    pub fn tdg(qubit: Qubit) -> Self {
        Gate::single(SingleQubitKind::Tdg, qubit)
    }

    /// Convenience constructor for an Rz gate.
    pub fn rz(theta: f64, qubit: Qubit) -> Self {
        Gate::single(SingleQubitKind::Rz(theta), qubit)
    }

    /// Convenience constructor for a CX gate.
    pub fn cx(control: Qubit, target: Qubit) -> Self {
        Gate::Cx { control, target }
    }

    /// Convenience constructor for a SWAP gate.
    pub fn swap(a: Qubit, b: Qubit) -> Self {
        Gate::Swap { a, b }
    }

    /// The qubits this gate touches, in operand order.
    pub fn qubits(&self) -> Vec<Qubit> {
        match *self {
            Gate::Single { qubit, .. } => vec![qubit],
            Gate::Cx { control, target } => vec![control, target],
            Gate::Swap { a, b } => vec![a, b],
        }
    }

    /// Returns `true` for CX and SWAP gates.
    pub fn is_two_qubit(&self) -> bool {
        !matches!(self, Gate::Single { .. })
    }

    /// Returns `true` for single-qubit gates.
    pub fn is_single_qubit(&self) -> bool {
        matches!(self, Gate::Single { .. })
    }

    /// Returns the pair of qubits for a two-qubit gate, `None` otherwise.
    pub fn qubit_pair(&self) -> Option<(Qubit, Qubit)> {
        match *self {
            Gate::Cx { control, target } => Some((control, target)),
            Gate::Swap { a, b } => Some((a, b)),
            Gate::Single { .. } => None,
        }
    }

    /// Remaps qubit indices through `f` (used when embedding subcircuits).
    pub fn map_qubits(&self, mut f: impl FnMut(Qubit) -> Qubit) -> Gate {
        match *self {
            Gate::Single { kind, qubit } => Gate::Single {
                kind,
                qubit: f(qubit),
            },
            Gate::Cx { control, target } => Gate::Cx {
                control: f(control),
                target: f(target),
            },
            Gate::Swap { a, b } => Gate::Swap { a: f(a), b: f(b) },
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Single { kind, qubit } => write!(f, "{kind} q{qubit}"),
            Gate::Cx { control, target } => write!(f, "cx q{control}, q{target}"),
            Gate::Swap { a, b } => write!(f, "swap q{a}, q{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_lists() {
        assert_eq!(Gate::x(3).qubits(), vec![3]);
        assert_eq!(Gate::cx(1, 2).qubits(), vec![1, 2]);
        assert_eq!(Gate::swap(4, 0).qubits(), vec![4, 0]);
    }

    #[test]
    fn arity_predicates() {
        assert!(Gate::h(0).is_single_qubit());
        assert!(!Gate::h(0).is_two_qubit());
        assert!(Gate::cx(0, 1).is_two_qubit());
        assert!(Gate::swap(0, 1).is_two_qubit());
    }

    #[test]
    fn qubit_pair_extraction() {
        assert_eq!(Gate::cx(5, 7).qubit_pair(), Some((5, 7)));
        assert_eq!(Gate::x(1).qubit_pair(), None);
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::cx(0, 1).map_qubits(|q| q + 10);
        assert_eq!(g, Gate::cx(10, 11));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Gate::cx(0, 1)), "cx q0, q1");
        assert_eq!(format!("{}", Gate::rz(0.5, 2)), "rz(0.5000) q2");
    }
}
