//! Dependency DAG, ASAP layering and critical-path analysis.
//!
//! Two gates depend on each other when they share a qubit; the DAG linearizes
//! each qubit's gate sequence and the ASAP layering gives the integer
//! timestep `s(o)` used by the paper's interaction-weight function (§4.2).

use crate::circuit::Circuit;

/// Dependency structure of a [`Circuit`].
#[derive(Debug, Clone)]
pub struct CircuitDag {
    /// Immediate predecessors of each gate (by gate index).
    preds: Vec<Vec<usize>>,
    /// Immediate successors of each gate.
    succs: Vec<Vec<usize>>,
    /// 1-based ASAP layer of each gate.
    layer: Vec<usize>,
    /// Number of layers (depth of the circuit).
    depth: usize,
    /// Length (in gates) of the longest path starting at each gate,
    /// including the gate itself.
    remaining_path: Vec<usize>,
}

impl CircuitDag {
    /// Builds the DAG for `circuit`.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.n_qubits()];

        for (idx, gate) in circuit.iter().enumerate() {
            for q in gate.qubits() {
                if let Some(prev) = last_on_qubit[q] {
                    if !preds[idx].contains(&prev) {
                        preds[idx].push(prev);
                        succs[prev].push(idx);
                    }
                }
                last_on_qubit[q] = Some(idx);
            }
        }

        // ASAP layering: layer = 1 + max(layer of preds).
        let mut layer = vec![0usize; n];
        for idx in 0..n {
            let l = preds[idx].iter().map(|&p| layer[p]).max().unwrap_or(0);
            layer[idx] = l + 1;
        }
        let depth = layer.iter().copied().max().unwrap_or(0);

        // Longest path downward from each gate (in gate count).
        let mut remaining_path = vec![1usize; n];
        for idx in (0..n).rev() {
            let best = succs[idx]
                .iter()
                .map(|&s| remaining_path[s])
                .max()
                .unwrap_or(0);
            remaining_path[idx] = 1 + best;
        }

        CircuitDag {
            preds,
            succs,
            layer,
            depth,
            remaining_path,
        }
    }

    /// Number of gates in the underlying circuit.
    pub fn len(&self) -> usize {
        self.layer.len()
    }

    /// Returns `true` for an empty circuit.
    pub fn is_empty(&self) -> bool {
        self.layer.is_empty()
    }

    /// 1-based ASAP timestep `s(o)` of gate `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn layer_of(&self, idx: usize) -> usize {
        self.layer[idx]
    }

    /// Circuit depth in layers.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Immediate predecessors of gate `idx`.
    pub fn preds(&self, idx: usize) -> &[usize] {
        &self.preds[idx]
    }

    /// Immediate successors of gate `idx`.
    pub fn succs(&self, idx: usize) -> &[usize] {
        &self.succs[idx]
    }

    /// Length (in gates, inclusive) of the longest dependency chain starting
    /// at `idx`; used by the scheduler's tie-breaking rule.
    pub fn remaining_path_len(&self, idx: usize) -> usize {
        self.remaining_path[idx]
    }

    /// Gates grouped by ASAP layer, 1-based (index 0 of the result is layer 1).
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.depth];
        for (idx, &l) in self.layer.iter().enumerate() {
            out[l - 1].push(idx);
        }
        out
    }

    /// Indices of gates on *a* critical path (longest chain). Where several
    /// critical paths exist, one is chosen deterministically (lowest gate
    /// index first).
    pub fn critical_path(&self) -> Vec<usize> {
        if self.is_empty() {
            return Vec::new();
        }
        let total = self.remaining_path.iter().copied().max().unwrap_or(0);
        // Start at the earliest gate achieving the full path length.
        let mut cur = (0..self.len())
            .find(|&i| self.preds[i].is_empty() && self.remaining_path[i] == total)
            .expect("some source gate starts the critical path");
        let mut path = vec![cur];
        while let Some(&next) = self.succs[cur]
            .iter()
            .find(|&&s| self.remaining_path[s] == self.remaining_path[cur] - 1)
        {
            path.push(next);
            cur = next;
        }
        path
    }
}

/// Per-layer activity table: for each layer, which qubits are busy.
///
/// Used by the Ring-Based strategy to estimate how often two qubits are
/// *simultaneously* active (compressing such a pair forces serialization).
#[derive(Debug, Clone)]
pub struct ActivityTable {
    busy: Vec<Vec<bool>>,
}

impl ActivityTable {
    /// Builds the table from a circuit and its DAG.
    pub fn build(circuit: &Circuit, dag: &CircuitDag) -> Self {
        let mut busy = vec![vec![false; circuit.n_qubits()]; dag.depth()];
        for (idx, gate) in circuit.iter().enumerate() {
            let l = dag.layer_of(idx) - 1;
            for q in gate.qubits() {
                busy[l][q] = true;
            }
        }
        ActivityTable { busy }
    }

    /// Number of layers in which both `a` and `b` are active but *not*
    /// within the same gate.
    pub fn simultaneous_count(
        &self,
        circuit: &Circuit,
        dag: &CircuitDag,
        a: usize,
        b: usize,
    ) -> usize {
        // Layers where a 2q gate covers both qubits jointly.
        let mut joint = vec![false; self.busy.len()];
        for (idx, gate) in circuit.iter().enumerate() {
            if let Some((x, y)) = gate.qubit_pair() {
                if (x == a && y == b) || (x == b && y == a) {
                    joint[dag.layer_of(idx) - 1] = true;
                }
            }
        }
        self.busy
            .iter()
            .enumerate()
            .filter(|(l, row)| row[a] && row[b] && !joint[*l])
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn line_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0)); // 0: layer 1
        c.push(Gate::cx(0, 1)); // 1: layer 2
        c.push(Gate::cx(1, 2)); // 2: layer 3
        c.push(Gate::x(0)); // 3: layer 3 (after cx(0,1))
        c
    }

    #[test]
    fn layers_match_hand_computation() {
        let c = line_circuit();
        let dag = CircuitDag::build(&c);
        assert_eq!(dag.layer_of(0), 1);
        assert_eq!(dag.layer_of(1), 2);
        assert_eq!(dag.layer_of(2), 3);
        assert_eq!(dag.layer_of(3), 3);
        assert_eq!(dag.depth(), 3);
    }

    #[test]
    fn dependencies_follow_shared_qubits() {
        let c = line_circuit();
        let dag = CircuitDag::build(&c);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.preds(2), &[1]);
        assert!(dag.succs(1).contains(&2));
        assert!(dag.succs(1).contains(&3));
    }

    #[test]
    fn parallel_gates_share_layer() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(2, 3));
        let dag = CircuitDag::build(&c);
        assert_eq!(dag.layer_of(0), 1);
        assert_eq!(dag.layer_of(1), 1);
        assert_eq!(dag.depth(), 1);
    }

    #[test]
    fn critical_path_is_longest_chain() {
        let c = line_circuit();
        let dag = CircuitDag::build(&c);
        let cp = dag.critical_path();
        assert_eq!(cp, vec![0, 1, 2]);
    }

    #[test]
    fn remaining_path_counts_inclusive() {
        let c = line_circuit();
        let dag = CircuitDag::build(&c);
        assert_eq!(dag.remaining_path_len(0), 3);
        assert_eq!(dag.remaining_path_len(2), 1);
        assert_eq!(dag.remaining_path_len(3), 1);
    }

    #[test]
    fn layers_group_gates() {
        let c = line_circuit();
        let dag = CircuitDag::build(&c);
        let layers = dag.layers();
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0], vec![0]);
        assert_eq!(layers[2], vec![2, 3]);
    }

    #[test]
    fn duplicate_pred_edges_are_merged() {
        // cx(0,1) followed by cx(1,0): the second depends on the first via
        // both qubits, but the edge must appear only once.
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 0));
        let dag = CircuitDag::build(&c);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.succs(0), &[1]);
    }

    #[test]
    fn activity_simultaneity() {
        // Layer 1: cx(0,1) and cx(2,3) -> qubits 0,1,2,3 busy.
        // Pair (0,2): busy in same layer via different gates -> count 1.
        // Pair (0,1): joint gate -> count 0.
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(2, 3));
        let dag = CircuitDag::build(&c);
        let act = ActivityTable::build(&c, &dag);
        assert_eq!(act.simultaneous_count(&c, &dag, 0, 2), 1);
        assert_eq!(act.simultaneous_count(&c, &dag, 0, 1), 0);
    }

    #[test]
    fn empty_circuit_dag() {
        let c = Circuit::new(3);
        let dag = CircuitDag::build(&c);
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert!(dag.critical_path().is_empty());
    }
}
