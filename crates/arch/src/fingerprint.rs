//! Stable structural fingerprinting.
//!
//! The session-level compiler caches ([`crate::Topology`] registries and
//! content-addressed compilation results) need a hash that is **stable
//! across processes and runs** — `std::hash::DefaultHasher` explicitly
//! reserves the right to change between releases and is randomly keyed in
//! collections. [`Fingerprinter`] is a byte-oriented FNV-1a 64-bit hasher
//! with typed write methods; every value is framed by its width (strings
//! and byte slices are length-prefixed) so adjacent fields cannot alias.
//!
//! ```
//! use qompress_arch::Fingerprinter;
//!
//! let mut a = Fingerprinter::new();
//! a.write_u64(1).write_f64(0.5);
//! let mut b = Fingerprinter::new();
//! b.write_u64(1).write_f64(0.5);
//! assert_eq!(a.finish(), b.finish());
//! ```

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher with a stable, documented byte layout.
///
/// Floats are hashed by their IEEE-754 bit pattern (`f64::to_bits`), so
/// `0.0` and `-0.0` fingerprint differently and `NaN` payloads are
/// distinguished — fingerprints are *bit-level* content addresses, not
/// numeric equality classes.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

impl Fingerprinter {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprinter { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes (no length prefix; use [`Self::write_bytes`] for
    /// variable-length data).
    fn absorb(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.absorb(&v.to_le_bytes());
        self
    }

    /// Hashes a `usize` widened to `u64`, so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Hashes an `f64` by bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Hashes a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.absorb(&[v as u8]);
        self
    }

    /// Hashes a length-prefixed byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write_usize(bytes.len());
        self.absorb(bytes);
        self
    }

    /// Hashes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes())
    }

    /// The 64-bit fingerprint of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let fp = |label: &str| {
            let mut h = Fingerprinter::new();
            h.write_str(label).write_u64(42).write_f64(1.5);
            h.finish()
        };
        assert_eq!(fp("x"), fp("x"));
        assert_ne!(fp("x"), fp("y"));
    }

    #[test]
    fn known_fnv1a_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c — pins the constants.
        let mut h = Fingerprinter::new();
        h.absorb(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        let mut a = Fingerprinter::new();
        a.write_str("ab").write_str("c");
        let mut b = Fingerprinter::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_distinguish_signed_zero() {
        let mut a = Fingerprinter::new();
        a.write_f64(0.0);
        let mut b = Fingerprinter::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_write_is_not_a_noop() {
        let mut a = Fingerprinter::new();
        a.write_bytes(b"");
        assert_ne!(a.finish(), Fingerprinter::new().finish());
    }
}
