//! The expanded ("interaction") architecture graph of §4.1.
//!
//! Every physical unit is treated as if it were a ququart and expands into
//! two connected *slots* (encoded-qubit positions). Both slots connect to
//! every slot of every adjacent unit, giving `2V` vertices and `4E + V`
//! edges for a physical topology with `V` units and `E` couplings.

use crate::topology::Topology;
use core::fmt;

/// Which encoded position inside a physical unit a logical qubit occupies.
///
/// Slot 0 is the position a bare qubit uses; slot 1 only ever holds the
/// second qubit of an encoded ququart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SlotIndex {
    /// First encoded position (`q0` in `|q0 q1⟩`).
    Zero,
    /// Second encoded position (`q1`).
    One,
}

impl SlotIndex {
    /// Converts to `0` or `1`.
    #[inline]
    pub fn as_usize(self) -> usize {
        match self {
            SlotIndex::Zero => 0,
            SlotIndex::One => 1,
        }
    }

    /// The other slot of the same unit.
    #[inline]
    pub fn other(self) -> SlotIndex {
        match self {
            SlotIndex::Zero => SlotIndex::One,
            SlotIndex::One => SlotIndex::Zero,
        }
    }
}

/// A slot in the expanded graph: `(physical node, slot index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Slot {
    /// Physical unit index in the underlying [`Topology`].
    pub node: usize,
    /// Position within the unit.
    pub slot: SlotIndex,
}

impl Slot {
    /// Creates a slot.
    pub fn new(node: usize, slot: SlotIndex) -> Self {
        Slot { node, slot }
    }

    /// Slot 0 of a node.
    pub fn zero(node: usize) -> Self {
        Slot::new(node, SlotIndex::Zero)
    }

    /// Slot 1 of a node.
    pub fn one(node: usize) -> Self {
        Slot::new(node, SlotIndex::One)
    }

    /// Dense index in `0..2V` (`2*node + slot`).
    #[inline]
    pub fn index(self) -> usize {
        self.node * 2 + self.slot.as_usize()
    }

    /// Inverse of [`Slot::index`].
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        Slot {
            node: idx / 2,
            slot: if idx.is_multiple_of(2) {
                SlotIndex::Zero
            } else {
                SlotIndex::One
            },
        }
    }

    /// The sibling slot within the same physical unit.
    #[inline]
    pub fn sibling(self) -> Slot {
        Slot::new(self.node, self.slot.other())
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}[{}]", self.node, self.slot.as_usize())
    }
}

/// The expanded slot-level graph of a [`Topology`].
#[derive(Debug, Clone)]
pub struct ExpandedGraph {
    topology: Topology,
    /// Adjacency over slot indices.
    adj: Vec<Vec<usize>>,
    /// Dense unit-coupling bit matrix (`a * n_nodes + b`). The router asks
    /// "are these slots adjacent?" in its innermost loops (executability
    /// checks, front construction, fallback routing), so the probe must be
    /// a plain bit test rather than a hashed set lookup. `V²` bits is tiny
    /// at device scale (a 65-unit heavy-hex is ~0.5 KB), and the graph is
    /// built once per topology and shared.
    unit_adj: Vec<u64>,
}

impl ExpandedGraph {
    /// Expands a physical topology into its slot graph.
    pub fn new(topology: Topology) -> Self {
        let v = topology.n_nodes();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); 2 * v];
        // Internal edge per unit.
        for node in 0..v {
            let a = Slot::zero(node).index();
            let b = Slot::one(node).index();
            adj[a].push(b);
            adj[b].push(a);
        }
        // Four cross edges per physical coupling.
        let mut unit_adj = vec![0u64; (v * v).div_ceil(64)];
        let mut couple = |a: usize, b: usize| {
            let bit = a * v + b;
            unit_adj[bit / 64] |= 1 << (bit % 64);
        };
        for &(p, q) in topology.edges() {
            couple(p, q);
            couple(q, p);
            for sp in [Slot::zero(p), Slot::one(p)] {
                for sq in [Slot::zero(q), Slot::one(q)] {
                    adj[sp.index()].push(sq.index());
                    adj[sq.index()].push(sp.index());
                }
            }
        }
        ExpandedGraph {
            topology,
            adj,
            unit_adj,
        }
    }

    /// Whether two physical units are coupled (dense bit-matrix probe;
    /// agrees with [`Topology::has_edge`] by construction).
    #[inline]
    pub fn units_coupled(&self, a: usize, b: usize) -> bool {
        let bit = a * self.topology.n_nodes() + b;
        (self.unit_adj[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// The underlying physical topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of slots (`2V`).
    pub fn n_slots(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected slot edges (`4E + V`).
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Slots adjacent to `s` (includes the sibling slot).
    pub fn neighbors(&self, s: Slot) -> impl Iterator<Item = Slot> + '_ {
        self.adj[s.index()].iter().map(|&i| Slot::from_index(i))
    }

    /// Whether two slots can interact directly: same unit, or units coupled
    /// in the physical topology.
    #[inline]
    pub fn slots_adjacent(&self, a: Slot, b: Slot) -> bool {
        if a == b {
            return false;
        }
        a.node == b.node || self.units_coupled(a.node, b.node)
    }

    /// All slots.
    pub fn slots(&self) -> impl Iterator<Item = Slot> + '_ {
        (0..self.n_slots()).map(Slot::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_index_roundtrip() {
        for idx in 0..10 {
            assert_eq!(Slot::from_index(idx).index(), idx);
        }
        assert_eq!(Slot::zero(3).index(), 6);
        assert_eq!(Slot::one(3).index(), 7);
        assert_eq!(Slot::one(3).sibling(), Slot::zero(3));
    }

    #[test]
    fn expansion_counts_match_paper_formula() {
        // 2V nodes and 4E + V edges (§4.1).
        for topo in [
            Topology::grid(9),
            Topology::ring(6),
            Topology::heavy_hex_65(),
        ] {
            let v = topo.n_nodes();
            let e = topo.n_edges();
            let ex = ExpandedGraph::new(topo);
            assert_eq!(ex.n_slots(), 2 * v);
            assert_eq!(ex.n_edges(), 4 * e + v);
        }
    }

    #[test]
    fn encoded_qubit_connectivity() {
        // A ququart adjacent to n others: each encoded qubit connects to
        // 2n + 1 other slots (§4.1).
        let topo = Topology::grid(9); // center node 4 has 4 neighbors
        let ex = ExpandedGraph::new(topo);
        let n_neighbors = ex.neighbors(Slot::zero(4)).count();
        assert_eq!(n_neighbors, 2 * 4 + 1);
    }

    #[test]
    fn slots_adjacent_semantics() {
        let ex = ExpandedGraph::new(Topology::line(3));
        assert!(ex.slots_adjacent(Slot::zero(0), Slot::one(0)));
        assert!(ex.slots_adjacent(Slot::one(0), Slot::one(1)));
        assert!(!ex.slots_adjacent(Slot::zero(0), Slot::zero(2)));
        assert!(!ex.slots_adjacent(Slot::zero(1), Slot::zero(1)));
    }

    #[test]
    fn unit_coupling_bitmap_matches_has_edge() {
        for topo in [
            Topology::line(5),
            Topology::grid(9),
            Topology::ring(6),
            Topology::heavy_hex_65(),
        ] {
            let ex = ExpandedGraph::new(topo.clone());
            for a in 0..topo.n_nodes() {
                for b in 0..topo.n_nodes() {
                    assert_eq!(
                        ex.units_coupled(a, b),
                        topo.has_edge(a, b),
                        "bitmap disagrees with has_edge at ({a}, {b}) on {topo}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_form() {
        assert_eq!(format!("{}", Slot::one(7)), "u7[1]");
    }
}
