//! # qompress-arch
//!
//! Mixed-radix architecture models for Qompress: the physical coupling
//! topologies used in the paper's evaluation (§6.1) and the *expanded*
//! slot-level graph of §4.1 in which every physical transmon contributes two
//! encoded-qubit positions.
//!
//! ```
//! use qompress_arch::{ExpandedGraph, Slot, Topology};
//!
//! let topo = Topology::grid(9);
//! let expanded = ExpandedGraph::new(topo);
//! // 2V slots, 4E + V slot edges.
//! assert_eq!(expanded.n_slots(), 18);
//! assert!(expanded.slots_adjacent(Slot::zero(0), Slot::one(0)));
//! ```

#![warn(missing_docs)]

mod expanded;
mod fingerprint;
mod topology;

pub use expanded::{ExpandedGraph, Slot, SlotIndex};
pub use fingerprint::Fingerprinter;
pub use topology::Topology;
