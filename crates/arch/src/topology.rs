//! Physical device topologies used in the paper's evaluation (§6.1):
//! near-square grids sized to the circuit, the 65-qubit IBM heavy-hex
//! lattice, and a 65-node ring.

use crate::fingerprint::Fingerprinter;
use core::fmt;
use std::collections::HashSet;

/// A physical coupling graph: nodes are transmons (each usable as a qubit or
/// a ququart), edges are allowed two-unit interactions.
///
/// Alongside the normalized edge list the topology keeps a per-node
/// adjacency set, so [`Topology::has_edge`] — the routing hot path — is an
/// `O(1)` set probe instead of a linear edge scan. Equality ignores the
/// derived sets: two topologies are equal iff name, node count and edge
/// list agree (the adjacency is a function of the edges).
///
/// ```
/// use qompress_arch::Topology;
/// let grid = Topology::grid(9);
/// assert_eq!(grid.n_nodes(), 9);
/// assert!(grid.has_edge(0, 1));
/// assert!(grid.has_edge(0, 3)); // 3x3 grid: vertical neighbor
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Topology {
    name: String,
    n_nodes: usize,
    edges: Vec<(usize, usize)>,
    /// Derived adjacency sets, one per node. Skipped by serialization (it
    /// is redundant with `edges`); [`Topology::has_edge`] falls back to the
    /// edge list whenever the sets are absent, so a deserialized topology
    /// stays correct and merely loses the `O(1)` probe until rebuilt.
    #[cfg_attr(feature = "serde", serde(skip))]
    adjacency: Vec<HashSet<usize>>,
}

impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.n_nodes == other.n_nodes && self.edges == other.edges
    }
}

impl Eq for Topology {}

impl Topology {
    /// Creates a topology from an explicit edge list.
    ///
    /// Duplicate edges (in either orientation) are dropped, keeping the
    /// first occurrence's position; the scan is `O(E)` via a hash set, so
    /// dense inputs (complete graphs, generated couplings) stay cheap.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self loops.
    pub fn from_edges(name: impl Into<String>, n_nodes: usize, edges: Vec<(usize, usize)>) -> Self {
        let mut seen = HashSet::with_capacity(edges.len());
        let mut normalized = Vec::with_capacity(edges.len());
        let mut adjacency: Vec<HashSet<usize>> = vec![HashSet::new(); n_nodes];
        for (a, b) in edges {
            assert!(a < n_nodes && b < n_nodes, "edge endpoint out of range");
            assert_ne!(a, b, "self loop in topology");
            let e = (a.min(b), a.max(b));
            if seen.insert(e) {
                normalized.push(e);
                adjacency[a].insert(b);
                adjacency[b].insert(a);
            }
        }
        Topology {
            name: name.into(),
            n_nodes,
            edges: normalized,
            adjacency,
        }
    }

    /// The paper's evaluation mesh: a `⌈√n⌉ × ⌈n/⌈√n⌉⌉` rectangular grid
    /// with at least `n` nodes — "just large enough for the circuit".
    pub fn grid(n: usize) -> Self {
        assert!(n > 0, "grid needs at least one node");
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let total = rows * cols;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols));
                }
            }
        }
        Topology::from_edges(format!("grid-{rows}x{cols}"), total, edges)
    }

    /// A ring of `n` nodes.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring needs at least three nodes");
        let edges = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Topology::from_edges(format!("ring-{n}"), n, edges)
    }

    /// A line of `n` nodes.
    pub fn line(n: usize) -> Self {
        assert!(n >= 1, "line needs at least one node");
        let edges = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Topology::from_edges(format!("line-{n}"), n, edges)
    }

    /// Number of units of [`Topology::heavy_hex`] at `distance` without
    /// constructing it: `(5d² + 2d − 5) / 2`.
    ///
    /// Exposed so untrusted size checks (the service's `heavyhex:<d>`
    /// spec) can validate the node count *before* any O(V) construction
    /// runs. `heavy_hex_nodes(5) == 65`, `heavy_hex_nodes(7) == 127`
    /// (IBM Eagle), `heavy_hex_nodes(21) == 1121` (IBM Condor scale).
    ///
    /// # Panics
    ///
    /// Panics unless `distance` is odd and at least 3.
    pub fn heavy_hex_nodes(distance: usize) -> usize {
        assert!(
            distance >= 3 && distance % 2 == 1,
            "heavy-hex distance must be odd and >= 3, got {distance}"
        );
        (5 * distance * distance + 2 * distance - 5) / 2
    }

    /// The IBM heavy-hexagon lattice family, parameterized by code
    /// `distance` (odd, ≥ 3): `d` long rows of `2d+1` qubits (the first
    /// row drops its last column, the last row its first), joined by
    /// `(d+1)/2` bridge qubits per row gap at alternating columns.
    ///
    /// `heavy_hex(5)` is byte-identical (name, node numbering, edge
    /// order) to [`Topology::heavy_hex_65`]; `heavy_hex(7)` is the
    /// 127-unit Eagle coupling map and `heavy_hex(21)` the 1121-unit
    /// Condor-scale device used as the utility-scale benchmark axis.
    ///
    /// # Panics
    ///
    /// Panics unless `distance` is odd and at least 3.
    pub fn heavy_hex(distance: usize) -> Self {
        let d = distance;
        let n_nodes = Self::heavy_hex_nodes(d);
        // Row r spans columns 0..=2d, except row 0 (drops column 2d) and
        // row d−1 (drops column 0). Bridges for gap g sit at columns
        // 2·(g mod 2), stepping by 4, (d+1)/2 of them.
        let row_len = |r: usize| {
            if r == 0 || r == d - 1 {
                2 * d
            } else {
                2 * d + 1
            }
        };
        let col_offset = |r: usize| if r == d - 1 { 1 } else { 0 };
        // Sequential numbering: row 0, gap-0 bridges, row 1, gap-1
        // bridges, … (matches the published 65-qubit map).
        let mut row_base = Vec::with_capacity(d);
        let mut bridge_base = Vec::with_capacity(d - 1);
        let mut next = 0usize;
        for r in 0..d {
            row_base.push(next);
            next += row_len(r);
            if r + 1 < d {
                bridge_base.push(next);
                next += d.div_ceil(2);
            }
        }
        debug_assert_eq!(next, n_nodes);
        let node_at = |r: usize, col: usize| row_base[r] + col - col_offset(r);

        let mut edges = Vec::new();
        for r in 0..d {
            // Horizontal edges along row r.
            for i in 0..row_len(r) - 1 {
                edges.push((row_base[r] + i, row_base[r] + i + 1));
            }
            // Bridges of gap r: first every upper anchor → bridge edge,
            // then every bridge → lower anchor edge (published order).
            if r + 1 < d {
                let cols: Vec<usize> = (0..d.div_ceil(2)).map(|j| 2 * (r % 2) + 4 * j).collect();
                for (j, &col) in cols.iter().enumerate() {
                    edges.push((node_at(r, col), bridge_base[r] + j));
                }
                for (j, &col) in cols.iter().enumerate() {
                    edges.push((bridge_base[r] + j, node_at(r + 1, col)));
                }
            }
        }
        Topology::from_edges(format!("heavy-hex-{n_nodes}"), n_nodes, edges)
    }

    /// The 65-qubit IBM heavy-hex coupling map (Hummingbird family — the
    /// paper's "IBM Ithaca" device): [`Topology::heavy_hex`] at distance
    /// 5, kept as a named constructor for the paper's evaluation device.
    pub fn heavy_hex_65() -> Self {
        Topology::heavy_hex(5)
    }

    /// The published 65-qubit edge list, retained verbatim as the pin for
    /// [`Topology::heavy_hex`]'s generator (see the byte-identity test).
    #[cfg(test)]
    fn heavy_hex_65_literal() -> Self {
        let edges: Vec<(usize, usize)> = vec![
            // row 0
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            // bridges row0 -> row1
            (0, 10),
            (4, 11),
            (8, 12),
            (10, 13),
            (11, 17),
            (12, 21),
            // row 1
            (13, 14),
            (14, 15),
            (15, 16),
            (16, 17),
            (17, 18),
            (18, 19),
            (19, 20),
            (20, 21),
            (21, 22),
            (22, 23),
            // bridges row1 -> row2
            (15, 24),
            (19, 25),
            (23, 26),
            (24, 29),
            (25, 33),
            (26, 37),
            // row 2
            (27, 28),
            (28, 29),
            (29, 30),
            (30, 31),
            (31, 32),
            (32, 33),
            (33, 34),
            (34, 35),
            (35, 36),
            (36, 37),
            // bridges row2 -> row3
            (27, 38),
            (31, 39),
            (35, 40),
            (38, 41),
            (39, 45),
            (40, 49),
            // row 3
            (41, 42),
            (42, 43),
            (43, 44),
            (44, 45),
            (45, 46),
            (46, 47),
            (47, 48),
            (48, 49),
            (49, 50),
            (50, 51),
            // bridges row3 -> row4
            (43, 52),
            (47, 53),
            (51, 54),
            (52, 56),
            (53, 60),
            (54, 64),
            // row 4
            (55, 56),
            (56, 57),
            (57, 58),
            (58, 59),
            (59, 60),
            (60, 61),
            (61, 62),
            (62, 63),
            (63, 64),
        ];
        Topology::from_edges("heavy-hex-65", 65, edges)
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical units.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Normalized edge list (`a < b`).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of coupling edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when `a` and `b` are coupled.
    ///
    /// `O(1)` via the per-node adjacency sets. Out-of-range nodes are
    /// simply not coupled to anything.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        match self.adjacency.get(a) {
            Some(set) => set.contains(&b),
            // Deserialized without the derived sets (or out of range):
            // answer from the edge list.
            None if a < self.n_nodes => self.edges.contains(&(a.min(b), a.max(b))),
            None => false,
        }
    }

    /// Neighbors of a node, sorted ascending.
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        let mut out: Vec<usize> = match self.adjacency.get(v) {
            Some(set) => set.iter().copied().collect(),
            None => self
                .edges
                .iter()
                .filter_map(|&(a, b)| {
                    if a == v {
                        Some(b)
                    } else if b == v {
                        Some(a)
                    } else {
                        None
                    }
                })
                .collect(),
        };
        out.sort_unstable();
        out
    }

    /// A stable 64-bit fingerprint of the coupling *structure*: node count
    /// and normalized edge list, **excluding the name**. Two topologies
    /// with the same structure compile identically whatever they are
    /// called, so session-level topology registries key on this value.
    pub fn structural_fingerprint(&self) -> u64 {
        let mut h = Fingerprinter::new();
        h.write_usize(self.n_nodes).write_usize(self.edges.len());
        for &(a, b) in &self.edges {
            h.write_usize(a).write_usize(b);
        }
        h.finish()
    }

    /// Unweighted graph view (for BFS / center computations).
    pub fn to_ugraph(&self) -> qompress_circuit::graph::UGraph {
        let mut g = qompress_circuit::graph::UGraph::new(self.n_nodes);
        for &(a, b) in &self.edges {
            g.add_edge(a, b);
        }
        g
    }

    /// The median node (minimum total BFS distance) — where mapping starts.
    pub fn center(&self) -> usize {
        self.to_ugraph().center()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nodes, {} edges)",
            self.name,
            self.n_nodes,
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dimensions_cover_request() {
        for n in [1usize, 2, 5, 9, 12, 16, 30, 40] {
            let g = Topology::grid(n);
            assert!(g.n_nodes() >= n, "grid({n}) too small: {}", g.n_nodes());
            // Never more than one extra row's worth of slack.
            let cols = (n as f64).sqrt().ceil() as usize;
            assert!(g.n_nodes() < n + cols);
        }
    }

    #[test]
    fn grid_3x3_structure() {
        let g = Topology::grid(9);
        assert_eq!(g.n_nodes(), 9);
        assert_eq!(g.n_edges(), 12);
        assert!(g.has_edge(4, 1));
        assert!(g.has_edge(4, 3));
        assert!(g.has_edge(4, 5));
        assert!(g.has_edge(4, 7));
        assert!(!g.has_edge(0, 4));
        assert_eq!(g.center(), 4);
    }

    #[test]
    fn ring_degree_is_two() {
        let r = Topology::ring(65);
        assert_eq!(r.n_nodes(), 65);
        assert_eq!(r.n_edges(), 65);
        for v in 0..65 {
            assert_eq!(r.neighbors(v).len(), 2);
        }
    }

    #[test]
    fn heavy_hex_is_the_65q_hummingbird() {
        let h = Topology::heavy_hex_65();
        assert_eq!(h.n_nodes(), 65);
        assert_eq!(h.n_edges(), 72);
        // Degree bounded by 3 in heavy-hex.
        for v in 0..65 {
            let d = h.neighbors(v).len();
            assert!((1..=3).contains(&d), "node {v} degree {d}");
        }
        // Spot checks against the published coupling map.
        assert!(h.has_edge(0, 10));
        assert!(h.has_edge(10, 13));
        assert!(h.has_edge(52, 56));
        assert!(!h.has_edge(9, 10));
    }

    #[test]
    fn heavy_hex_is_connected() {
        let h = Topology::heavy_hex_65();
        let d = h.to_ugraph().bfs_distances(0);
        assert!(d.iter().all(|&x| x != usize::MAX));
    }

    #[test]
    fn heavy_hex_generator_pins_65q_literal() {
        // The parameterized family at d = 5 must reproduce the published
        // 65-qubit map byte-for-byte: name, node count, and edge order.
        let generated = Topology::heavy_hex(5);
        let literal = Topology::heavy_hex_65_literal();
        assert_eq!(generated.name(), literal.name());
        assert_eq!(generated.n_nodes(), literal.n_nodes());
        assert_eq!(generated.edges(), literal.edges());
        assert_eq!(
            generated.structural_fingerprint(),
            literal.structural_fingerprint()
        );
    }

    #[test]
    fn heavy_hex_family_sizes() {
        for (d, n) in [(3usize, 23usize), (5, 65), (7, 127), (21, 1121), (31, 2431)] {
            assert_eq!(Topology::heavy_hex_nodes(d), n, "d={d}");
        }
        let eagle = Topology::heavy_hex(7);
        assert_eq!(eagle.n_nodes(), 127);
        assert_eq!(eagle.name(), "heavy-hex-127");
        let condor = Topology::heavy_hex(21);
        assert_eq!(condor.n_nodes(), 1121);
        // Every member: connected, degree within 1..=3.
        for d in [3usize, 7, 9, 21] {
            let h = Topology::heavy_hex(d);
            let dist = h.to_ugraph().bfs_distances(0);
            assert!(dist.iter().all(|&x| x != usize::MAX), "d={d} disconnected");
            for v in 0..h.n_nodes() {
                let deg = h.neighbors(v).len();
                assert!((1..=3).contains(&deg), "d={d} node {v} degree {deg}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "heavy-hex distance must be odd")]
    fn heavy_hex_rejects_even_distance() {
        Topology::heavy_hex(4);
    }

    #[test]
    #[should_panic(expected = "heavy-hex distance must be odd")]
    fn heavy_hex_rejects_distance_one() {
        Topology::heavy_hex(1);
    }

    #[test]
    fn line_endpoints_have_degree_one() {
        let l = Topology::line(5);
        assert_eq!(l.neighbors(0), vec![1]);
        assert_eq!(l.neighbors(4), vec![3]);
        assert_eq!(l.center(), 2);
    }

    #[test]
    fn from_edges_dedups() {
        let t = Topology::from_edges("t", 3, vec![(0, 1), (1, 0), (0, 1)]);
        assert_eq!(t.n_edges(), 1);
    }

    #[test]
    fn from_edges_keeps_first_occurrence_order() {
        let t = Topology::from_edges("t", 4, vec![(2, 3), (1, 0), (3, 2), (0, 2)]);
        assert_eq!(t.edges(), &[(2, 3), (0, 1), (0, 2)]);
    }

    #[test]
    fn dense_65_node_dedup_regression() {
        // Complete 65-node coupling fed in both orientations (4160 raw
        // edges): the hash-set dedup must collapse it to the 2080 unique
        // edges without the old quadratic `Vec::contains` scan.
        let n = 65;
        let mut raw = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    raw.push((a, b));
                }
            }
        }
        assert_eq!(raw.len(), n * (n - 1));
        let t = Topology::from_edges("dense-65", n, raw);
        assert_eq!(t.n_edges(), n * (n - 1) / 2);
        for v in 0..n {
            assert_eq!(t.neighbors(v).len(), n - 1);
        }
        // First-occurrence order: node 0's fan-out leads the list.
        assert_eq!(&t.edges()[..3], &[(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn from_edges_rejects_self_loop() {
        Topology::from_edges("bad", 2, vec![(1, 1)]);
    }

    #[test]
    fn display_mentions_name() {
        let t = Topology::ring(5);
        assert!(format!("{t}").contains("ring-5"));
    }

    #[test]
    fn has_edge_handles_out_of_range_nodes() {
        let t = Topology::line(3);
        assert!(!t.has_edge(0, 99));
        assert!(!t.has_edge(99, 0));
        assert!(!t.has_edge(99, 100));
    }

    #[test]
    fn equality_ignores_derived_adjacency() {
        // Same name/nodes/edges built through different input orders (after
        // normalization) must compare equal.
        let a = Topology::from_edges("t", 3, vec![(0, 1), (1, 2)]);
        let b = Topology::from_edges("t", 3, vec![(1, 0), (2, 1)]);
        assert_eq!(a, b);
        let c = Topology::from_edges("other", 3, vec![(0, 1), (1, 2)]);
        assert_ne!(a, c, "name participates in equality");
    }

    #[test]
    fn structural_fingerprint_ignores_name_only() {
        let a = Topology::from_edges("a", 4, vec![(0, 1), (2, 3)]);
        let b = Topology::from_edges("b", 4, vec![(0, 1), (2, 3)]);
        assert_eq!(a.structural_fingerprint(), b.structural_fingerprint());

        let extra_node = Topology::from_edges("a", 5, vec![(0, 1), (2, 3)]);
        assert_ne!(
            a.structural_fingerprint(),
            extra_node.structural_fingerprint()
        );
        let extra_edge = Topology::from_edges("a", 4, vec![(0, 1), (2, 3), (1, 2)]);
        assert_ne!(
            a.structural_fingerprint(),
            extra_edge.structural_fingerprint()
        );
    }

    #[test]
    fn structural_fingerprint_is_stable() {
        // Pinned value: the fingerprint is a documented content address and
        // must never drift across runs or refactors (cache keys depend on
        // it). line(3) = 3 nodes, edges [(0,1),(1,2)].
        let t = Topology::line(3);
        assert_eq!(t.structural_fingerprint(), t.structural_fingerprint());
        assert_eq!(
            t.structural_fingerprint(),
            Topology::line(3).structural_fingerprint()
        );
    }
}
