//! Property-based tests of the architecture layer: the expansion formulas
//! of §4.1 and structural invariants must hold for every topology.

use proptest::prelude::*;
use qompress_arch::{ExpandedGraph, Slot, Topology};

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (1usize..50).prop_map(Topology::grid),
        (3usize..50).prop_map(Topology::ring),
        (1usize..50).prop_map(Topology::line),
        Just(Topology::heavy_hex_65()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn expansion_counts_hold(topo in arb_topology()) {
        let v = topo.n_nodes();
        let e = topo.n_edges();
        let ex = ExpandedGraph::new(topo);
        prop_assert_eq!(ex.n_slots(), 2 * v);
        prop_assert_eq!(ex.n_edges(), 4 * e + v);
    }

    #[test]
    fn adjacency_is_symmetric(topo in arb_topology()) {
        for &(a, b) in topo.edges() {
            prop_assert!(topo.has_edge(a, b));
            prop_assert!(topo.has_edge(b, a));
            prop_assert!(topo.neighbors(a).contains(&b));
            prop_assert!(topo.neighbors(b).contains(&a));
        }
    }

    #[test]
    fn slot_adjacency_matches_unit_adjacency(topo in arb_topology()) {
        let ex = ExpandedGraph::new(topo.clone());
        for &(a, b) in topo.edges().iter().take(16) {
            prop_assert!(ex.slots_adjacent(Slot::zero(a), Slot::zero(b)));
            prop_assert!(ex.slots_adjacent(Slot::one(a), Slot::one(b)));
            prop_assert!(ex.slots_adjacent(Slot::zero(a), Slot::one(b)));
        }
        for u in 0..topo.n_nodes().min(16) {
            prop_assert!(ex.slots_adjacent(Slot::zero(u), Slot::one(u)));
        }
    }

    #[test]
    fn encoded_qubit_connectivity_formula(topo in arb_topology()) {
        // Paper §4.1: a ququart with n physical neighbors gives each
        // encoded qubit 2n + 1 connections.
        let ex = ExpandedGraph::new(topo.clone());
        for u in 0..topo.n_nodes().min(12) {
            let n = topo.neighbors(u).len();
            prop_assert_eq!(ex.neighbors(Slot::zero(u)).count(), 2 * n + 1);
            prop_assert_eq!(ex.neighbors(Slot::one(u)).count(), 2 * n + 1);
        }
    }

    #[test]
    fn center_is_reachable_from_everywhere(topo in arb_topology()) {
        let center = topo.center();
        let d = topo.to_ugraph().bfs_distances(center);
        // Grids/rings/lines/heavy-hex are all connected.
        prop_assert!(d.iter().all(|&x| x != usize::MAX));
    }

    #[test]
    fn grid_is_near_square(n in 1usize..60) {
        let g = Topology::grid(n);
        prop_assert!(g.n_nodes() >= n);
        let cols = (n as f64).sqrt().ceil() as usize;
        prop_assert!(g.n_nodes() < n + cols);
    }

    #[test]
    fn adjacency_sets_agree_with_edge_list(topo in arb_topology()) {
        // `has_edge` now answers from per-node adjacency sets; it must
        // agree with a literal scan of the normalized edge list for every
        // node pair (including non-edges and out-of-range probes).
        let n = topo.n_nodes();
        let edge_scan = |a: usize, b: usize| {
            topo.edges().contains(&(a.min(b), a.max(b)))
        };
        for a in 0..n.min(24) {
            for b in 0..n.min(24) {
                prop_assert_eq!(topo.has_edge(a, b), edge_scan(a, b), "pair ({}, {})", a, b);
            }
        }
        // Degree bookkeeping: neighbor lists sum to twice the edge count.
        let degree_sum: usize = (0..n).map(|v| topo.neighbors(v).len()).sum();
        prop_assert_eq!(degree_sum, 2 * topo.n_edges());
        // Out-of-range probes are never coupled.
        prop_assert!(!topo.has_edge(n, 0));
        prop_assert!(!topo.has_edge(0, n));
    }

    #[test]
    fn from_edges_is_idempotent_under_duplication(topo in arb_topology()) {
        // Feeding every edge again (in both orientations) must not change
        // the resulting topology.
        let mut doubled = topo.edges().to_vec();
        doubled.extend(topo.edges().iter().map(|&(a, b)| (b, a)));
        let rebuilt = Topology::from_edges(topo.name(), topo.n_nodes(), doubled);
        prop_assert_eq!(rebuilt.edges(), topo.edges());
        prop_assert_eq!(rebuilt.n_nodes(), topo.n_nodes());
    }
}
