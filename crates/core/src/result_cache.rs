//! Content-addressed memoization of compilation results.
//!
//! A [`ResultCache`] maps a [`CacheKey`] — the joint fingerprint of the
//! circuit content, the job kind (strategy or explicit mapping options),
//! the topology structure and the compiler configuration — to an
//! `Arc<CompilationResult>`. Compilation is deterministic in exactly those
//! four inputs, so a hit can be served without re-running the pipeline and
//! is guaranteed byte-identical to a fresh compile (pinned by the session
//! test-suite and the optional [`crate::CompilerBuilder::verify_hits`]
//! mode, up to 64-bit fingerprint collisions).
//!
//! Eviction is least-recently-used over a bounded capacity; [`CacheStats`]
//! counts hits, misses and evictions exactly.

use crate::breaker::BreakerState;
use crate::mapping::MappingOptions;
use crate::strategies::Strategy;
use qompress_arch::Fingerprinter;
use qompress_circuit::{
    Circuit, Gate, ParametricCircuit, ParametricGate, RotationAxis, SingleQubitKind,
};
use std::collections::HashMap;

/// Hit/miss/eviction counters of a session's result cache (see
/// [`crate::Compiler::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The stats as a JSON object string —
    /// `{"hits": …, "misses": …, "evictions": …, "hit_rate": …}` — the
    /// one snapshot shape shared by the examples' report files and the
    /// `qompress-service` stats response. Lives here so a new counter
    /// field is added to every emitter in one place.
    pub fn to_json(&self) -> String {
        // Exhaustive destructuring: a new field fails to compile here
        // until the JSON shape covers it.
        let CacheStats {
            hits,
            misses,
            evictions,
        } = *self;
        format!(
            "{{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": {evictions}, \
             \"hit_rate\": {:.6}}}",
            self.hit_rate()
        )
    }
}

impl std::fmt::Display for CacheStats {
    /// Renders the counters plus the derived hit rate, e.g.
    /// `3 hits / 1 misses / 0 evictions (75.0% hit rate)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses / {} evictions ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.evictions,
            self.hit_rate() * 100.0
        )
    }
}

/// Per-tier cache counters of a session with a persistent tier attached
/// (see [`crate::Compiler::tiered_cache_stats`]).
///
/// Relation to the legacy flat [`CacheStats`]: `memory_hits` and
/// `memory_evictions` mirror the in-memory tier's counters; `disk_hits`
/// count lookups the memory tier missed but the on-disk store served;
/// `misses` are true compiles (both tiers missed). Without a persistent
/// tier, `misses` equals the memory tier's misses and every disk counter
/// is zero — the flat and tiered views then tell the same story.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TieredCacheStats {
    /// Lookups answered by the in-memory LRU (tier 1).
    pub memory_hits: u64,
    /// Lookups answered by the on-disk store (tier 2).
    pub disk_hits: u64,
    /// Lookups that missed every tier and compiled.
    pub misses: u64,
    /// In-memory entries dropped to respect the capacity bound.
    pub memory_evictions: u64,
    /// Artifacts written back to the on-disk store.
    pub disk_writes: u64,
    /// On-disk entries rejected by validation (corrupt, truncated, or a
    /// different format version) — each also counted under `misses`' tier
    /// walk, and the bad entry is removed best-effort.
    pub disk_rejects: u64,
    /// Write-backs that failed with an I/O error (the result is still
    /// served; it is just not persisted).
    pub disk_write_errors: u64,
    /// Disk reads that failed with a real I/O error (not a miss, not a
    /// validation reject) — each also counted under `misses` and
    /// reported to the tier's circuit breaker.
    pub disk_read_errors: u64,
    /// Disk operations skipped because the breaker was open — the
    /// session served memory + compile as if no tier were configured.
    pub disk_skipped: u64,
    /// Times the breaker tripped open (N consecutive disk errors).
    pub breaker_trips: u64,
    /// Half-open probes admitted after a cooldown.
    pub breaker_probes: u64,
    /// Current breaker state ([`BreakerState::Closed`] when no
    /// persistent tier is configured).
    pub breaker_state: BreakerState,
}

impl TieredCacheStats {
    /// Hit fraction over all lookups, counting both tiers as hits
    /// (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.memory_hits + self.disk_hits;
        let total = hits + self.misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// The stats as a JSON object string, the shape shared by the
    /// examples' report files and the `qompress-service` stats response.
    pub fn to_json(&self) -> String {
        // Exhaustive destructuring: a new field fails to compile here
        // until the JSON shape covers it.
        let TieredCacheStats {
            memory_hits,
            disk_hits,
            misses,
            memory_evictions,
            disk_writes,
            disk_rejects,
            disk_write_errors,
            disk_read_errors,
            disk_skipped,
            breaker_trips,
            breaker_probes,
            breaker_state,
        } = *self;
        format!(
            "{{\"memory_hits\": {memory_hits}, \"disk_hits\": {disk_hits}, \
             \"misses\": {misses}, \"memory_evictions\": {memory_evictions}, \
             \"disk_writes\": {disk_writes}, \"disk_rejects\": {disk_rejects}, \
             \"disk_write_errors\": {disk_write_errors}, \
             \"disk_read_errors\": {disk_read_errors}, \
             \"disk_skipped\": {disk_skipped}, \
             \"breaker_trips\": {breaker_trips}, \
             \"breaker_probes\": {breaker_probes}, \
             \"breaker_state\": \"{}\", \"hit_rate\": {:.6}}}",
            breaker_state.name(),
            self.hit_rate()
        )
    }
}

impl std::fmt::Display for TieredCacheStats {
    /// Renders the per-tier counters plus the derived hit rate, e.g.
    /// `2 memory hits / 1 disk hits / 1 misses (75.0% hit rate)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} memory hits / {} disk hits / {} misses ({:.1}% hit rate)",
            self.memory_hits,
            self.disk_hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

/// The content address of one compilation job.
///
/// Each component is a stable 64-bit fingerprint (see
/// [`qompress_arch::Fingerprinter`]): the circuit's gate stream, the job
/// kind (strategy name, or the explicit mapping options of the
/// options-level entry point), [`qompress_arch::Topology::structural_fingerprint`],
/// and [`crate::CompilerConfig::fingerprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    circuit: u64,
    job: u64,
    topology: u64,
    config: u64,
}

impl CacheKey {
    /// Key for a strategy-level compile.
    pub(crate) fn for_strategy(
        circuit: &Circuit,
        strategy: Strategy,
        topology_fp: u64,
        config_fp: u64,
    ) -> Self {
        let mut h = Fingerprinter::new();
        h.write_str("strategy").write_str(strategy.name());
        CacheKey {
            circuit: circuit_fingerprint(circuit),
            job: h.finish(),
            topology: topology_fp,
            config: config_fp,
        }
    }

    /// Key for an options-level compile (explicit [`MappingOptions`]).
    pub(crate) fn for_options(
        circuit: &Circuit,
        options: &MappingOptions,
        topology_fp: u64,
        config_fp: u64,
    ) -> Self {
        // Exhaustive destructuring (no `..`): a new `MappingOptions` field
        // fails to compile here until the key covers it.
        let MappingOptions { pairs, allow_slot1 } = options;
        let mut h = Fingerprinter::new();
        h.write_str("options")
            .write_bool(*allow_slot1)
            .write_usize(pairs.len());
        for &(a, b) in pairs {
            h.write_usize(a).write_usize(b);
        }
        CacheKey {
            circuit: circuit_fingerprint(circuit),
            job: h.finish(),
            topology: topology_fp,
            config: config_fp,
        }
    }

    /// The key's hex rendering — 64 lowercase hex chars (four fixed-width
    /// 16-char fingerprints, circuit/job/topology/config) — used as the
    /// content address in the on-disk store. Injective over keys, stable
    /// across processes, and path-safe.
    pub(crate) fn hex(&self) -> String {
        let CacheKey {
            circuit,
            job,
            topology,
            config,
        } = *self;
        format!("{circuit:016x}{job:016x}{topology:016x}{config:016x}")
    }

    /// Key for a skeleton-level (structural) compile: the circuit
    /// component is the *structural* fingerprint, which ignores angle
    /// values at parametric sites while still distinguishing parameter
    /// wiring, so every binding of one skeleton shares this key.
    pub(crate) fn for_skeleton(
        skeleton: &ParametricCircuit,
        strategy: Strategy,
        topology_fp: u64,
        config_fp: u64,
    ) -> Self {
        let mut h = Fingerprinter::new();
        h.write_str("skeleton-strategy").write_str(strategy.name());
        CacheKey {
            circuit: skeleton_fingerprint(skeleton),
            job: h.finish(),
            topology: topology_fp,
            config: config_fp,
        }
    }
}

/// Stable content fingerprint of a circuit: qubit count plus the exact
/// gate stream (discriminants, operands, rotation angles by bit pattern).
pub(crate) fn circuit_fingerprint(circuit: &Circuit) -> u64 {
    let mut h = Fingerprinter::new();
    h.write_usize(circuit.n_qubits()).write_usize(circuit.len());
    for gate in circuit.iter() {
        hash_gate(&mut h, gate);
    }
    h.finish()
}

/// Hashes one concrete gate into `h` (shared by the circuit and skeleton
/// fingerprints so a zero-parameter skeleton's gate stream hashes like the
/// circuit it wraps — the domains still differ by the leading tag below).
fn hash_gate(h: &mut Fingerprinter, gate: &Gate) {
    match *gate {
        Gate::Single { kind, qubit } => {
            h.write_u64(1).write_usize(qubit);
            let (tag, angle) = match kind {
                SingleQubitKind::X => (0u64, None),
                SingleQubitKind::Y => (1, None),
                SingleQubitKind::Z => (2, None),
                SingleQubitKind::H => (3, None),
                SingleQubitKind::T => (4, None),
                SingleQubitKind::Tdg => (5, None),
                SingleQubitKind::S => (6, None),
                SingleQubitKind::Sdg => (7, None),
                SingleQubitKind::Rz(a) => (8, Some(a)),
                SingleQubitKind::Rx(a) => (9, Some(a)),
                SingleQubitKind::Ry(a) => (10, Some(a)),
            };
            h.write_u64(tag);
            if let Some(a) = angle {
                h.write_f64(a);
            }
        }
        Gate::Cx { control, target } => {
            h.write_u64(2).write_usize(control).write_usize(target);
        }
        Gate::Swap { a, b } => {
            h.write_u64(3).write_usize(a).write_usize(b);
        }
    }
}

/// Stable *structural* fingerprint of a parametric skeleton: qubit count,
/// the exact gate stream, and at each parametric site the rotation axis,
/// target qubit and **parameter id** — never an angle value. Two bindings
/// of one skeleton therefore share a fingerprint, while skeletons that
/// wire parameters differently (`rz(theta0); rz(theta1)` vs
/// `rz(theta0); rz(theta0)`) do not.
pub(crate) fn skeleton_fingerprint(skeleton: &ParametricCircuit) -> u64 {
    let mut h = Fingerprinter::new();
    h.write_str("parametric")
        .write_usize(skeleton.n_qubits())
        .write_usize(skeleton.len());
    for gate in skeleton.gates() {
        match *gate {
            ParametricGate::Fixed(ref g) => hash_gate(&mut h, g),
            ParametricGate::Rotation { axis, param, qubit } => {
                let axis_tag = match axis {
                    RotationAxis::Rx => 0u64,
                    RotationAxis::Ry => 1,
                    RotationAxis::Rz => 2,
                };
                h.write_u64(4)
                    .write_u64(axis_tag)
                    .write_u64(param as u64)
                    .write_usize(qubit);
            }
        }
    }
    h.finish()
}

/// A bounded LRU cache of compilation artifacts, content-addressed by
/// [`CacheKey`].
///
/// Generic over the cached value `T` (cloned out on hits — in practice an
/// `Arc`, so a hit is a reference-count bump): the session keeps one cache
/// of concrete `CompilationResult`s and one of skeleton-level
/// `SkeletonArtifact`s, with identical accounting.
///
/// Recency is a monotonic access counter; eviction removes the entry with
/// the smallest counter via an `O(len)` scan — negligible next to the cost
/// of even one compilation, and free of unsafe linked-list bookkeeping.
#[derive(Debug)]
pub(crate) struct ResultCache<T> {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry<T>>,
    stats: CacheStats,
}

#[derive(Debug)]
struct Entry<T> {
    result: T,
    last_used: u64,
}

impl<T: Clone> ResultCache<T> {
    /// An empty cache holding at most `capacity` results (`0` stores
    /// nothing and every lookup misses).
    pub(crate) fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up `key`, counting a hit or a miss.
    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<T> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(entry.result.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a freshly compiled result, evicting the least-recently-used
    /// entry if the cache is full. Overwriting an existing key (two racing
    /// workers compiling the same job) is not an eviction.
    pub(crate) fn insert(&mut self, key: CacheKey, result: T) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(&lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&lru);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                result,
                last_used: self.tick,
            },
        );
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached results.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Drops every entry and resets the counters.
    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.stats = CacheStats::default();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompilerConfig;
    use crate::pipeline::{compile_with_options, CompilationResult};
    use qompress_arch::Topology;
    use std::sync::Arc;

    fn key(tag: u64) -> CacheKey {
        CacheKey {
            circuit: tag,
            job: 0,
            topology: 0,
            config: 0,
        }
    }

    fn dummy_result() -> Arc<CompilationResult> {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        Arc::new(compile_with_options(
            &c,
            &Topology::line(2),
            &CompilerConfig::paper(),
            &MappingOptions::qubit_only(),
        ))
    }

    #[test]
    fn hit_miss_and_eviction_counting() {
        let mut cache = ResultCache::new(2);
        let r = dummy_result();
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Arc::clone(&r));
        cache.insert(key(2), Arc::clone(&r));
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), Arc::clone(&r)); // evicts key(2): key(1) was touched later
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert!((stats.hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(
            format!("{stats}"),
            "3 hits / 2 misses / 1 evictions (60.0% hit rate)"
        );
        assert_eq!(
            format!("{}", CacheStats::default()),
            "0 hits / 0 misses / 0 evictions (0.0% hit rate)"
        );
        assert_eq!(
            stats.to_json(),
            "{\"hits\": 3, \"misses\": 2, \"evictions\": 1, \"hit_rate\": 0.600000}"
        );
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let mut cache = ResultCache::new(2);
        let r = dummy_result();
        cache.insert(key(1), Arc::clone(&r));
        cache.insert(key(2), Arc::clone(&r));
        // Touch key(1) so key(2) is the LRU.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), Arc::clone(&r));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&key(1)).is_some());
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut cache = ResultCache::new(0);
        cache.insert(key(1), dummy_result());
        assert_eq!(cache.len(), 0);
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn overwrite_is_not_an_eviction() {
        let mut cache = ResultCache::new(1);
        let r = dummy_result();
        cache.insert(key(1), Arc::clone(&r));
        cache.insert(key(1), Arc::clone(&r));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut cache = ResultCache::new(4);
        cache.insert(key(1), dummy_result());
        let _ = cache.get(&key(1));
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn circuit_fingerprint_is_content_addressed() {
        let mut a = Circuit::new(3);
        a.push(Gate::h(0));
        a.push(Gate::cx(0, 1));
        let mut b = Circuit::new(3);
        b.push(Gate::h(0));
        b.push(Gate::cx(0, 1));
        assert_eq!(circuit_fingerprint(&a), circuit_fingerprint(&b));

        b.push(Gate::cx(1, 2));
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&b));

        // Operand order, gate kind, qubit count and angles all matter.
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::cx(1, 0));
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&c));
        assert_ne!(
            circuit_fingerprint(&Circuit::new(2)),
            circuit_fingerprint(&Circuit::new(3))
        );
        let mut rz1 = Circuit::new(1);
        rz1.push(Gate::rz(0.5, 0));
        let mut rz2 = Circuit::new(1);
        rz2.push(Gate::rz(0.25, 0));
        assert_ne!(circuit_fingerprint(&rz1), circuit_fingerprint(&rz2));
    }

    #[test]
    fn skeleton_fingerprint_ignores_values_but_not_wiring() {
        use qompress_circuit::RotationAxis;
        let mut shared = ParametricCircuit::new(2);
        shared.push(Gate::h(0));
        shared.push_param(RotationAxis::Rz, 0, 0);
        shared.push_param(RotationAxis::Rz, 0, 1);

        let mut distinct = ParametricCircuit::new(2);
        distinct.push(Gate::h(0));
        distinct.push_param(RotationAxis::Rz, 0, 0);
        distinct.push_param(RotationAxis::Rz, 1, 1);

        // Same wiring → same fingerprint (trivially: it never sees angles).
        assert_eq!(
            skeleton_fingerprint(&shared),
            skeleton_fingerprint(&shared.clone())
        );
        // Different parameter wiring over an identical gate shape differs.
        assert_ne!(
            skeleton_fingerprint(&shared),
            skeleton_fingerprint(&distinct)
        );

        // Axis and qubit matter too.
        let mut other_axis = ParametricCircuit::new(2);
        other_axis.push(Gate::h(0));
        other_axis.push_param(RotationAxis::Rx, 0, 0);
        other_axis.push_param(RotationAxis::Rz, 0, 1);
        assert_ne!(
            skeleton_fingerprint(&shared),
            skeleton_fingerprint(&other_axis)
        );

        // A concrete rotation is not a parametric site, even at the same
        // position.
        let mut concrete = ParametricCircuit::new(2);
        concrete.push(Gate::h(0));
        concrete.push(Gate::rz(0.5, 0));
        concrete.push_param(RotationAxis::Rz, 0, 1);
        assert_ne!(
            skeleton_fingerprint(&shared),
            skeleton_fingerprint(&concrete)
        );

        // A zero-parameter skeleton does not collide with the concrete
        // circuit fingerprint domain.
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::rz(0.5, 0));
        assert_ne!(
            skeleton_fingerprint(&ParametricCircuit::from(&c)),
            circuit_fingerprint(&c)
        );
    }

    #[test]
    fn skeleton_keys_separate_strategy_topology_config() {
        use qompress_circuit::RotationAxis;
        let mut s = ParametricCircuit::new(2);
        s.push_param(RotationAxis::Rz, 0, 0);
        let a = CacheKey::for_skeleton(&s, Strategy::QubitOnly, 7, 9);
        assert_eq!(a, CacheKey::for_skeleton(&s, Strategy::QubitOnly, 7, 9));
        assert_ne!(a, CacheKey::for_skeleton(&s, Strategy::Eqm, 7, 9));
        assert_ne!(a, CacheKey::for_skeleton(&s, Strategy::QubitOnly, 8, 9));
        assert_ne!(a, CacheKey::for_skeleton(&s, Strategy::QubitOnly, 7, 10));
        // Skeleton keys live in a different job domain than strategy keys
        // over the bound circuit.
        assert_ne!(
            a,
            CacheKey::for_strategy(&s.bind(&[0.5]), Strategy::QubitOnly, 7, 9)
        );
    }

    #[test]
    fn keys_separate_strategy_options_topology_and_config() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        let a = CacheKey::for_strategy(&c, Strategy::QubitOnly, 7, 9);
        assert_eq!(a, CacheKey::for_strategy(&c, Strategy::QubitOnly, 7, 9));
        assert_ne!(a, CacheKey::for_strategy(&c, Strategy::Eqm, 7, 9));
        assert_ne!(a, CacheKey::for_strategy(&c, Strategy::QubitOnly, 8, 9));
        assert_ne!(a, CacheKey::for_strategy(&c, Strategy::QubitOnly, 7, 10));
        // A qubit-only *strategy* compile labels the result differently from
        // an options-level compile, so the keys must differ too.
        assert_ne!(
            a,
            CacheKey::for_options(&c, &MappingOptions::qubit_only(), 7, 9)
        );
        assert_ne!(
            CacheKey::for_options(&c, &MappingOptions::qubit_only(), 7, 9),
            CacheKey::for_options(&c, &MappingOptions::eqm(), 7, 9)
        );
        assert_ne!(
            CacheKey::for_options(&c, &MappingOptions::with_pairs(vec![(0, 1)]), 7, 9),
            CacheKey::for_options(&c, &MappingOptions::with_pairs(vec![(1, 0)]), 7, 9)
        );
    }
}
