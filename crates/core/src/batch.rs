//! Parallel batch compilation.
//!
//! A [`BatchRequest`] carries a list of independent jobs — each a
//! `(circuit, strategy, topology)` triple — and [`run_batch`] submits them
//! to the persistent worker pool of a one-shot [`crate::Compiler`]
//! session's job service, then waits for every result. Distinct
//! topologies are deduplicated into shared [`crate::TopologyCache`]s by
//! structural fingerprint, so the expanded slot graph and the distance
//! oracles are built once per topology instead of once per job, and
//! repeated jobs are served out of the session's content-addressed result
//! cache.
//!
//! Every individual compilation is deterministic, jobs never communicate,
//! and results are stored at their input index — so the output is
//! **identical for any worker count**, including the serial `workers = 1`
//! run (pinned by `tests/batch_parallel.rs`). Long-running services that
//! submit many batches should hold one [`crate::Compiler`] and call
//! [`crate::Compiler::compile_batch`] directly, so caches persist across
//! requests; `run_batch` exists as the stateless convenience wrapper.

use crate::config::CompilerConfig;
use crate::pipeline::CompilationResult;
use crate::result_cache::CacheStats;
use crate::session::Compiler;
use crate::strategies::Strategy;
use qompress_arch::Topology;
use qompress_circuit::Circuit;
use std::sync::Arc;
use std::time::Duration;

/// One independent compilation job.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Free-form identifier echoed into the result (benchmark name, file
    /// stem, sweep coordinates, …).
    pub label: String,
    /// When the job was minted by [`crate::ParamSweep::job`], the sweep
    /// binding that routes it through the skeleton-stamp path instead of a
    /// full pipeline run. `None` for ordinary jobs.
    pub(crate) binding: Option<crate::parametric::SweepBinding>,
    /// The logical circuit to compile.
    pub circuit: Circuit,
    /// The compression strategy to apply.
    pub strategy: Strategy,
    /// The physical topology to compile onto.
    pub topology: Topology,
}

impl BatchJob {
    /// Convenience constructor.
    pub fn new(
        label: impl Into<String>,
        circuit: Circuit,
        strategy: Strategy,
        topology: Topology,
    ) -> Self {
        BatchJob {
            label: label.into(),
            binding: None,
            circuit,
            strategy,
            topology,
        }
    }
}

/// A batch of compilation jobs plus execution settings.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The jobs, in the order results are returned.
    pub jobs: Vec<BatchJob>,
    /// Worker thread count; `0` and `1` both mean serial execution.
    pub workers: usize,
    /// Compiler configuration shared by every job.
    pub config: CompilerConfig,
}

impl BatchRequest {
    /// A request running `jobs` with the paper configuration.
    pub fn new(jobs: Vec<BatchJob>, workers: usize) -> Self {
        BatchRequest {
            jobs,
            workers,
            config: CompilerConfig::paper(),
        }
    }
}

/// The outcome of one job: its input label plus the compilation.
///
/// The result is behind an [`Arc`] because a session may serve the same
/// compilation to several duplicate jobs from its result cache; field
/// access works unchanged through deref.
#[derive(Debug, Clone)]
pub struct BatchJobResult {
    /// Label copied from the input job.
    pub label: String,
    /// Position of the job in [`BatchRequest::jobs`].
    pub job_index: usize,
    /// The compiled circuit and its metrics.
    pub result: Arc<CompilationResult>,
}

/// All results of a batch, in input order.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-job outcomes, `results[i]` belonging to `jobs[i]`.
    pub results: Vec<BatchJobResult>,
    /// Number of distinct topology structures (= shared caches used).
    pub distinct_topologies: usize,
    /// Wall-clock time of the compilation phase.
    pub elapsed: Duration,
    /// Result-cache activity attributable to this batch (all zeros when
    /// the executing session has caching disabled).
    pub cache: CacheStats,
}

/// Why one job of a [`crate::Compiler::try_compile_batch`] call did not
/// produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchJobError {
    /// The job's compilation panicked; the payload is the panic message
    /// (e.g. a circuit too large for its topology).
    Panicked(String),
    /// The job was cancelled before a worker finished it.
    Cancelled,
}

impl std::fmt::Display for BatchJobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchJobError::Panicked(message) => write!(f, "panicked: {message}"),
            BatchJobError::Cancelled => f.write_str("cancelled"),
        }
    }
}

/// One failed job of a [`crate::Compiler::try_compile_batch`] call: the
/// job's identity plus what went wrong. Failures are isolated — the
/// other jobs of the batch still complete and return results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchJobFailure {
    /// Label copied from the input job.
    pub label: String,
    /// Position of the job in the submitted slice.
    pub job_index: usize,
    /// What went wrong.
    pub error: BatchJobError,
}

impl std::fmt::Display for BatchJobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch job `{}` {}", self.label, self.error)
    }
}

impl std::error::Error for BatchJobFailure {}

/// All per-job outcomes of a [`crate::Compiler::try_compile_batch`]
/// call, in input order — the non-panicking sibling of [`BatchResult`].
#[derive(Debug)]
pub struct TryBatchResult {
    /// Per-job outcomes, `results[i]` belonging to `jobs[i]`.
    pub results: Vec<Result<BatchJobResult, BatchJobFailure>>,
    /// Number of distinct topology structures (= shared caches used).
    pub distinct_topologies: usize,
    /// Wall-clock time of the compilation phase.
    pub elapsed: Duration,
    /// Result-cache activity attributable to this batch (all zeros when
    /// the executing session has caching disabled).
    pub cache: CacheStats,
}

impl TryBatchResult {
    /// Number of jobs that produced a result.
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of jobs that failed (panicked or cancelled).
    pub fn failed(&self) -> usize {
        self.results.len() - self.succeeded()
    }
}

impl BatchResult {
    /// Total logical gates compiled across the batch.
    pub fn total_logical_gates(&self) -> usize {
        self.results.iter().map(|r| r.result.logical_gates).sum()
    }

    /// Jobs per second over the compilation phase.
    ///
    /// Returns `0.0` for an empty batch or a sub-tick (zero-duration)
    /// compilation phase — explicitly guarded so callers never see the
    /// `inf`/`NaN` artifacts of float division.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if self.results.is_empty() || secs <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / secs
        }
    }
}

/// Compiles every job of `request` over a worker pool.
///
/// Stateless convenience wrapper: builds a one-shot [`Compiler`] session
/// for `request.config` (with `0` workers meaning serial, matching the
/// historical contract) and delegates to [`Compiler::compile_batch`],
/// which submits every job to the session's job service and waits.
/// Workers pull jobs from the shared FIFO queue, compile against the
/// deduplicated per-topology caches, and results are collected back in
/// input order — so the returned order (and content) is independent of
/// scheduling.
///
/// # Panics
///
/// Panics if any job's compilation panics (e.g. a circuit too large for
/// its topology); the panic propagates out of the thread scope.
pub fn run_batch(request: &BatchRequest) -> BatchResult {
    Compiler::builder()
        .config(request.config.clone())
        .workers(request.workers.max(1))
        .build()
        .compile_batch(&request.jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::Gate;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::h(0));
        for i in 0..n - 1 {
            c.push(Gate::cx(i, i + 1));
        }
        c
    }

    fn small_request(workers: usize) -> BatchRequest {
        let mut jobs = Vec::new();
        for (i, strategy) in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased]
            .into_iter()
            .enumerate()
        {
            jobs.push(BatchJob::new(
                format!("ghz5-grid-{}", strategy.name()),
                ghz(5),
                strategy,
                Topology::grid(5),
            ));
            jobs.push(BatchJob::new(
                format!("ghz4-line-{i}"),
                ghz(4),
                strategy,
                Topology::line(4),
            ));
        }
        BatchRequest::new(jobs, workers)
    }

    #[test]
    fn batch_results_are_input_ordered() {
        let req = small_request(3);
        let out = run_batch(&req);
        assert_eq!(out.results.len(), req.jobs.len());
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r.job_index, i);
            assert_eq!(r.label, req.jobs[i].label);
            assert_eq!(r.result.strategy, req.jobs[i].strategy.name());
        }
    }

    #[test]
    fn topologies_are_deduplicated() {
        let req = small_request(2);
        assert_eq!(
            run_batch(&req).distinct_topologies,
            2,
            "grid-5 and line-4 caches only"
        );
    }

    #[test]
    fn batch_matches_direct_compilation() {
        let req = small_request(4);
        let out = run_batch(&req);
        for (job, got) in req.jobs.iter().zip(&out.results) {
            let want =
                crate::strategies::compile(&job.circuit, &job.topology, job.strategy, &req.config);
            assert_eq!(got.result.metrics, want.metrics, "{}", job.label);
            assert_eq!(got.result.schedule, want.schedule, "{}", job.label);
        }
    }

    #[test]
    fn zero_workers_is_serial() {
        let req = small_request(0);
        let out = run_batch(&req);
        assert_eq!(out.results.len(), req.jobs.len());
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = run_batch(&BatchRequest::new(Vec::new(), 4));
        assert!(out.results.is_empty());
        assert_eq!(out.distinct_topologies, 0);
        assert_eq!(out.total_logical_gates(), 0);
        assert_eq!(out.cache, CacheStats::default());
    }

    #[test]
    fn throughput_guards_degenerate_batches() {
        // Empty batch: no jobs, elapsed effectively zero.
        let empty = run_batch(&BatchRequest::new(Vec::new(), 1));
        assert_eq!(empty.throughput(), 0.0);

        // Zero-duration phase with results present (constructed directly:
        // a coarse clock can legitimately report 0 ns for a tiny batch).
        let mut out = run_batch(&small_request(1));
        out.elapsed = Duration::ZERO;
        assert_eq!(out.throughput(), 0.0);

        // Sanity: a real duration yields a finite positive rate.
        out.elapsed = Duration::from_millis(500);
        let rate = out.throughput();
        assert!(rate.is_finite() && rate > 0.0);
        assert!((rate - out.results.len() as f64 / 0.5).abs() < 1e-9);
    }

    #[test]
    fn duplicate_jobs_hit_the_cache() {
        let mut jobs = small_request(1).jobs;
        let dupes = jobs.clone();
        jobs.extend(dupes);
        let out = run_batch(&BatchRequest::new(jobs, 1));
        assert_eq!(out.cache.misses, 6, "six distinct jobs");
        assert_eq!(out.cache.hits, 6, "six exact repeats");
    }
}
