//! Parallel batch compilation.
//!
//! A [`BatchRequest`] carries a list of independent jobs — each a
//! `(circuit, strategy, topology)` triple — and [`run_batch`] fans them
//! over `std::thread::scope` workers. Distinct topologies are deduplicated
//! into shared [`TopologyCache`]s behind `Arc`, so the expanded slot graph
//! and the bare-encoding distance oracle are built once per topology
//! instead of once per job, and Dijkstra rows computed by one worker serve
//! every later job on the same device.
//!
//! Every individual compilation is deterministic, jobs never communicate,
//! and results are stored at their input index — so the output is
//! **identical for any worker count**, including the serial `workers = 1`
//! run (pinned by `tests/batch_parallel.rs`).

use crate::config::CompilerConfig;
use crate::pipeline::{CompilationResult, TopologyCache};
use crate::strategies::{compile_cached, Strategy};
use qompress_arch::Topology;
use qompress_circuit::Circuit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One independent compilation job.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Free-form identifier echoed into the result (benchmark name, file
    /// stem, sweep coordinates, …).
    pub label: String,
    /// The logical circuit to compile.
    pub circuit: Circuit,
    /// The compression strategy to apply.
    pub strategy: Strategy,
    /// The physical topology to compile onto.
    pub topology: Topology,
}

impl BatchJob {
    /// Convenience constructor.
    pub fn new(
        label: impl Into<String>,
        circuit: Circuit,
        strategy: Strategy,
        topology: Topology,
    ) -> Self {
        BatchJob {
            label: label.into(),
            circuit,
            strategy,
            topology,
        }
    }
}

/// A batch of compilation jobs plus execution settings.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The jobs, in the order results are returned.
    pub jobs: Vec<BatchJob>,
    /// Worker thread count; `0` and `1` both mean serial execution.
    pub workers: usize,
    /// Compiler configuration shared by every job.
    pub config: CompilerConfig,
}

impl BatchRequest {
    /// A request running `jobs` with the paper configuration.
    pub fn new(jobs: Vec<BatchJob>, workers: usize) -> Self {
        BatchRequest {
            jobs,
            workers,
            config: CompilerConfig::paper(),
        }
    }
}

/// The outcome of one job: its input label plus the compilation.
#[derive(Debug, Clone)]
pub struct BatchJobResult {
    /// Label copied from the input job.
    pub label: String,
    /// Position of the job in [`BatchRequest::jobs`].
    pub job_index: usize,
    /// The compiled circuit and its metrics.
    pub result: CompilationResult,
}

/// All results of a batch, in input order.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-job outcomes, `results[i]` belonging to `jobs[i]`.
    pub results: Vec<BatchJobResult>,
    /// Number of distinct topologies (= shared caches built).
    pub distinct_topologies: usize,
    /// Wall-clock time of the compilation phase.
    pub elapsed: Duration,
}

impl BatchResult {
    /// Total logical gates compiled across the batch.
    pub fn total_logical_gates(&self) -> usize {
        self.results.iter().map(|r| r.result.logical_gates).sum()
    }

    /// Jobs per second over the compilation phase.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.results.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// Compiles every job of `request`, fanning over scoped worker threads.
///
/// Workers pull job indices from a shared atomic counter, compile against
/// the deduplicated per-topology caches, and write each result into its
/// input slot — so the returned order (and content) is independent of
/// scheduling.
///
/// # Panics
///
/// Panics if any job's compilation panics (e.g. a circuit too large for
/// its topology); the panic propagates out of the thread scope.
pub fn run_batch(request: &BatchRequest) -> BatchResult {
    let caches = build_topology_caches(request);
    let distinct_topologies = {
        let mut seen: Vec<usize> = caches.iter().map(|c| Arc::as_ptr(c) as usize).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    };

    let n_jobs = request.jobs.len();
    let workers = request.workers.max(1).min(n_jobs.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<BatchJobResult>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n_jobs {
                    break;
                }
                let job = &request.jobs[idx];
                let result =
                    compile_cached(&job.circuit, &caches[idx], job.strategy, &request.config);
                *slots[idx].lock().expect("result slot poisoned") = Some(BatchJobResult {
                    label: job.label.clone(),
                    job_index: idx,
                    result,
                });
            });
        }
    });
    let elapsed = started.elapsed();

    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index was claimed by a worker")
        })
        .collect();

    BatchResult {
        results,
        distinct_topologies,
        elapsed,
    }
}

/// One shared cache per job, deduplicated across equal topologies.
///
/// Deduplication is by structural [`Topology`] equality; with `J` jobs and
/// `T` distinct topologies this is an `O(J·T)` scan, which is negligible
/// next to compilation.
fn build_topology_caches(request: &BatchRequest) -> Vec<Arc<TopologyCache>> {
    let mut distinct: Vec<(usize, Arc<TopologyCache>)> = Vec::new();
    let mut per_job = Vec::with_capacity(request.jobs.len());
    for (idx, job) in request.jobs.iter().enumerate() {
        let found = distinct
            .iter()
            .find(|(first, _)| request.jobs[*first].topology == job.topology)
            .map(|(_, cache)| Arc::clone(cache));
        let cache = match found {
            Some(cache) => cache,
            None => {
                let cache = Arc::new(TopologyCache::new(job.topology.clone(), &request.config));
                distinct.push((idx, Arc::clone(&cache)));
                cache
            }
        };
        per_job.push(cache);
    }
    per_job
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::Gate;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::h(0));
        for i in 0..n - 1 {
            c.push(Gate::cx(i, i + 1));
        }
        c
    }

    fn small_request(workers: usize) -> BatchRequest {
        let mut jobs = Vec::new();
        for (i, strategy) in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased]
            .into_iter()
            .enumerate()
        {
            jobs.push(BatchJob::new(
                format!("ghz5-grid-{}", strategy.name()),
                ghz(5),
                strategy,
                Topology::grid(5),
            ));
            jobs.push(BatchJob::new(
                format!("ghz4-line-{i}"),
                ghz(4),
                strategy,
                Topology::line(4),
            ));
        }
        BatchRequest::new(jobs, workers)
    }

    #[test]
    fn batch_results_are_input_ordered() {
        let req = small_request(3);
        let out = run_batch(&req);
        assert_eq!(out.results.len(), req.jobs.len());
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r.job_index, i);
            assert_eq!(r.label, req.jobs[i].label);
            assert_eq!(r.result.strategy, req.jobs[i].strategy.name());
        }
    }

    #[test]
    fn topologies_are_deduplicated() {
        let req = small_request(2);
        let caches = build_topology_caches(&req);
        let mut ptrs: Vec<usize> = caches.iter().map(|c| Arc::as_ptr(c) as usize).collect();
        ptrs.sort_unstable();
        ptrs.dedup();
        assert_eq!(ptrs.len(), 2, "grid-5 and line-4 caches only");
        assert_eq!(run_batch(&req).distinct_topologies, 2);
    }

    #[test]
    fn batch_matches_direct_compilation() {
        let req = small_request(4);
        let out = run_batch(&req);
        for (job, got) in req.jobs.iter().zip(&out.results) {
            let want =
                crate::strategies::compile(&job.circuit, &job.topology, job.strategy, &req.config);
            assert_eq!(got.result.metrics, want.metrics, "{}", job.label);
            assert_eq!(got.result.schedule, want.schedule, "{}", job.label);
        }
    }

    #[test]
    fn zero_workers_is_serial() {
        let req = small_request(0);
        let out = run_batch(&req);
        assert_eq!(out.results.len(), req.jobs.len());
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = run_batch(&BatchRequest::new(Vec::new(), 4));
        assert!(out.results.is_empty());
        assert_eq!(out.distinct_topologies, 0);
        assert_eq!(out.total_logical_gates(), 0);
    }
}
