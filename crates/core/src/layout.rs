//! Logical-qubit-to-slot layout tracking.

use crate::physical::{swap4_moves, PhysicalOp};
use qompress_arch::{Slot, SlotIndex};
use qompress_pulse::GateClass;

/// Bidirectional mapping between logical qubits and physical slots, plus
/// the per-unit encoding flags.
///
/// Invariants: a qubit at slot 1 implies the unit is encoded; a bare unit
/// hosts at most the slot-0 qubit; flags never change after mapping (the
/// router neither creates nor destroys encodings, §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    qubit_to_slot: Vec<Option<Slot>>,
    slot_to_qubit: Vec<Option<usize>>,
    encoded: Vec<bool>,
}

impl Layout {
    /// An empty layout for `n_qubits` logical qubits on `n_units` units.
    pub fn new(n_qubits: usize, n_units: usize) -> Self {
        Layout {
            qubit_to_slot: vec![None; n_qubits],
            slot_to_qubit: vec![None; 2 * n_units],
            encoded: vec![false; n_units],
        }
    }

    /// Number of logical qubits tracked.
    pub fn n_qubits(&self) -> usize {
        self.qubit_to_slot.len()
    }

    /// Number of physical units.
    pub fn n_units(&self) -> usize {
        self.encoded.len()
    }

    /// The slot of a logical qubit, if placed.
    pub fn slot_of(&self, qubit: usize) -> Option<Slot> {
        self.qubit_to_slot[qubit]
    }

    /// The logical qubit at a slot, if any.
    pub fn qubit_at(&self, slot: Slot) -> Option<usize> {
        self.slot_to_qubit[slot.index()]
    }

    /// Whether a unit is an encoded ququart.
    pub fn is_encoded(&self, unit: usize) -> bool {
        self.encoded[unit]
    }

    /// Marks a unit as encoded (mapping-time only).
    pub fn set_encoded(&mut self, unit: usize) {
        self.encoded[unit] = true;
    }

    /// Per-unit encoded flags.
    pub fn encoded_flags(&self) -> &[bool] {
        &self.encoded
    }

    /// Whether any qubit lives in the unit.
    pub fn unit_active(&self, unit: usize) -> bool {
        self.qubit_at(Slot::zero(unit)).is_some() || self.qubit_at(Slot::one(unit)).is_some()
    }

    /// Number of units hosting at least one qubit.
    pub fn active_units(&self) -> usize {
        (0..self.n_units()).filter(|&u| self.unit_active(u)).count()
    }

    /// Places a qubit at a slot.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is already placed, the slot is occupied, or the
    /// slot-1 placement targets a non-encoded unit.
    pub fn place(&mut self, qubit: usize, slot: Slot) {
        assert!(
            self.qubit_to_slot[qubit].is_none(),
            "qubit {qubit} already placed"
        );
        assert!(
            self.slot_to_qubit[slot.index()].is_none(),
            "slot {slot} already occupied"
        );
        if slot.slot == SlotIndex::One {
            assert!(
                self.encoded[slot.node],
                "slot 1 of non-encoded unit {}",
                slot.node
            );
        }
        self.qubit_to_slot[qubit] = Some(slot);
        self.slot_to_qubit[slot.index()] = Some(qubit);
    }

    /// Exchanges the occupants (either may be vacant) of two slots.
    pub fn swap_occupants(&mut self, a: Slot, b: Slot) {
        let qa = self.slot_to_qubit[a.index()];
        let qb = self.slot_to_qubit[b.index()];
        self.slot_to_qubit[a.index()] = qb;
        self.slot_to_qubit[b.index()] = qa;
        if let Some(q) = qa {
            self.qubit_to_slot[q] = Some(b);
        }
        if let Some(q) = qb {
            self.qubit_to_slot[q] = Some(a);
        }
    }

    /// Applies the movement side-effect of a physical op (SWAP family, ENC,
    /// DEC, SWAP4); non-moving ops are no-ops.
    pub fn apply_op(&mut self, op: &PhysicalOp) {
        if let PhysicalOp::TwoUnit { a, b, class } = *op {
            if class == GateClass::Swap4 {
                for (x, y) in swap4_moves(a, b) {
                    self.swap_occupants(x, y);
                }
                return;
            }
        }
        if let Some((x, y)) = op.moved_slots() {
            self.swap_occupants(x, y);
        }
    }

    /// The final `(unit, slot)` placement of every logical qubit.
    ///
    /// # Panics
    ///
    /// Panics if any qubit is unplaced.
    pub fn placements(&self) -> Vec<(usize, usize)> {
        self.qubit_to_slot
            .iter()
            .enumerate()
            .map(|(q, s)| {
                let s = s.unwrap_or_else(|| panic!("qubit {q} unplaced"));
                (s.node, s.slot.as_usize())
            })
            .collect()
    }

    /// Occupancy of a unit: `(slot0 occupied, slot1 occupied)`.
    pub fn occupancy(&self, unit: usize) -> (bool, bool) {
        (
            self.qubit_at(Slot::zero(unit)).is_some(),
            self.qubit_at(Slot::one(unit)).is_some(),
        )
    }

    /// Checks internal consistency (both directions agree, slot-1 implies
    /// encoded). Used by debug assertions and tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (q, slot) in self.qubit_to_slot.iter().enumerate() {
            if let Some(s) = slot {
                if self.slot_to_qubit[s.index()] != Some(q) {
                    return Err(format!("qubit {q} and slot {s} disagree"));
                }
                if s.slot == SlotIndex::One && !self.encoded[s.node] {
                    return Err(format!("qubit {q} at slot 1 of bare unit {}", s.node));
                }
            }
        }
        for (idx, q) in self.slot_to_qubit.iter().enumerate() {
            if let Some(q) = q {
                if self.qubit_to_slot[*q] != Some(Slot::from_index(idx)) {
                    return Err(format!("slot {idx} and qubit {q} disagree"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::SingleQubitKind;

    #[test]
    fn place_and_lookup() {
        let mut l = Layout::new(2, 3);
        l.place(0, Slot::zero(1));
        assert_eq!(l.slot_of(0), Some(Slot::zero(1)));
        assert_eq!(l.qubit_at(Slot::zero(1)), Some(0));
        assert!(l.unit_active(1));
        assert!(!l.unit_active(0));
        l.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "slot 1 of non-encoded")]
    fn slot_one_requires_encoding() {
        let mut l = Layout::new(1, 1);
        l.place(0, Slot::one(0));
    }

    #[test]
    fn encoded_placement() {
        let mut l = Layout::new(2, 2);
        l.set_encoded(0);
        l.place(0, Slot::zero(0));
        l.place(1, Slot::one(0));
        assert_eq!(l.occupancy(0), (true, true));
        assert_eq!(l.active_units(), 1);
        l.check_invariants().unwrap();
    }

    #[test]
    fn swap_occupants_with_vacancy() {
        let mut l = Layout::new(1, 2);
        l.place(0, Slot::zero(0));
        l.swap_occupants(Slot::zero(0), Slot::zero(1));
        assert_eq!(l.slot_of(0), Some(Slot::zero(1)));
        assert_eq!(l.qubit_at(Slot::zero(0)), None);
        l.check_invariants().unwrap();
    }

    #[test]
    fn apply_swap2_op() {
        let mut l = Layout::new(2, 2);
        l.place(0, Slot::zero(0));
        l.place(1, Slot::zero(1));
        l.apply_op(&PhysicalOp::TwoUnit {
            a: 0,
            b: 1,
            class: GateClass::Swap2,
        });
        assert_eq!(l.slot_of(0), Some(Slot::zero(1)));
        assert_eq!(l.slot_of(1), Some(Slot::zero(0)));
    }

    #[test]
    fn apply_enc_moves_partner() {
        let mut l = Layout::new(2, 2);
        l.set_encoded(0);
        l.place(0, Slot::zero(0));
        l.place(1, Slot::zero(1));
        l.apply_op(&PhysicalOp::TwoUnit {
            a: 0,
            b: 1,
            class: GateClass::Enc,
        });
        assert_eq!(l.slot_of(1), Some(Slot::one(0)));
        assert_eq!(l.occupancy(1), (false, false));
        l.check_invariants().unwrap();
    }

    #[test]
    fn apply_swap4_moves_both_slots() {
        let mut l = Layout::new(3, 2);
        l.set_encoded(0);
        l.set_encoded(1);
        l.place(0, Slot::zero(0));
        l.place(1, Slot::one(0));
        l.place(2, Slot::zero(1));
        l.apply_op(&PhysicalOp::TwoUnit {
            a: 0,
            b: 1,
            class: GateClass::Swap4,
        });
        assert_eq!(l.slot_of(0), Some(Slot::zero(1)));
        assert_eq!(l.slot_of(1), Some(Slot::one(1)));
        assert_eq!(l.slot_of(2), Some(Slot::zero(0)));
    }

    #[test]
    fn non_moving_ops_do_nothing() {
        let mut l = Layout::new(2, 2);
        l.place(0, Slot::zero(0));
        l.place(1, Slot::zero(1));
        let before = l.clone();
        l.apply_op(&PhysicalOp::TwoUnit {
            a: 0,
            b: 1,
            class: GateClass::Cx2,
        });
        l.apply_op(&PhysicalOp::Single {
            unit: 0,
            kind: SingleQubitKind::H,
            class: GateClass::X,
        });
        assert_eq!(l, before);
    }

    #[test]
    fn placements_report() {
        let mut l = Layout::new(2, 2);
        l.set_encoded(1);
        l.place(0, Slot::zero(1));
        l.place(1, Slot::one(1));
        assert_eq!(l.placements(), vec![(1, 0), (1, 1)]);
    }
}
