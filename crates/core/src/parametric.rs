//! Skeleton compilation for parameter-sweep traffic.
//!
//! The pipeline is **angle-independent**: mapping, routing, gate merging
//! and scheduling decide everything from gate *classes* and operands, and
//! rotation angles survive into the output only as payloads of
//! [`PhysicalOp::Single`] / [`PhysicalOp::Merged`] kinds in the final
//! [`crate::Schedule`]. A [`SkeletonArtifact`] exploits that: it compiles
//! a [`ParametricCircuit`] **once** with traceable sentinel angles at
//! every parametric site, records where each sentinel surfaced in the
//! scheduled ops (the *stamp plan*), and then serves any angle binding by
//! cloning the template and overwriting exactly those payloads — an
//! `O(gates)` stamp instead of a full pipeline run, byte-identical to
//! compiling the bound circuit directly (pinned by
//! `tests/parametric_sweep.rs`).
//!
//! Sentinels are quiet NaNs carrying the parameter id in their low bits.
//! NaN payloads are inert in this pipeline — no pass compares rotation
//! kinds for equality or branches on angle values — and they cannot
//! collide with user angles, which are always finite
//! ([`ParametricCircuit::bind`] enforces it). If a sentinel were ever
//! duplicated, dropped or mangled, the plan length would disagree with the
//! skeleton's site count and construction panics loudly rather than
//! serving corrupt sweeps.

use crate::batch::BatchJob;
use crate::physical::PhysicalOp;
use crate::pipeline::CompilationResult;
use crate::result_cache::CacheStats;
use crate::strategies::Strategy;
use qompress_arch::Topology;
use qompress_circuit::{
    Circuit, Gate, ParamId, ParametricCircuit, ParametricGate, SingleQubitKind,
};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Quiet-NaN bit pattern marking a parametric rotation site; the low 32
/// bits carry the parameter id.
const SENTINEL_BASE: u64 = 0x7FF8_DEAD_0000_0000;

/// Mask selecting the sentinel signature (everything above the id bits).
const SENTINEL_MASK: u64 = 0xFFFF_FFFF_0000_0000;

/// The sentinel angle for parameter `param`.
fn sentinel(param: ParamId) -> f64 {
    f64::from_bits(SENTINEL_BASE | param as u64)
}

/// The parameter id if `kind` carries a sentinel angle.
fn sentinel_param(kind: &SingleQubitKind) -> Option<ParamId> {
    let angle = match *kind {
        SingleQubitKind::Rx(a) | SingleQubitKind::Ry(a) | SingleQubitKind::Rz(a) => a,
        _ => return None,
    };
    let bits = angle.to_bits();
    (bits & SENTINEL_MASK == SENTINEL_BASE).then_some((bits & 0xFFFF_FFFF) as ParamId)
}

/// `kind` with its angle payload replaced (axis preserved).
fn with_angle(kind: SingleQubitKind, angle: f64) -> SingleQubitKind {
    match kind {
        SingleQubitKind::Rx(_) => SingleQubitKind::Rx(angle),
        SingleQubitKind::Ry(_) => SingleQubitKind::Ry(angle),
        SingleQubitKind::Rz(_) => SingleQubitKind::Rz(angle),
        other => panic!("stamp plan points at non-rotation kind {other:?}"),
    }
}

/// Which angle payload of a scheduled op a stamp site addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StampField {
    /// The kind of a [`PhysicalOp::Single`].
    Single,
    /// `kind0` of a [`PhysicalOp::Merged`].
    Merged0,
    /// `kind1` of a [`PhysicalOp::Merged`].
    Merged1,
}

/// One entry of the stamp plan: write `angles[param]` into `field` of
/// scheduled op `op_index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StampSite {
    op_index: usize,
    field: StampField,
    param: ParamId,
}

/// The angle-independent compilation of a [`ParametricCircuit`]: a fully
/// mapped/routed/scheduled template plus the plan for stamping concrete
/// angles into it (the module-level comment explains the sentinel
/// probe that recovers the plan).
///
/// Obtained from [`crate::Compiler::compile_skeleton`] (cached per
/// session under the skeleton's structural fingerprint) and consumed via
/// [`SkeletonArtifact::stamp`].
#[derive(Debug, Clone)]
pub struct SkeletonArtifact {
    template: CompilationResult,
    plan: Vec<StampSite>,
    n_params: usize,
}

impl SkeletonArtifact {
    /// Compiles `skeleton` through `compile_fn` (one full pipeline run on
    /// the sentinel probe circuit) and extracts the stamp plan.
    ///
    /// # Panics
    ///
    /// Panics when a sentinel is dropped, duplicated or mangled by the
    /// pipeline — i.e. the recovered plan does not cover the skeleton's
    /// parametric sites exactly — or when the skeleton has more than
    /// `2^32` parameters (the sentinel id width).
    pub(crate) fn build(
        skeleton: &ParametricCircuit,
        compile_fn: impl FnOnce(&Circuit) -> CompilationResult,
    ) -> SkeletonArtifact {
        assert!(
            skeleton.n_params() as u64 <= u64::from(u32::MAX) + 1,
            "skeleton has {} parameters; sentinel ids carry at most 2^32",
            skeleton.n_params()
        );
        let mut probe = Circuit::new(skeleton.n_qubits());
        for gate in skeleton.gates() {
            match *gate {
                ParametricGate::Fixed(g) => probe.push(g),
                ParametricGate::Rotation { axis, param, qubit } => {
                    probe.push(Gate::single(axis.kind(sentinel(param)), qubit))
                }
            }
        }
        let template = compile_fn(&probe);

        let mut plan = Vec::with_capacity(skeleton.site_count());
        for (op_index, sop) in template.schedule.ops().iter().enumerate() {
            match sop.op {
                PhysicalOp::Single { ref kind, .. } => {
                    if let Some(param) = sentinel_param(kind) {
                        plan.push(StampSite {
                            op_index,
                            field: StampField::Single,
                            param,
                        });
                    }
                }
                PhysicalOp::Merged {
                    ref kind0,
                    ref kind1,
                    ..
                } => {
                    if let Some(param) = sentinel_param(kind0) {
                        plan.push(StampSite {
                            op_index,
                            field: StampField::Merged0,
                            param,
                        });
                    }
                    if let Some(param) = sentinel_param(kind1) {
                        plan.push(StampSite {
                            op_index,
                            field: StampField::Merged1,
                            param,
                        });
                    }
                }
                _ => {}
            }
        }
        assert_eq!(
            plan.len(),
            skeleton.site_count(),
            "stamp plan covers {} sites but the skeleton has {}: the \
             pipeline dropped, duplicated or rewrote a parametric rotation",
            plan.len(),
            skeleton.site_count()
        );
        SkeletonArtifact {
            template,
            plan,
            n_params: skeleton.n_params(),
        }
    }

    /// Length of the angle vector [`SkeletonArtifact::stamp`] expects.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Number of stamp sites in the compiled template.
    pub fn site_count(&self) -> usize {
        self.plan.len()
    }

    /// The sentinel-compiled template. Angle payloads at parametric sites
    /// are NaN sentinels — use [`SkeletonArtifact::stamp`] for a servable
    /// result.
    pub fn template(&self) -> &CompilationResult {
        &self.template
    }

    /// Stamps `angles` into the template, producing the result a direct
    /// `compile(skeleton.bind(angles))` would — byte-identical, at the
    /// cost of one clone plus `O(sites)` payload writes.
    ///
    /// # Panics
    ///
    /// Panics when `angles.len() != self.n_params()` or any angle is
    /// non-finite (same contract as [`ParametricCircuit::bind`]).
    pub fn stamp(&self, angles: &[f64]) -> CompilationResult {
        assert_eq!(
            angles.len(),
            self.n_params,
            "skeleton artifact has {} parameter(s) but {} angle(s) were bound",
            self.n_params,
            angles.len()
        );
        for (p, a) in angles.iter().enumerate() {
            assert!(a.is_finite(), "bound angle theta{p} = {a} is not finite");
        }
        let mut result = self.template.clone();
        let ops = result.schedule.ops_mut();
        for site in &self.plan {
            let angle = angles[site.param];
            match (&mut ops[site.op_index].op, site.field) {
                (PhysicalOp::Single { kind, .. }, StampField::Single) => {
                    *kind = with_angle(*kind, angle);
                }
                (PhysicalOp::Merged { kind0, .. }, StampField::Merged0) => {
                    *kind0 = with_angle(*kind0, angle);
                }
                (PhysicalOp::Merged { kind1, .. }, StampField::Merged1) => {
                    *kind1 = with_angle(*kind1, angle);
                }
                _ => unreachable!("stamp plan out of sync with template ops"),
            }
        }
        result
    }
}

/// The sweep-side binding data riding along with a [`BatchJob`]: which
/// skeleton the job came from, its angles, and the sweep-shared slot for
/// the compiled artifact ([`OnceLock`], so concurrent workers do exactly
/// one structural compile per sweep even before the session-level
/// skeleton cache is warm).
#[derive(Debug, Clone)]
pub(crate) struct SweepBinding {
    pub(crate) skeleton: Arc<ParametricCircuit>,
    pub(crate) angles: Vec<f64>,
    pub(crate) artifact: Arc<OnceLock<Arc<SkeletonArtifact>>>,
}

/// A handle for fanning one skeleton out into per-binding service jobs.
///
/// All jobs minted from one `ParamSweep` share an artifact slot: whichever
/// worker claims the first job compiles the structure, every other job
/// stamps. Independent `ParamSweep`s over the same structure still share
/// work through the session's skeleton cache.
#[derive(Debug, Clone)]
pub struct ParamSweep {
    skeleton: Arc<ParametricCircuit>,
    artifact: Arc<OnceLock<Arc<SkeletonArtifact>>>,
}

impl ParamSweep {
    /// Wraps `skeleton` for sweep submission.
    pub fn new(skeleton: ParametricCircuit) -> Self {
        ParamSweep {
            skeleton: Arc::new(skeleton),
            artifact: Arc::new(OnceLock::new()),
        }
    }

    /// The wrapped skeleton.
    pub fn skeleton(&self) -> &ParametricCircuit {
        &self.skeleton
    }

    /// Mints the [`BatchJob`] for one binding, ready for
    /// [`crate::Compiler::submit`] / [`crate::Compiler::submit_watched`] /
    /// [`crate::Compiler::compile_batch`]. The job carries the bound
    /// concrete circuit (so labels, logs and fallbacks see a normal job)
    /// plus the sweep binding that routes it through the stamp path.
    ///
    /// # Panics
    ///
    /// Panics when `angles` has the wrong length or a non-finite entry
    /// (validated eagerly by [`ParametricCircuit::bind`]).
    pub fn job(
        &self,
        label: impl Into<String>,
        strategy: Strategy,
        topology: Topology,
        angles: &[f64],
    ) -> BatchJob {
        let mut job = BatchJob::new(label, self.skeleton.bind(angles), strategy, topology);
        job.binding = Some(SweepBinding {
            skeleton: Arc::clone(&self.skeleton),
            angles: angles.to_vec(),
            artifact: Arc::clone(&self.artifact),
        });
        job
    }
}

/// The outcome of [`crate::Compiler::compile_sweep`]: per-binding results
/// in input order plus the sweep's skeleton-cache activity.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One compiled result per binding, in input order; each is
    /// byte-identical to directly compiling `skeleton.bind(angles)`.
    pub results: Vec<Arc<CompilationResult>>,
    /// Skeleton-cache counters observed during this sweep (exact when the
    /// session runs one sweep at a time): a cold sweep of N bindings
    /// shows 1 miss and N−1 hits.
    pub skeleton_cache: CacheStats,
    /// Wall-clock time for the whole sweep.
    pub elapsed: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_round_trip_param_ids() {
        for param in [0usize, 1, 7, 65_535, u32::MAX as usize] {
            let s = sentinel(param);
            assert!(s.is_nan(), "sentinel must be NaN");
            assert_eq!(
                sentinel_param(&SingleQubitKind::Rz(s)),
                Some(param),
                "{param}"
            );
            assert_eq!(sentinel_param(&SingleQubitKind::Rx(s)), Some(param));
        }
        // Ordinary angles — including NaN from user space — are not
        // sentinels.
        assert_eq!(sentinel_param(&SingleQubitKind::Rz(0.5)), None);
        assert_eq!(sentinel_param(&SingleQubitKind::Rz(f64::NAN)), None);
        assert_eq!(sentinel_param(&SingleQubitKind::Rz(f64::INFINITY)), None);
        assert_eq!(sentinel_param(&SingleQubitKind::H), None);
    }

    #[test]
    fn with_angle_preserves_axis() {
        assert_eq!(
            with_angle(SingleQubitKind::Rx(1.0), 2.0),
            SingleQubitKind::Rx(2.0)
        );
        assert_eq!(
            with_angle(SingleQubitKind::Ry(1.0), 2.0),
            SingleQubitKind::Ry(2.0)
        );
        assert_eq!(
            with_angle(SingleQubitKind::Rz(1.0), 2.0),
            SingleQubitKind::Rz(2.0)
        );
    }

    #[test]
    #[should_panic(expected = "non-rotation kind")]
    fn with_angle_rejects_fixed_kinds() {
        with_angle(SingleQubitKind::H, 1.0);
    }
}
