//! # qompress
//!
//! A mixed-radix (qubit/ququart) quantum circuit compiler reproducing
//! *Qompress: Efficient Compilation for Ququarts Exploiting Partial and
//! Mixed Radix Operations for Communication Reduction* (ASPLOS 2023).
//!
//! The pipeline maps logical qubits onto the expanded slot graph of a
//! physical topology (optionally compressing pairs of qubits into 4-level
//! ququarts), routes with the partial-SWAP move set, schedules against
//! exclusive physical units, and evaluates the Expected Probability of
//! Success split into gate-fidelity and coherence components.
//!
//! The blessed entry path is a [`Compiler`] session: it owns the
//! configuration, deduplicates per-topology precomputation across calls,
//! memoizes repeated compilations in a content-addressed result cache
//! (see [`CacheStats`]), and runs a persistent worker pool behind an MPMC
//! job queue — submit jobs with [`Compiler::submit`] and poll/wait/cancel
//! them through [`JobHandle`]s, or hand a whole list to
//! [`Compiler::compile_batch`] (a thin submit-all-then-wait wrapper over
//! the same pool). The free functions ([`compile`],
//! [`compile_with_options`], [`run_batch`], …) remain as thin
//! compatibility wrappers over one-shot sessions. The `qompress-service`
//! crate exposes the job service over a line-delimited JSON wire
//! protocol.
//!
//! ```
//! use qompress::{Compiler, Strategy};
//! use qompress_arch::Topology;
//! use qompress_circuit::{Circuit, Gate};
//!
//! // A hot pair of qubits plus a spectator.
//! let mut c = Circuit::new(3);
//! c.push(Gate::h(0));
//! for _ in 0..4 {
//!     c.push(Gate::cx(0, 1));
//! }
//! c.push(Gate::cx(1, 2));
//!
//! let session = Compiler::builder().build(); // paper config, caching on
//! let topo = Topology::grid(3);
//! let baseline = session.compile(&c, &topo, Strategy::QubitOnly);
//! let eqm = session.compile(&c, &topo, Strategy::Eqm);
//! // Compressing the hot pair turns CX2 gates into internal CXs.
//! assert!(eqm.metrics.gate_eps >= baseline.metrics.gate_eps);
//! // Recompiling either job is now a cache hit.
//! let again = session.compile(&c, &topo, Strategy::Eqm);
//! assert_eq!(again.metrics, eqm.metrics);
//! assert_eq!(session.cache_stats().hits, 1);
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the math

mod batch;
mod breaker;
mod config;
mod cost;
mod jobs;
mod layout;
mod mapping;
mod metrics;
mod parametric;
pub mod persist;
mod physical;
mod pipeline;
mod result_cache;
mod routing;
mod scheduling;
mod service;
mod session;
mod strategies;
mod timeline;

pub use batch::{
    run_batch, BatchJob, BatchJobError, BatchJobFailure, BatchJobResult, BatchRequest, BatchResult,
    TryBatchResult,
};
pub use breaker::BreakerState;
pub use config::CompilerConfig;
pub use cost::{
    cx_class, gate_cost, gate_success, swap_class, DistanceOracle, OracleMode, OracleStats,
};
pub use jobs::{CompletionQueue, JobHandle, JobId, JobOutcome, JobStatus};
pub use layout::Layout;
pub use mapping::{map_circuit, MappingOptions};
pub use metrics::{coherence_eps, gate_eps_from_counts, Metrics};
pub use parametric::{ParamSweep, SkeletonArtifact, SweepResult};
pub use physical::{swap4_moves, PhysicalOp, Schedule, ScheduledOp};
pub use pipeline::{
    compile_with_options, compile_with_options_cached, CompilationResult, TopologyCache,
};
pub use result_cache::{CacheStats, TieredCacheStats};
pub use routing::{route, route_cached};
pub use scheduling::{merge_singles, schedule_ops, trace_coherence, CoherenceTrace};
pub use service::ServiceMetrics;
pub use session::{Compiler, CompilerBuilder};
pub use strategies::{
    compile, compile_cached, compile_exhaustive, compile_exhaustive_cached, EcObjective,
    ExhaustiveOptions, ExhaustiveStep, Strategy, ALL_STRATEGIES,
};
pub use timeline::{parallelism_stats, render_timeline, ParallelismStats};

// The disk tier's fault-injection hook, re-exported so chaos tests can
// arm a [`CompilerBuilder::persist_faults`] plan without a direct
// `qompress-store` dependency.
pub use qompress_store::{FaultKind, FaultOp, FaultPlan};
