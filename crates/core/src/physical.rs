//! Physical operations and circuits emitted by the compiler.

use qompress_arch::Slot;
use qompress_circuit::SingleQubitKind;
use qompress_pulse::GateClass;
use std::fmt;

/// One operation on the physical device.
///
/// Two-unit operands follow the class conventions of
/// [`qompress_pulse::gateset`]: the encoded unit first for mixed classes,
/// the control/source unit first otherwise. `Enc { a, b }` moves the
/// occupant of `b`'s slot 0 into `a`'s slot 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhysicalOp {
    /// A single-qubit gate: `class` is `X` (bare unit), `X0` or `X1`
    /// (encoded slot).
    Single {
        /// Target unit.
        unit: usize,
        /// Which logical unitary.
        kind: SingleQubitKind,
        /// Embedding class: [`GateClass::X`], [`GateClass::X0`] or
        /// [`GateClass::X1`].
        class: GateClass,
    },
    /// Two single-qubit gates merged into one ququart pulse (class `X0,1`).
    Merged {
        /// Target (encoded) unit.
        unit: usize,
        /// Gate on slot 0.
        kind0: SingleQubitKind,
        /// Gate on slot 1.
        kind1: SingleQubitKind,
    },
    /// An internal ququart operation: `Cx0`, `Cx1` or `SwapIn`.
    Internal {
        /// Target (encoded) unit.
        unit: usize,
        /// Which internal operation.
        class: GateClass,
    },
    /// Any two-unit gate.
    TwoUnit {
        /// First operand (per class convention).
        a: usize,
        /// Second operand.
        b: usize,
        /// Gate class.
        class: GateClass,
    },
}

impl PhysicalOp {
    /// The gate class (for duration/fidelity lookups).
    pub fn class(&self) -> GateClass {
        match *self {
            PhysicalOp::Single { class, .. } => class,
            PhysicalOp::Merged { .. } => GateClass::X01,
            PhysicalOp::Internal { class, .. } => class,
            PhysicalOp::TwoUnit { class, .. } => class,
        }
    }

    /// The physical units this op occupies.
    pub fn units(&self) -> (usize, Option<usize>) {
        match *self {
            PhysicalOp::Single { unit, .. }
            | PhysicalOp::Merged { unit, .. }
            | PhysicalOp::Internal { unit, .. } => (unit, None),
            PhysicalOp::TwoUnit { a, b, .. } => (a, Some(b)),
        }
    }

    /// Returns `true` when this is a routing/communication operation
    /// (any SWAP-class gate, ENC or DEC).
    pub fn is_communication(&self) -> bool {
        let c = self.class();
        c.is_swap() || matches!(c, GateClass::Enc | GateClass::Dec)
    }

    /// The pair of slots whose *occupants* exchange when this op executes,
    /// or `None` for non-moving gates.
    ///
    /// This is the single source of truth for layout updates, coherence
    /// tracking and the simulator's qubit-position bookkeeping.
    pub fn moved_slots(&self) -> Option<(Slot, Slot)> {
        match *self {
            PhysicalOp::Internal {
                unit,
                class: GateClass::SwapIn,
            } => Some((Slot::zero(unit), Slot::one(unit))),
            PhysicalOp::TwoUnit { a, b, class } => match class {
                GateClass::Swap2 => Some((Slot::zero(a), Slot::zero(b))),
                GateClass::SwapBareE0 => Some((Slot::zero(a), Slot::zero(b))),
                GateClass::SwapBareE1 => Some((Slot::one(a), Slot::zero(b))),
                GateClass::Swap00 => Some((Slot::zero(a), Slot::zero(b))),
                GateClass::Swap01 => Some((Slot::zero(a), Slot::one(b))),
                GateClass::Swap11 => Some((Slot::one(a), Slot::one(b))),
                // Enc moves b's bare qubit into a's slot 1 (and nothing
                // back — the vacated slot holds |0⟩); modeled as an
                // exchange with the empty slot.
                GateClass::Enc => Some((Slot::one(a), Slot::zero(b))),
                GateClass::Dec => Some((Slot::one(a), Slot::zero(b))),
                _ => None,
            },
            _ => None,
        }
    }
}

impl fmt::Display for PhysicalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PhysicalOp::Single { unit, kind, class } => {
                write!(f, "{kind}[{class}] u{unit}")
            }
            PhysicalOp::Merged { unit, kind0, kind1 } => {
                write!(f, "({kind0},{kind1})[X0,1] u{unit}")
            }
            PhysicalOp::Internal { unit, class } => write!(f, "{class} u{unit}"),
            PhysicalOp::TwoUnit { a, b, class } => write!(f, "{class} u{a}, u{b}"),
        }
    }
}

/// A full-SWAP4 also exchanges both slot pairs; exposed separately because
/// `moved_slots` models single exchanges.
pub fn swap4_moves(a: usize, b: usize) -> [(Slot, Slot); 2] {
    [(Slot::zero(a), Slot::zero(b)), (Slot::one(a), Slot::one(b))]
}

/// A scheduled physical operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledOp {
    /// The operation.
    pub op: PhysicalOp,
    /// Start time in nanoseconds.
    pub start_ns: f64,
    /// Duration in nanoseconds (from the gate library).
    pub duration_ns: f64,
}

impl ScheduledOp {
    /// End time in nanoseconds.
    pub fn end_ns(&self) -> f64 {
        self.start_ns + self.duration_ns
    }
}

/// A compiled, scheduled physical circuit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    ops: Vec<ScheduledOp>,
    n_units: usize,
    total_duration_ns: f64,
}

impl Schedule {
    /// Builds a schedule container (used by the scheduler).
    pub(crate) fn new(ops: Vec<ScheduledOp>, n_units: usize) -> Self {
        let total_duration_ns = ops.iter().map(ScheduledOp::end_ns).fold(0.0, f64::max);
        Schedule {
            ops,
            n_units,
            total_duration_ns,
        }
    }

    /// The scheduled operations, in dependency (emission) order.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// Mutable access to the scheduled operations, for the parametric
    /// stamp path which overwrites rotation-angle payloads in place.
    ///
    /// Crate-internal: callers must not change anything start/duration
    /// accounting depends on (the cached `total_duration_ns` is not
    /// recomputed).
    pub(crate) fn ops_mut(&mut self) -> &mut [ScheduledOp] {
        &mut self.ops
    }

    /// Number of physical units on the device.
    pub fn n_units(&self) -> usize {
        self.n_units
    }

    /// The schedule's independent state for the persistent codec
    /// (`crate::persist`), by exhaustive destructure: a new field fails
    /// to compile here until the on-disk format covers it.
    /// `total_duration_ns` is derived and deliberately dropped — decoding
    /// rebuilds it through [`Schedule::new`], which recomputes it from the
    /// ops deterministically.
    pub(crate) fn codec_parts(&self) -> (&[ScheduledOp], usize) {
        let Schedule {
            ops,
            n_units,
            total_duration_ns: _,
        } = self;
        (ops, *n_units)
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when the schedule has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Critical-path duration of the circuit in nanoseconds.
    pub fn total_duration_ns(&self) -> f64 {
        self.total_duration_ns
    }

    /// Checks structural validity against a topology: every two-unit op on
    /// coupled units, no op exceeding unit bounds, and non-overlapping unit
    /// occupancy. Returns a list of violations (empty = valid).
    pub fn validate(&self, topology: &qompress_arch::Topology) -> Vec<String> {
        let mut problems = Vec::new();
        let mut busy_until = vec![0.0f64; self.n_units];
        for (i, sop) in self.ops.iter().enumerate() {
            let (u, v) = sop.op.units();
            if u >= self.n_units || v.is_some_and(|v| v >= self.n_units) {
                problems.push(format!("op {i} ({}) addresses missing unit", sop.op));
                continue;
            }
            if let Some(v) = v {
                if u == v {
                    problems.push(format!("op {i} ({}) uses one unit twice", sop.op));
                } else if !topology.has_edge(u, v) {
                    problems.push(format!("op {i} ({}) spans uncoupled units", sop.op));
                }
            }
            for unit in [Some(u), v].into_iter().flatten() {
                if sop.start_ns < busy_until[unit] - 1e-9 {
                    problems.push(format!(
                        "op {i} ({}) starts at {} while unit {unit} busy until {}",
                        sop.op, sop.start_ns, busy_until[unit]
                    ));
                }
                busy_until[unit] = busy_until[unit].max(sop.end_ns());
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_arch::Topology;

    #[test]
    fn class_and_units() {
        let op = PhysicalOp::TwoUnit {
            a: 1,
            b: 2,
            class: GateClass::Cx2,
        };
        assert_eq!(op.class(), GateClass::Cx2);
        assert_eq!(op.units(), (1, Some(2)));
        let s = PhysicalOp::Single {
            unit: 3,
            kind: SingleQubitKind::H,
            class: GateClass::X,
        };
        assert_eq!(s.units(), (3, None));
        assert_eq!(s.class(), GateClass::X);
    }

    #[test]
    fn moved_slots_for_swaps() {
        let sw = PhysicalOp::TwoUnit {
            a: 0,
            b: 1,
            class: GateClass::SwapBareE1,
        };
        let (x, y) = sw.moved_slots().unwrap();
        assert_eq!(x, Slot::one(0));
        assert_eq!(y, Slot::zero(1));
        let cx = PhysicalOp::TwoUnit {
            a: 0,
            b: 1,
            class: GateClass::Cx2,
        };
        assert!(cx.moved_slots().is_none());
    }

    #[test]
    fn enc_moves_partner_into_slot_one() {
        let enc = PhysicalOp::TwoUnit {
            a: 4,
            b: 7,
            class: GateClass::Enc,
        };
        let (x, y) = enc.moved_slots().unwrap();
        assert_eq!(x, Slot::one(4));
        assert_eq!(y, Slot::zero(7));
    }

    #[test]
    fn communication_predicate() {
        assert!(PhysicalOp::TwoUnit {
            a: 0,
            b: 1,
            class: GateClass::Swap2
        }
        .is_communication());
        assert!(PhysicalOp::TwoUnit {
            a: 0,
            b: 1,
            class: GateClass::Enc
        }
        .is_communication());
        assert!(!PhysicalOp::TwoUnit {
            a: 0,
            b: 1,
            class: GateClass::Cx00
        }
        .is_communication());
        // Internal SWAP counts as communication (it moves qubits).
        assert!(PhysicalOp::Internal {
            unit: 0,
            class: GateClass::SwapIn
        }
        .is_communication());
    }

    #[test]
    fn schedule_duration_and_validation() {
        let ops = vec![
            ScheduledOp {
                op: PhysicalOp::Single {
                    unit: 0,
                    kind: SingleQubitKind::H,
                    class: GateClass::X,
                },
                start_ns: 0.0,
                duration_ns: 35.0,
            },
            ScheduledOp {
                op: PhysicalOp::TwoUnit {
                    a: 0,
                    b: 1,
                    class: GateClass::Cx2,
                },
                start_ns: 35.0,
                duration_ns: 251.0,
            },
        ];
        let s = Schedule::new(ops, 2);
        assert!((s.total_duration_ns() - 286.0).abs() < 1e-12);
        assert!(s.validate(&Topology::line(2)).is_empty());
    }

    #[test]
    fn validate_catches_overlap_and_uncoupled() {
        let ops = vec![
            ScheduledOp {
                op: PhysicalOp::TwoUnit {
                    a: 0,
                    b: 2,
                    class: GateClass::Cx2,
                },
                start_ns: 0.0,
                duration_ns: 251.0,
            },
            ScheduledOp {
                op: PhysicalOp::Single {
                    unit: 0,
                    kind: SingleQubitKind::X,
                    class: GateClass::X,
                },
                start_ns: 100.0,
                duration_ns: 35.0,
            },
        ];
        let s = Schedule::new(ops, 3);
        let problems = s.validate(&Topology::line(3));
        assert_eq!(problems.len(), 2); // uncoupled + overlap
    }
}
