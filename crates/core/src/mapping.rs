//! Greedy interaction-weight mapping onto the expanded architecture
//! (paper §4.2 and the EQM strategy of §5.2).
//!
//! The heaviest qubit (largest total interaction weight) is placed at the
//! architecture's center unit; remaining qubits are placed one at a time in
//! order of their total weight to already-placed qubits, each at the
//! candidate position maximizing `Σ_j w(q, j) · S(path to j)` — interaction
//! weight discounted by the success probability of the connecting path.
//! Slot 1 of a unit is only ever considered after slot 0 is taken, and
//! hard pairing constraints (from the compression strategies of §5) force
//! two qubits into one ququart.

use crate::config::CompilerConfig;
use crate::cost::{DistanceOracle, OracleMode};
use crate::layout::Layout;
use qompress_arch::{Slot, Topology};
use qompress_circuit::graph::WGraph;
use qompress_circuit::{Circuit, InteractionGraph};
use qompress_pulse::GateClass;

/// Mapping-time options.
#[derive(Debug, Clone, Default)]
pub struct MappingOptions {
    /// Pairs that must share a ququart: `(slot-0 qubit, slot-1 qubit)`.
    pub pairs: Vec<(usize, usize)>,
    /// Allow spontaneous use of slot-1 positions (the EQM strategy);
    /// explicit-pair strategies and qubit-only compilation disable this.
    pub allow_slot1: bool,
}

impl MappingOptions {
    /// Qubit-only mapping: no pairs, no slot-1 usage.
    pub fn qubit_only() -> Self {
        MappingOptions::default()
    }

    /// EQM: no explicit pairs, slot 1 allowed.
    pub fn eqm() -> Self {
        MappingOptions {
            pairs: Vec::new(),
            allow_slot1: true,
        }
    }

    /// Explicit pairs, no further spontaneous encoding.
    pub fn with_pairs(pairs: Vec<(usize, usize)>) -> Self {
        MappingOptions {
            pairs,
            allow_slot1: false,
        }
    }
}

/// Unit-level distance helper used for placement scoring: edge weight is
/// the `−log` success of the best SWAP class available between two units
/// under the current encodings. Row caching is delegated to the shared
/// [`DistanceOracle`] (the same two-mode machinery the router uses), so
/// mapping no longer maintains its own hand-rolled Dijkstra cache.
struct UnitMetric<'a> {
    topo: &'a Topology,
    config: &'a CompilerConfig,
    oracle: DistanceOracle,
}

impl<'a> UnitMetric<'a> {
    fn new(topo: &'a Topology, config: &'a CompilerConfig, layout: &Layout) -> Self {
        let mut m = UnitMetric {
            topo,
            config,
            oracle: DistanceOracle::over_graph(WGraph::new(0), config),
        };
        m.rebuild(layout);
        m
    }

    fn best_swap_class(layout: &Layout, u: usize, v: usize) -> GateClass {
        match (layout.is_encoded(u), layout.is_encoded(v)) {
            (false, false) => GateClass::Swap2,
            (true, true) => GateClass::Swap01, // cheapest encoded-encoded swap
            _ => GateClass::SwapBareE0,        // cheapest mixed swap
        }
    }

    fn rebuild(&mut self, layout: &Layout) {
        let mut graph = WGraph::new(self.topo.n_nodes());
        for &(u, v) in self.topo.edges() {
            let class = Self::best_swap_class(layout, u, v);
            let cost = crate::cost::gate_cost(self.config, layout, class, u, Some(v));
            graph.add_edge(u, v, cost.max(0.0));
        }
        self.oracle = DistanceOracle::over_graph(graph, self.config);
    }

    /// Path cost between units (sum of `−log` swap successes; 0 for the
    /// same unit). `from` is the candidate position, `to` an
    /// already-placed unit.
    fn cost(&self, from: usize, to: usize) -> f64 {
        match self.oracle.mode() {
            // Small device: rows keyed on the candidate, exactly the
            // orientation (and values) of the old hand-rolled cache —
            // byte identity preserved.
            OracleMode::Exact => self.oracle.distance_exact_idx(from, to),
            // Large device: key exact rows on the placed unit instead
            // (few of them) so memory stays O(placed · V) rather than
            // one row per scanned candidate.
            OracleMode::Landmark => self.oracle.distance_exact_idx(to, from),
        }
    }
}

/// Maps every qubit of `circuit` onto `topo`, returning the layout.
///
/// # Panics
///
/// Panics when the architecture cannot hold the circuit (more qubits than
/// available positions) or when pairing constraints are inconsistent.
pub fn map_circuit(
    circuit: &Circuit,
    topo: &Topology,
    config: &CompilerConfig,
    options: &MappingOptions,
) -> Layout {
    map_circuit_with_center(circuit, topo, config, options, topo.center())
}

/// [`map_circuit`] with the topology's center unit precomputed — finding
/// the center is an all-sources BFS (`O(V·E)`), so callers compiling many
/// circuits on one topology (the session pipeline) memoize it in their
/// `TopologyCache` instead of re-deriving it per job.
pub(crate) fn map_circuit_with_center(
    circuit: &Circuit,
    topo: &Topology,
    config: &CompilerConfig,
    options: &MappingOptions,
    center: usize,
) -> Layout {
    let n = circuit.n_qubits();
    let capacity = if options.allow_slot1 || !options.pairs.is_empty() {
        2 * topo.n_nodes()
    } else {
        topo.n_nodes()
    };
    assert!(
        n <= capacity,
        "circuit has {n} qubits but the architecture offers only {capacity} positions"
    );

    // Pairing table.
    let mut partner = vec![None; n];
    for &(a, b) in &options.pairs {
        assert!(a != b && a < n && b < n, "bad pair ({a},{b})");
        assert!(
            partner[a].is_none() && partner[b].is_none(),
            "qubit in two pairs"
        );
        partner[a] = Some(b);
        partner[b] = Some(a);
    }

    let ig = InteractionGraph::build(circuit);
    let mut layout = Layout::new(n, topo.n_nodes());
    let mut metric = UnitMetric::new(topo, config, &layout);
    let mut placed: Vec<usize> = Vec::new();
    let mut unplaced: Vec<bool> = vec![true; n];

    // Helper: total weight of q to already-placed qubits.
    let weight_to_placed = |q: usize, placed: &[usize], ig: &InteractionGraph| -> f64 {
        placed.iter().map(|&j| ig.weight(q, j)).sum()
    };

    // Extra −log-success cost a partial SWAP pays over a bare SWAP across
    // one edge: the price of encoding a qubit whose partners live elsewhere.
    let encode_premium = {
        let mut probe = Layout::new(0, 2);
        let bare = crate::cost::gate_cost(config, &probe, GateClass::Swap2, 0, Some(1));
        probe.set_encoded(0);
        let mixed = crate::cost::gate_cost(config, &probe, GateClass::SwapBareE0, 0, Some(1));
        (mixed - bare).max(0.0)
    };

    let center_dist: Vec<f64> = topo
        .to_ugraph()
        .bfs_distances(center)
        .into_iter()
        .map(|d| {
            if d == usize::MAX {
                f64::INFINITY
            } else {
                d as f64
            }
        })
        .collect();

    while placed.len() < n {
        // Select the next qubit: max weight to placed; ties / cold start by
        // max total weight, then lowest index.
        let pick = (0..n)
            .filter(|&q| unplaced[q])
            .map(|q| {
                let wp = weight_to_placed(q, &placed, &ig);
                (q, wp, ig.total_weight(q))
            })
            .max_by(|(qa, wpa, wta), (qb, wpb, wtb)| {
                wpa.partial_cmp(wpb)
                    .unwrap()
                    .then(wta.partial_cmp(wtb).unwrap())
                    .then(qb.cmp(qa))
            })
            .map(|(q, ..)| q)
            .expect("unplaced qubit exists");

        // Weighted path cost of placing `qs` at `unit` (lower is better):
        // co-location contributes zero, distant heavy partners dominate.
        let cost_from_unit =
            |unit: usize, qs: &[usize], layout: &Layout, metric: &UnitMetric| -> f64 {
                let mut c = 0.0;
                for &q in qs {
                    for &j in &placed {
                        let w = ig.weight(q, j);
                        if w > 0.0 {
                            let ju = layout.slot_of(j).expect("placed").node;
                            c += w * metric.cost(unit, ju);
                        }
                    }
                }
                c
            };

        if let Some(p) = partner[pick] {
            // Place the pair together in an empty unit.
            let (q0, q1) =
                if partner[pick] == Some(p) && options.pairs.iter().any(|&(a, _)| a == pick) {
                    (pick, p)
                } else {
                    (p, pick)
                };
            let best_unit = (0..topo.n_nodes())
                .filter(|&u| layout.occupancy(u) == (false, false))
                .map(|u| (u, cost_from_unit(u, &[q0, q1], &layout, &metric)))
                .min_by(|(ua, ca), (ub, cb)| {
                    ca.partial_cmp(cb)
                        .unwrap()
                        .then(center_dist[*ua].partial_cmp(&center_dist[*ub]).unwrap())
                        .then(ua.cmp(ub))
                })
                .map(|(u, _)| u)
                .expect("empty unit available for pair");
            layout.set_encoded(best_unit);
            layout.place(q0, Slot::zero(best_unit));
            layout.place(q1, Slot::one(best_unit));
            unplaced[q0] = false;
            unplaced[q1] = false;
            placed.push(q0);
            placed.push(q1);
            metric.rebuild(&layout);
        } else {
            // Single placement: slot 0 of empty units, plus slot 1 when the
            // EQM option allows it.
            let mut candidates: Vec<Slot> = (0..topo.n_nodes())
                .filter(|&u| layout.occupancy(u) == (false, false))
                .map(Slot::zero)
                .collect();
            if options.allow_slot1 {
                for u in 0..topo.n_nodes() {
                    let (s0, s1) = layout.occupancy(u);
                    if s0 && !s1 {
                        candidates.push(Slot::one(u));
                    }
                }
            }
            assert!(!candidates.is_empty(), "no candidate position left");
            let best = candidates
                .into_iter()
                .map(|s| {
                    let mut cost = cost_from_unit(s.node, &[pick], &layout, &metric);
                    if s.slot == qompress_arch::SlotIndex::One {
                        // Encoding makes this qubit's *external* interactions
                        // partial-gate priced; charge the premium so slot 1
                        // is taken only for genuine co-location benefits.
                        let sibling = layout.qubit_at(Slot::zero(s.node));
                        let ext: f64 = placed
                            .iter()
                            .filter(|&&j| Some(j) != sibling)
                            .map(|&j| ig.weight(pick, j))
                            .sum();
                        cost += encode_premium * ext;
                    }
                    (s, cost)
                })
                .min_by(|(sa, xa), (sb, xb)| {
                    xa.partial_cmp(xb)
                        .unwrap()
                        .then(sa.slot.cmp(&sb.slot)) // prefer bare on ties
                        .then(
                            center_dist[sa.node]
                                .partial_cmp(&center_dist[sb.node])
                                .unwrap(),
                        )
                        .then(sa.index().cmp(&sb.index()))
                })
                .map(|(s, _)| s)
                .expect("candidate exists");
            let newly_encoded =
                best.slot == qompress_arch::SlotIndex::One && !layout.is_encoded(best.node);
            if newly_encoded {
                layout.set_encoded(best.node);
            }
            layout.place(pick, best);
            unplaced[pick] = false;
            placed.push(pick);
            if newly_encoded {
                metric.rebuild(&layout);
            }
        }
    }

    debug_assert!(layout.check_invariants().is_ok());
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::Gate;

    fn chain_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n - 1 {
            c.push(Gate::cx(i, i + 1));
        }
        c
    }

    #[test]
    fn qubit_only_uses_slot0_exclusively() {
        let c = chain_circuit(5);
        let topo = Topology::grid(5);
        let layout = map_circuit(
            &c,
            &topo,
            &CompilerConfig::paper(),
            &MappingOptions::qubit_only(),
        );
        for q in 0..5 {
            let s = layout.slot_of(q).unwrap();
            assert_eq!(s.slot, qompress_arch::SlotIndex::Zero);
        }
        assert_eq!(layout.active_units(), 5);
        assert!(!layout.encoded_flags().iter().any(|&e| e));
    }

    #[test]
    fn heaviest_qubit_lands_on_center() {
        // Star circuit: qubit 0 interacts with everyone.
        let mut c = Circuit::new(5);
        for i in 1..5 {
            c.push(Gate::cx(0, i));
        }
        let topo = Topology::grid(9); // center = 4
        let layout = map_circuit(
            &c,
            &topo,
            &CompilerConfig::paper(),
            &MappingOptions::qubit_only(),
        );
        assert_eq!(layout.slot_of(0).unwrap().node, topo.center());
    }

    #[test]
    fn pairs_share_a_unit() {
        let c = chain_circuit(6);
        let topo = Topology::grid(6);
        let opts = MappingOptions::with_pairs(vec![(0, 1), (4, 5)]);
        let layout = map_circuit(&c, &topo, &CompilerConfig::paper(), &opts);
        let s0 = layout.slot_of(0).unwrap();
        let s1 = layout.slot_of(1).unwrap();
        assert_eq!(s0.node, s1.node);
        assert_eq!(s0.slot, qompress_arch::SlotIndex::Zero);
        assert_eq!(s1.slot, qompress_arch::SlotIndex::One);
        assert!(layout.is_encoded(s0.node));
        // Unpaired qubits stay bare.
        let s2 = layout.slot_of(2).unwrap();
        assert!(!layout.is_encoded(s2.node));
        assert_eq!(layout.active_units(), 4);
    }

    #[test]
    fn eqm_can_exceed_unit_count() {
        // 8 qubits on 4 units requires slot-1 placements.
        let c = chain_circuit(8);
        let topo = Topology::grid(4);
        let layout = map_circuit(&c, &topo, &CompilerConfig::paper(), &MappingOptions::eqm());
        assert_eq!(layout.placements().len(), 8);
        assert_eq!(layout.active_units(), 4);
        assert!(layout.encoded_flags().iter().filter(|&&e| e).count() == 4);
        layout.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "architecture offers only")]
    fn qubit_only_rejects_oversubscription() {
        let c = chain_circuit(8);
        let topo = Topology::grid(4);
        map_circuit(
            &c,
            &topo,
            &CompilerConfig::paper(),
            &MappingOptions::qubit_only(),
        );
    }

    #[test]
    fn interacting_qubits_placed_close() {
        let c = chain_circuit(9);
        let topo = Topology::grid(9);
        let layout = map_circuit(
            &c,
            &topo,
            &CompilerConfig::paper(),
            &MappingOptions::qubit_only(),
        );
        // Adjacent chain qubits should sit at low BFS distance on the grid.
        let ug = topo.to_ugraph();
        let mut total = 0usize;
        for i in 0..8 {
            let a = layout.slot_of(i).unwrap().node;
            let b = layout.slot_of(i + 1).unwrap().node;
            total += ug.bfs_distances(a)[b];
        }
        // Perfect snake gives 8; anything <= 12 is acceptably local.
        assert!(total <= 12, "chain spread too far: {total}");
    }

    #[test]
    fn idle_qubits_still_get_positions() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 1)); // qubits 2 and 3 idle
        let topo = Topology::grid(4);
        let layout = map_circuit(
            &c,
            &topo,
            &CompilerConfig::paper(),
            &MappingOptions::qubit_only(),
        );
        assert_eq!(layout.placements().len(), 4);
        layout.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "qubit in two pairs")]
    fn overlapping_pairs_rejected() {
        let c = chain_circuit(4);
        let topo = Topology::grid(4);
        let opts = MappingOptions::with_pairs(vec![(0, 1), (1, 2)]);
        map_circuit(&c, &topo, &CompilerConfig::paper(), &opts);
    }
}
