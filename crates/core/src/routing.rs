//! SABRE-style routing over the expanded slot graph with the partial-SWAP
//! move set (paper §4.2).
//!
//! The router processes the dependency DAG front; executable gates (single-
//! qubit, or two-qubit with adjacent operands) are emitted immediately,
//! preferring the gate on the longest remaining dependency chain. When the
//! front is blocked it scores candidate swaps — including internal
//! `SWAPin` hops and partial bare/encoded exchanges — by the change in
//! Eq. (4) path cost over the front plus a decayed lookahead window, with a
//! penalty for disturbing encoded ququarts. Encodings are never created or
//! destroyed. A progress guard falls back to deterministic shortest-path
//! routing, guaranteeing termination.
//!
//! # Hot-loop design
//!
//! The blocked-step loop is incremental and allocation-free in steady
//! state, while producing **byte-identical** op sequences to the
//! straightforward formulation (pinned by `tests/routing_determinism.rs`):
//!
//! * the lookahead window walks an intrusive linked list of not-yet-ready
//!   two-qubit gates, maintained in `finish_gate` — `O(lookahead)` per
//!   blocked step instead of a rescan of the whole circuit;
//! * gate membership (done / ready / pending) lives in dense bitsets, so
//!   no step performs a linear membership probe;
//! * the front, lookahead and candidate-move lists are reusable scratch
//!   buffers on the `Router`, and candidate dedup uses a stamped
//!   directed-edge table (linear in the device) instead of an `O(n²)`
//!   `Vec::contains` scan;
//! * scoring computes each front/lookahead pair's base distance once per
//!   step and re-evaluates only the pairs a candidate move actually
//!   perturbs (a move of `(s, t)` leaves every pair not touching `s` or
//!   `t` with a bit-exact zero contribution, so skipping them cannot
//!   change the score).

use crate::config::CompilerConfig;
use crate::cost::{cx_class, swap_class, DistanceOracle};
use crate::layout::Layout;
use crate::physical::PhysicalOp;
use crate::pipeline::TopologyCache;
use qompress_arch::{ExpandedGraph, Slot, SlotIndex};
use qompress_circuit::{Circuit, CircuitDag, Gate};
use qompress_pulse::GateClass;
use std::sync::Arc;

/// Sentinel for "no gate" in the intrusive pending-gate list.
const NO_GATE: usize = usize::MAX;

/// Routes `circuit` starting from `layout`, emitting physical operations
/// and mutating the layout to its final configuration.
///
/// # Panics
///
/// Panics if any qubit is unplaced in `layout`.
pub fn route(
    circuit: &Circuit,
    dag: &CircuitDag,
    layout: &mut Layout,
    expanded: &ExpandedGraph,
    config: &CompilerConfig,
) -> Vec<PhysicalOp> {
    let oracle = Arc::new(DistanceOracle::new(expanded, layout, config));
    Router::new(circuit, dag, layout, expanded, oracle, config).run()
}

/// [`route`] against a shared [`TopologyCache`].
///
/// Reuses the cache's expanded graph and its per-encoding-signature
/// distance oracles ([`TopologyCache::oracle_for`]): qubit-only layouts
/// share the bare oracle, and encoded layouts share one oracle per
/// encoded-unit set — so the Dijkstra rows computed by one job serve every
/// later job on the same topology with the same encodings.
pub fn route_cached(
    circuit: &Circuit,
    dag: &CircuitDag,
    layout: &mut Layout,
    cache: &TopologyCache,
    config: &CompilerConfig,
) -> Vec<PhysicalOp> {
    let oracle = cache.oracle_for(layout);
    Router::new(circuit, dag, layout, cache.expanded(), oracle, config).run()
}

/// Dense fixed-capacity bit set over `u64` words, for O(1) gate-index
/// membership tests in the router's inner loop.
#[derive(Debug, Clone)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    #[inline]
    fn contains(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }
}

struct Router<'a> {
    circuit: &'a Circuit,
    dag: &'a CircuitDag,
    layout: &'a mut Layout,
    expanded: &'a ExpandedGraph,
    config: &'a CompilerConfig,
    oracle: Arc<DistanceOracle>,
    /// Emitted-gate membership.
    done: BitSet,
    remaining_preds: Vec<usize>,
    /// Ready gates, kept sorted ascending (`ready[0]` feeds the fallback).
    ready: Vec<usize>,
    /// Ready-gate membership (mirrors `ready`).
    is_ready: BitSet,
    /// Intrusive linked list (in circuit order) over the two-qubit gates
    /// that are not yet ready: the incremental lookahead window. A gate is
    /// unlinked the moment it becomes ready, so walking the head of this
    /// list is exactly the "upcoming two-qubit gates beyond the front"
    /// scan, without revisiting emitted gates.
    pending_next: Vec<usize>,
    pending_prev: Vec<usize>,
    pending_head: usize,
    /// Pending-list membership.
    pending: BitSet,
    ops: Vec<PhysicalOp>,
    last_move: Option<(Slot, Slot)>,
    steps_since_progress: usize,
    // Reusable per-step scratch (no per-step allocation in steady state).
    front_buf: Vec<(Slot, Slot)>,
    front_base: Vec<f64>,
    look_buf: Vec<(Slot, Slot)>,
    look_base: Vec<f64>,
    moves_buf: Vec<(Slot, Slot)>,
    /// CSR-style offsets into `edge_stamp`: directed edge `(s, j)` — the
    /// `j`-th neighbor of slot `s` — lives at `edge_offset[s.index()] + j`.
    edge_offset: Vec<usize>,
    /// Stamped dedup table over *directed expanded-graph edges* (every
    /// candidate move is an edge incident to a front slot); a cell equal
    /// to the current stamp means the move was already pushed this step.
    /// Linear in the device (`4E + V` edges), unlike a slot-pair grid.
    edge_stamp: Vec<u64>,
    stamp: u64,
    /// Per-slot mark: slot is an operand of a front gate this step.
    front_mark: Vec<bool>,
}

impl<'a> Router<'a> {
    fn new(
        circuit: &'a Circuit,
        dag: &'a CircuitDag,
        layout: &'a mut Layout,
        expanded: &'a ExpandedGraph,
        oracle: Arc<DistanceOracle>,
        config: &'a CompilerConfig,
    ) -> Self {
        let n = circuit.len();
        let mut remaining_preds = vec![0usize; n];
        for idx in 0..n {
            remaining_preds[idx] = dag.preds(idx).len();
        }
        let ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
        let mut is_ready = BitSet::new(n);
        for &g in &ready {
            is_ready.insert(g);
        }

        // Link the not-yet-ready two-qubit gates in circuit order; gates
        // born ready never enter the lookahead window.
        let mut pending_next = vec![NO_GATE; n];
        let mut pending_prev = vec![NO_GATE; n];
        let mut pending_head = NO_GATE;
        let mut pending = BitSet::new(n);
        let mut tail = NO_GATE;
        for idx in circuit.two_qubit_gate_indices() {
            if remaining_preds[idx] == 0 {
                continue;
            }
            pending.insert(idx);
            pending_prev[idx] = tail;
            if tail == NO_GATE {
                pending_head = idx;
            } else {
                pending_next[tail] = idx;
            }
            tail = idx;
        }

        let n_slots = expanded.n_slots();
        let mut edge_offset = Vec::with_capacity(n_slots + 1);
        let mut directed_edges = 0usize;
        for s in expanded.slots() {
            edge_offset.push(directed_edges);
            directed_edges += expanded.neighbors(s).count();
        }
        edge_offset.push(directed_edges);
        Router {
            circuit,
            dag,
            layout,
            expanded,
            config,
            oracle,
            done: BitSet::new(n),
            remaining_preds,
            ready,
            is_ready,
            pending_next,
            pending_prev,
            pending_head,
            pending,
            ops: Vec::new(),
            last_move: None,
            steps_since_progress: 0,
            front_buf: Vec::new(),
            front_base: Vec::new(),
            look_buf: Vec::new(),
            look_base: Vec::new(),
            moves_buf: Vec::new(),
            edge_stamp: vec![0; directed_edges],
            edge_offset,
            stamp: 0,
            front_mark: vec![false; n_slots],
        }
    }

    fn run(mut self) -> Vec<PhysicalOp> {
        let total = self.circuit.len();
        let mut emitted = 0;
        while emitted < total {
            if let Some(gate_idx) = self.pick_executable() {
                self.emit_gate(gate_idx);
                self.finish_gate(gate_idx);
                emitted += 1;
                self.steps_since_progress = 0;
                continue;
            }
            // Blocked: route.
            if self.steps_since_progress >= self.config.max_router_steps_per_gate {
                let g = *self
                    .ready
                    .first()
                    .expect("blocked implies a ready two-qubit gate");
                self.force_route(g);
                self.emit_gate(g);
                self.finish_gate(g);
                emitted += 1;
                self.steps_since_progress = 0;
                continue;
            }
            match self.best_move() {
                Some(mv) => {
                    self.apply_move(mv);
                    self.steps_since_progress += 1;
                }
                None => {
                    // No legal heuristic move: force immediately.
                    let g = *self.ready.first().expect("ready gate exists");
                    self.force_route(g);
                    self.emit_gate(g);
                    self.finish_gate(g);
                    emitted += 1;
                    self.steps_since_progress = 0;
                }
            }
        }
        self.ops
    }

    fn slot_of(&self, qubit: usize) -> Slot {
        self.layout
            .slot_of(qubit)
            .unwrap_or_else(|| panic!("qubit {qubit} unplaced"))
    }

    fn gate_executable(&self, idx: usize) -> bool {
        match self.circuit.gates()[idx] {
            Gate::Single { .. } => true,
            Gate::Cx { control, target } => self
                .expanded
                .slots_adjacent(self.slot_of(control), self.slot_of(target)),
            // A logical SWAP is realized for free by relabeling the layout,
            // so it is always executable.
            Gate::Swap { .. } => true,
        }
    }

    /// Picks the executable ready gate on the longest remaining dependency
    /// chain (the serialization tie-break of §4.2).
    fn pick_executable(&self) -> Option<usize> {
        self.ready
            .iter()
            .copied()
            .filter(|&g| self.gate_executable(g))
            .max_by(|&a, &b| {
                self.dag
                    .remaining_path_len(a)
                    .cmp(&self.dag.remaining_path_len(b))
                    .then(b.cmp(&a))
            })
    }

    /// Unlinks a gate from the pending (lookahead) list, if present.
    fn unlink_pending(&mut self, idx: usize) {
        if !self.pending.contains(idx) {
            return;
        }
        self.pending.remove(idx);
        let prev = self.pending_prev[idx];
        let next = self.pending_next[idx];
        if prev == NO_GATE {
            self.pending_head = next;
        } else {
            self.pending_next[prev] = next;
        }
        if next != NO_GATE {
            self.pending_prev[next] = prev;
        }
    }

    fn finish_gate(&mut self, idx: usize) {
        debug_assert!(
            self.is_ready.contains(idx) && !self.done.contains(idx),
            "gates finish exactly once, from the ready set"
        );
        self.done.insert(idx);
        self.is_ready.remove(idx);
        self.ready.retain(|&g| g != idx);
        let dag: &CircuitDag = self.dag;
        for &s in dag.succs(idx) {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                self.ready.push(s);
                self.is_ready.insert(s);
                self.unlink_pending(s);
            }
        }
        self.ready.sort_unstable();
    }

    fn emit_gate(&mut self, idx: usize) {
        let gate = self.circuit.gates()[idx];
        match gate {
            Gate::Single { kind, qubit } => {
                let slot = self.slot_of(qubit);
                let class = if !self.layout.is_encoded(slot.node) {
                    GateClass::X
                } else if slot.slot == SlotIndex::Zero {
                    GateClass::X0
                } else {
                    GateClass::X1
                };
                self.ops.push(PhysicalOp::Single {
                    unit: slot.node,
                    kind,
                    class,
                });
            }
            Gate::Cx { control, target } => {
                let cs = self.slot_of(control);
                let ts = self.slot_of(target);
                let (class, a, b) = cx_class(self.layout, cs, ts);
                let op = if a == b {
                    PhysicalOp::Internal { unit: a, class }
                } else {
                    PhysicalOp::TwoUnit { a, b, class }
                };
                self.ops.push(op);
            }
            Gate::Swap { a: qa, b: qb } => {
                // Exchanging two logical qubits' states is equivalent to
                // exchanging their labels: zero physical cost, any distance.
                let sa = self.slot_of(qa);
                let sb = self.slot_of(qb);
                self.layout.swap_occupants(sa, sb);
            }
        }
    }

    /// Fills `out` with the front: ready two-qubit gates with non-adjacent
    /// operands, in ready (ascending-index) order.
    fn fill_front(&self, out: &mut Vec<(Slot, Slot)>) {
        for &g in &self.ready {
            if let Some((qa, qb)) = self.circuit.gates()[g].qubit_pair() {
                let sa = self.slot_of(qa);
                let sb = self.slot_of(qb);
                if !self.expanded.slots_adjacent(sa, sb) {
                    out.push((sa, sb));
                }
            }
        }
    }

    /// Fills `out` with the operand slots of the upcoming two-qubit gates
    /// beyond the front, by walking the pending list head (gate-index
    /// order, `O(lookahead)`).
    fn fill_lookahead(&self, out: &mut Vec<(Slot, Slot)>) {
        let mut idx = self.pending_head;
        while idx != NO_GATE {
            let (qa, qb) = self.circuit.gates()[idx]
                .qubit_pair()
                .expect("pending list holds two-qubit gates only");
            out.push((self.slot_of(qa), self.slot_of(qb)));
            if out.len() >= self.config.lookahead {
                break;
            }
            idx = self.pending_next[idx];
        }
    }

    /// A slot is usable as a move endpoint when it is slot 0, or slot 1 of
    /// an encoded unit.
    fn slot_usable(&self, s: Slot) -> bool {
        s.slot == SlotIndex::Zero || self.layout.is_encoded(s.node)
    }

    /// Fills `out` with the deduplicated candidate moves adjacent to the
    /// front slots, preserving first-insertion order (the stamped
    /// directed-edge table replaces the quadratic `Vec::contains` probe).
    ///
    /// An unordered move `{s, t}` has exactly two directed
    /// representations; pushing it stamps both, so a later arrival from
    /// either direction (the same front slot again, or the opposite
    /// endpoint) is skipped — the same set, in the same order, the
    /// reference's linear scan produces.
    fn fill_candidates(&mut self, front: &[(Slot, Slot)], out: &mut Vec<(Slot, Slot)>) {
        self.stamp += 1;
        let stamp = self.stamp;
        let expanded: &ExpandedGraph = self.expanded;
        for &(sa, sb) in front {
            for s in [sa, sb] {
                for (j, t) in expanded.neighbors(s).enumerate() {
                    if !self.slot_usable(t) {
                        continue;
                    }
                    let forward = self.edge_offset[s.index()] + j;
                    if self.edge_stamp[forward] == stamp {
                        continue;
                    }
                    self.edge_stamp[forward] = stamp;
                    let back = self.edge_offset[t.index()]
                        + expanded
                            .neighbors(t)
                            .position(|x| x == s)
                            .expect("expanded graph edges are symmetric");
                    self.edge_stamp[back] = stamp;
                    out.push(if s.index() <= t.index() {
                        (s, t)
                    } else {
                        (t, s)
                    });
                }
            }
        }
    }

    /// Scores a move: change in total front + decayed lookahead distance,
    /// plus the encoded-disturbance penalty and an anti-oscillation term.
    ///
    /// Only the pairs that touch the move's endpoints are re-measured; an
    /// untouched pair's term is `d(a, b) − d(a, b)`, which is exactly
    /// `+0.0`, and adding a signed zero never changes an IEEE-754
    /// accumulator — so the skip is bit-identical to the full sum.
    fn score_move(
        &self,
        mv: (Slot, Slot),
        front: &[(Slot, Slot)],
        front_base: &[f64],
        look: &[(Slot, Slot)],
        look_base: &[f64],
    ) -> f64 {
        let (s, t) = mv;
        let relocate = |x: Slot| {
            if x == s {
                t
            } else if x == t {
                s
            } else {
                x
            }
        };
        let mut delta = 0.0;
        for (i, &(a, b)) in front.iter().enumerate() {
            if a == s || a == t || b == s || b == t {
                // Front terms demand tie-break-grade precision: exact in
                // both oracle modes (in exact mode this is the same lazy
                // row `distance` reads, so byte identity is untouched).
                let after = self.oracle.distance_exact(relocate(a), relocate(b));
                delta += after - front_base[i];
            }
        }
        let mut decay = self.config.lookahead_decay;
        for (j, &(a, b)) in look.iter().enumerate() {
            if a == s || a == t || b == s || b == t {
                let after = self.oracle.distance(relocate(a), relocate(b));
                delta += decay * (after - look_base[j]);
            }
            decay *= self.config.lookahead_decay;
        }
        // Penalty for moving occupants of encoded ququarts that are not
        // front operands ("avoid swapping through ququarts").
        for x in [s, t] {
            if self.layout.is_encoded(x.node) && !self.front_mark[x.index()] {
                delta += self.config.ququart_route_penalty;
            }
        }
        // Strongly discourage undoing the previous move.
        if let Some((ls, lt)) = self.last_move {
            if (ls, lt) == (s, t) || (lt, ls) == (s, t) {
                delta += 1.0e6;
            }
        }
        delta
    }

    fn best_move(&mut self) -> Option<(Slot, Slot)> {
        let mut front = std::mem::take(&mut self.front_buf);
        front.clear();
        self.fill_front(&mut front);
        if front.is_empty() {
            self.front_buf = front;
            return None;
        }
        let mut look = std::mem::take(&mut self.look_buf);
        look.clear();
        self.fill_lookahead(&mut look);

        // Base distance of every pair, computed once per step. Front
        // pairs are always exact (deciding which gate becomes adjacent
        // next); lookahead pairs tolerate the landmark estimate — the
        // split is a static property of the call site, never of cache
        // state, so routing stays deterministic under shared oracles.
        let mut front_base = std::mem::take(&mut self.front_base);
        front_base.clear();
        front_base.extend(front.iter().map(|&(a, b)| self.oracle.distance_exact(a, b)));
        let mut look_base = std::mem::take(&mut self.look_base);
        look_base.clear();
        look_base.extend(look.iter().map(|&(a, b)| self.oracle.distance(a, b)));

        // Mark the front slots for the encoded-disturbance penalty test.
        for &(a, b) in &front {
            self.front_mark[a.index()] = true;
            self.front_mark[b.index()] = true;
        }

        let mut moves = std::mem::take(&mut self.moves_buf);
        moves.clear();
        self.fill_candidates(&front, &mut moves);

        let mut best: Option<((Slot, Slot), f64)> = None;
        for &mv in &moves {
            let score = self.score_move(mv, &front, &front_base, &look, &look_base);
            if !score.is_finite() {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bmv, bscore)) => {
                    score < *bscore - 1e-12
                        || ((score - *bscore).abs() <= 1e-12
                            && (mv.0.index(), mv.1.index()) < (bmv.0.index(), bmv.1.index()))
                }
            };
            if better {
                best = Some((mv, score));
            }
        }

        // Un-mark only the touched slots (no full sweep).
        for &(a, b) in &front {
            self.front_mark[a.index()] = false;
            self.front_mark[b.index()] = false;
        }
        self.front_buf = front;
        self.look_buf = look;
        self.front_base = front_base;
        self.look_base = look_base;
        self.moves_buf = moves;
        best.map(|(mv, _)| mv)
    }

    fn apply_move(&mut self, (s, t): (Slot, Slot)) {
        let (class, a, b) = swap_class(self.layout, s, t);
        let op = if a == b {
            PhysicalOp::Internal { unit: a, class }
        } else {
            PhysicalOp::TwoUnit { a, b, class }
        };
        self.layout.apply_op(&op);
        self.ops.push(op);
        self.last_move = Some((s, t));
    }

    /// Deterministic fallback: walk one operand of `gate` along the
    /// cheapest path until the gate's operands are adjacent.
    ///
    /// Each hop re-queries [`DistanceOracle::path`]; the oracle memoizes
    /// one predecessor row per source slot, so the whole walk costs at most
    /// one Dijkstra per distinct source instead of one per call.
    fn force_route(&mut self, gate: usize) {
        let (qa, qb) = self.circuit.gates()[gate]
            .qubit_pair()
            .expect("force_route only for two-qubit gates");
        let mut guard = 0;
        while !self
            .expanded
            .slots_adjacent(self.slot_of(qa), self.slot_of(qb))
        {
            let sa = self.slot_of(qa);
            let sb = self.slot_of(qb);
            let path = self
                .oracle
                .path(sa, sb)
                .unwrap_or_else(|| panic!("no path between {sa} and {sb}"));
            debug_assert!(path.len() >= 3, "non-adjacent slots have a mid hop");
            let next = path[1];
            self.apply_move((sa, next));
            guard += 1;
            assert!(
                guard <= self.expanded.n_slots() * 2,
                "force_route failed to converge"
            );
        }
        self.last_move = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{map_circuit, MappingOptions};
    use qompress_arch::Topology;

    fn route_circuit(
        circuit: &Circuit,
        topo: &Topology,
        options: &MappingOptions,
    ) -> (Vec<PhysicalOp>, Layout) {
        let config = CompilerConfig::paper();
        let dag = CircuitDag::build(circuit);
        let expanded = ExpandedGraph::new(topo.clone());
        let mut layout = map_circuit(circuit, topo, &config, options);
        let ops = route(circuit, &dag, &mut layout, &expanded, &config);
        (ops, layout)
    }

    fn count_2q_logical(ops: &[PhysicalOp]) -> usize {
        ops.iter().filter(|op| op.class().is_cx()).count()
    }

    #[test]
    fn bitset_membership() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0) && !s.contains(129));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        s.remove(64);
        assert!(!s.contains(64) && s.contains(63) && s.contains(129));
    }

    #[test]
    fn adjacent_gates_emit_without_swaps() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let topo = Topology::line(2);
        let (ops, _) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[1].class(), GateClass::Cx2);
    }

    #[test]
    fn distant_gates_insert_swaps() {
        // K4 on a line cannot be embedded without communication.
        let mut c = Circuit::new(4);
        for a in 0..4 {
            for b in (a + 1)..4 {
                c.push(Gate::cx(a, b));
            }
        }
        let topo = Topology::line(4);
        let (ops, layout) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        let swaps = ops.iter().filter(|o| o.class().is_swap()).count();
        assert!(swaps >= 1, "expected inserted swaps, ops: {ops:?}");
        assert_eq!(count_2q_logical(&ops), 6);
        layout.check_invariants().unwrap();
    }

    #[test]
    fn internal_cx_for_encoded_pairs() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 0));
        let topo = Topology::line(2);
        let opts = MappingOptions::with_pairs(vec![(0, 1)]);
        let (ops, _) = route_circuit(&c, &topo, &opts);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].class(), GateClass::Cx0);
        assert_eq!(ops[1].class(), GateClass::Cx1);
    }

    #[test]
    fn single_qubit_classes_follow_encoding() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        c.push(Gate::h(2));
        let topo = Topology::line(3);
        let opts = MappingOptions::with_pairs(vec![(0, 1)]);
        let (ops, layout) = route_circuit(&c, &topo, &opts);
        let mut classes: Vec<GateClass> = ops.iter().map(|o| o.class()).collect();
        classes.sort();
        assert!(classes.contains(&GateClass::X0));
        assert!(classes.contains(&GateClass::X1));
        assert!(classes.contains(&GateClass::X));
        assert_eq!(layout.active_units(), 2);
    }

    #[test]
    fn logical_swap_is_a_free_relabel() {
        let mut c = Circuit::new(2);
        c.push(Gate::swap(0, 1));
        let topo = Topology::line(2);
        let before = {
            let config = CompilerConfig::paper();
            crate::mapping::map_circuit(&c, &topo, &config, &MappingOptions::qubit_only())
                .placements()
        };
        let (ops, layout) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        assert!(ops.is_empty(), "logical SWAP must emit no pulses");
        // The two qubits exchanged positions relative to the mapping.
        let after = layout.placements();
        assert_eq!(after[0], before[1]);
        assert_eq!(after[1], before[0]);
    }

    #[test]
    fn distant_logical_swap_needs_no_routing() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 1));
        c.push(Gate::swap(0, 3));
        c.push(Gate::cx(3, 1));
        let topo = Topology::line(4);
        let (ops, _) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        // The seed version of this assertion ended in `|| true`, making it
        // vacuous. The intended property (paper §4.2: logical SWAPs are
        // free relabels that emit no pulses): after the relabel both CX
        // gates act on adjacent units, so no SWAP-family op of any class
        // may appear — only the two CXs do.
        assert!(
            ops.iter().all(|o| !o.class().is_swap()),
            "free logical SWAP must not generate physical SWAP traffic: {ops:?}"
        );
        assert_eq!(ops.iter().filter(|o| o.class().is_cx()).count(), 2);
    }

    #[test]
    fn all_two_unit_ops_on_coupled_units() {
        let c = {
            let mut c = Circuit::new(6);
            for i in 0..5 {
                c.push(Gate::cx(i, i + 1));
            }
            c.push(Gate::cx(0, 5));
            c.push(Gate::cx(2, 5));
            c
        };
        let topo = Topology::grid(6);
        let (ops, _) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        for op in &ops {
            if let (a, Some(b)) = op.units() {
                assert!(topo.has_edge(a, b), "op {op} spans uncoupled units");
            }
        }
    }

    #[test]
    fn mixed_radix_routing_produces_partial_gates() {
        // Pair (0,1) encoded; qubit 2 interacts with 0 -> partial CX needed.
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 2));
        c.push(Gate::cx(2, 1));
        let topo = Topology::line(3);
        let opts = MappingOptions::with_pairs(vec![(0, 1)]);
        let (ops, _) = route_circuit(&c, &topo, &opts);
        let has_partial = ops.iter().any(|o| {
            matches!(
                o.class(),
                GateClass::CxE0Bare
                    | GateClass::CxE1Bare
                    | GateClass::CxBareE0
                    | GateClass::CxBareE1
            )
        });
        assert!(has_partial, "expected a partial CX, got {ops:?}");
    }

    #[test]
    fn routing_terminates_on_ring() {
        // Ring topology with long-range interactions exercises the guard.
        let mut c = Circuit::new(8);
        for i in 0..8 {
            c.push(Gate::cx(i, (i + 4) % 8));
        }
        let topo = Topology::ring(8);
        let (ops, _) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        assert_eq!(count_2q_logical(&ops), 8);
    }

    #[test]
    fn dependency_order_is_preserved() {
        // cx(0,1) then x(1) then cx(1,2): ops referencing qubit 1 must stay
        // ordered.
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 1));
        c.push(Gate::x(1));
        c.push(Gate::cx(1, 2));
        let topo = Topology::line(3);
        let (ops, _) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        let cx_positions: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.class().is_cx())
            .map(|(i, _)| i)
            .collect();
        let x_pos = ops
            .iter()
            .position(|o| matches!(o, PhysicalOp::Single { .. }))
            .unwrap();
        assert!(cx_positions[0] < x_pos);
        assert!(x_pos < cx_positions[1]);
    }
}
