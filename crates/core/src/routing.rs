//! SABRE-style routing over the expanded slot graph with the partial-SWAP
//! move set (paper §4.2).
//!
//! The router processes the dependency DAG front; executable gates (single-
//! qubit, or two-qubit with adjacent operands) are emitted immediately,
//! preferring the gate on the longest remaining dependency chain. When the
//! front is blocked it scores candidate swaps — including internal
//! `SWAPin` hops and partial bare/encoded exchanges — by the change in
//! Eq. (4) path cost over the front plus a decayed lookahead window, with a
//! penalty for disturbing encoded ququarts. Encodings are never created or
//! destroyed. A progress guard falls back to deterministic shortest-path
//! routing, guaranteeing termination.

use crate::config::CompilerConfig;
use crate::cost::{cx_class, swap_class, DistanceOracle};
use crate::layout::Layout;
use crate::physical::PhysicalOp;
use crate::pipeline::TopologyCache;
use qompress_arch::{ExpandedGraph, Slot, SlotIndex};
use qompress_circuit::{Circuit, CircuitDag, Gate};
use qompress_pulse::GateClass;
use std::sync::Arc;

/// Routes `circuit` starting from `layout`, emitting physical operations
/// and mutating the layout to its final configuration.
///
/// # Panics
///
/// Panics if any qubit is unplaced in `layout`.
pub fn route(
    circuit: &Circuit,
    dag: &CircuitDag,
    layout: &mut Layout,
    expanded: &ExpandedGraph,
    config: &CompilerConfig,
) -> Vec<PhysicalOp> {
    let oracle = Arc::new(DistanceOracle::new(expanded, layout, config));
    Router::new(circuit, dag, layout, expanded, oracle, config).run()
}

/// [`route`] against a shared [`TopologyCache`].
///
/// Reuses the cache's expanded graph and its per-encoding-signature
/// distance oracles ([`TopologyCache::oracle_for`]): qubit-only layouts
/// share the bare oracle, and encoded layouts share one oracle per
/// encoded-unit set — so the Dijkstra rows computed by one job serve every
/// later job on the same topology with the same encodings.
pub fn route_cached(
    circuit: &Circuit,
    dag: &CircuitDag,
    layout: &mut Layout,
    cache: &TopologyCache,
    config: &CompilerConfig,
) -> Vec<PhysicalOp> {
    let oracle = cache.oracle_for(layout);
    Router::new(circuit, dag, layout, cache.expanded(), oracle, config).run()
}

struct Router<'a> {
    circuit: &'a Circuit,
    dag: &'a CircuitDag,
    layout: &'a mut Layout,
    expanded: &'a ExpandedGraph,
    config: &'a CompilerConfig,
    oracle: Arc<DistanceOracle>,
    done: Vec<bool>,
    remaining_preds: Vec<usize>,
    ready: Vec<usize>,
    ops: Vec<PhysicalOp>,
    last_move: Option<(Slot, Slot)>,
    steps_since_progress: usize,
}

impl<'a> Router<'a> {
    fn new(
        circuit: &'a Circuit,
        dag: &'a CircuitDag,
        layout: &'a mut Layout,
        expanded: &'a ExpandedGraph,
        oracle: Arc<DistanceOracle>,
        config: &'a CompilerConfig,
    ) -> Self {
        let n = circuit.len();
        let mut remaining_preds = vec![0usize; n];
        for idx in 0..n {
            remaining_preds[idx] = dag.preds(idx).len();
        }
        let ready = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
        Router {
            circuit,
            dag,
            layout,
            expanded,
            config,
            oracle,
            done: vec![false; n],
            remaining_preds,
            ready,
            ops: Vec::new(),
            last_move: None,
            steps_since_progress: 0,
        }
    }

    fn run(mut self) -> Vec<PhysicalOp> {
        let total = self.circuit.len();
        let mut emitted = 0;
        while emitted < total {
            if let Some(gate_idx) = self.pick_executable() {
                self.emit_gate(gate_idx);
                self.finish_gate(gate_idx);
                emitted += 1;
                self.steps_since_progress = 0;
                continue;
            }
            // Blocked: route.
            if self.steps_since_progress >= self.config.max_router_steps_per_gate {
                let g = *self
                    .ready
                    .first()
                    .expect("blocked implies a ready two-qubit gate");
                self.force_route(g);
                self.emit_gate(g);
                self.finish_gate(g);
                emitted += 1;
                self.steps_since_progress = 0;
                continue;
            }
            match self.best_move() {
                Some(mv) => {
                    self.apply_move(mv);
                    self.steps_since_progress += 1;
                }
                None => {
                    // No legal heuristic move: force immediately.
                    let g = *self.ready.first().expect("ready gate exists");
                    self.force_route(g);
                    self.emit_gate(g);
                    self.finish_gate(g);
                    emitted += 1;
                    self.steps_since_progress = 0;
                }
            }
        }
        self.ops
    }

    fn slot_of(&self, qubit: usize) -> Slot {
        self.layout
            .slot_of(qubit)
            .unwrap_or_else(|| panic!("qubit {qubit} unplaced"))
    }

    fn gate_executable(&self, idx: usize) -> bool {
        match self.circuit.gates()[idx] {
            Gate::Single { .. } => true,
            Gate::Cx { control, target } => self
                .expanded
                .slots_adjacent(self.slot_of(control), self.slot_of(target)),
            // A logical SWAP is realized for free by relabeling the layout,
            // so it is always executable.
            Gate::Swap { .. } => true,
        }
    }

    /// Picks the executable ready gate on the longest remaining dependency
    /// chain (the serialization tie-break of §4.2).
    fn pick_executable(&self) -> Option<usize> {
        self.ready
            .iter()
            .copied()
            .filter(|&g| self.gate_executable(g))
            .max_by(|&a, &b| {
                self.dag
                    .remaining_path_len(a)
                    .cmp(&self.dag.remaining_path_len(b))
                    .then(b.cmp(&a))
            })
    }

    fn finish_gate(&mut self, idx: usize) {
        self.done[idx] = true;
        self.ready.retain(|&g| g != idx);
        for &s in self.dag.succs(idx) {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                self.ready.push(s);
            }
        }
        self.ready.sort_unstable();
    }

    fn emit_gate(&mut self, idx: usize) {
        let gate = self.circuit.gates()[idx];
        match gate {
            Gate::Single { kind, qubit } => {
                let slot = self.slot_of(qubit);
                let class = if !self.layout.is_encoded(slot.node) {
                    GateClass::X
                } else if slot.slot == SlotIndex::Zero {
                    GateClass::X0
                } else {
                    GateClass::X1
                };
                self.ops.push(PhysicalOp::Single {
                    unit: slot.node,
                    kind,
                    class,
                });
            }
            Gate::Cx { control, target } => {
                let cs = self.slot_of(control);
                let ts = self.slot_of(target);
                let (class, a, b) = cx_class(self.layout, cs, ts);
                let op = if a == b {
                    PhysicalOp::Internal { unit: a, class }
                } else {
                    PhysicalOp::TwoUnit { a, b, class }
                };
                self.ops.push(op);
            }
            Gate::Swap { a: qa, b: qb } => {
                // Exchanging two logical qubits' states is equivalent to
                // exchanging their labels: zero physical cost, any distance.
                let sa = self.slot_of(qa);
                let sb = self.slot_of(qb);
                self.layout.swap_occupants(sa, sb);
            }
        }
    }

    /// Front gates: ready two-qubit gates with non-adjacent operands.
    fn front(&self) -> Vec<(Slot, Slot)> {
        self.ready
            .iter()
            .filter_map(|&g| self.circuit.gates()[g].qubit_pair())
            .map(|(a, b)| (self.slot_of(a), self.slot_of(b)))
            .filter(|&(sa, sb)| !self.expanded.slots_adjacent(sa, sb))
            .collect()
    }

    /// Upcoming two-qubit gates beyond the front (by gate index order).
    fn lookahead(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for idx in 0..self.circuit.len() {
            if self.done[idx] || self.ready.contains(&idx) {
                continue;
            }
            if let Some(pair) = self.circuit.gates()[idx].qubit_pair() {
                out.push(pair);
                if out.len() >= self.config.lookahead {
                    break;
                }
            }
        }
        out
    }

    /// A slot is usable as a move endpoint when it is slot 0, or slot 1 of
    /// an encoded unit.
    fn slot_usable(&self, s: Slot) -> bool {
        s.slot == SlotIndex::Zero || self.layout.is_encoded(s.node)
    }

    fn candidate_moves(&self, front: &[(Slot, Slot)]) -> Vec<(Slot, Slot)> {
        let mut moves = Vec::new();
        let mut push = |s: Slot, t: Slot| {
            let mv = if s.index() <= t.index() {
                (s, t)
            } else {
                (t, s)
            };
            if !moves.contains(&mv) {
                moves.push(mv);
            }
        };
        for &(sa, sb) in front {
            for s in [sa, sb] {
                for t in self.expanded.neighbors(s) {
                    if !self.slot_usable(t) {
                        continue;
                    }
                    push(s, t);
                }
            }
        }
        moves
    }

    /// Scores a move: change in total front + decayed lookahead distance,
    /// plus the encoded-disturbance penalty and an anti-oscillation term.
    fn score_move(
        &mut self,
        mv: (Slot, Slot),
        front: &[(Slot, Slot)],
        lookahead: &[(usize, usize)],
    ) -> f64 {
        let (s, t) = mv;
        let relocate = |x: Slot| {
            if x == s {
                t
            } else if x == t {
                s
            } else {
                x
            }
        };
        let mut delta = 0.0;
        for &(a, b) in front {
            let before = self.oracle.distance(a, b);
            let after = self.oracle.distance(relocate(a), relocate(b));
            delta += after - before;
        }
        let mut decay = self.config.lookahead_decay;
        for &(qa, qb) in lookahead {
            let a = self.slot_of(qa);
            let b = self.slot_of(qb);
            let before = self.oracle.distance(a, b);
            let after = self.oracle.distance(relocate(a), relocate(b));
            delta += decay * (after - before);
            decay *= self.config.lookahead_decay;
        }
        // Penalty for moving occupants of encoded ququarts that are not
        // front operands ("avoid swapping through ququarts").
        let front_slots: Vec<Slot> = front.iter().flat_map(|&(a, b)| [a, b]).collect();
        for x in [s, t] {
            if self.layout.is_encoded(x.node) && !front_slots.contains(&x) {
                delta += self.config.ququart_route_penalty;
            }
        }
        // Strongly discourage undoing the previous move.
        if let Some((ls, lt)) = self.last_move {
            if (ls, lt) == (s, t) || (lt, ls) == (s, t) {
                delta += 1.0e6;
            }
        }
        delta
    }

    fn best_move(&mut self) -> Option<(Slot, Slot)> {
        let front = self.front();
        if front.is_empty() {
            return None;
        }
        let lookahead = self.lookahead();
        let moves = self.candidate_moves(&front);
        let mut best: Option<((Slot, Slot), f64)> = None;
        for mv in moves {
            let score = self.score_move(mv, &front, &lookahead);
            if !score.is_finite() {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bmv, bscore)) => {
                    score < *bscore - 1e-12
                        || ((score - *bscore).abs() <= 1e-12
                            && (mv.0.index(), mv.1.index()) < (bmv.0.index(), bmv.1.index()))
                }
            };
            if better {
                best = Some((mv, score));
            }
        }
        best.map(|(mv, _)| mv)
    }

    fn apply_move(&mut self, (s, t): (Slot, Slot)) {
        let (class, a, b) = swap_class(self.layout, s, t);
        let op = if a == b {
            PhysicalOp::Internal { unit: a, class }
        } else {
            PhysicalOp::TwoUnit { a, b, class }
        };
        self.layout.apply_op(&op);
        self.ops.push(op);
        self.last_move = Some((s, t));
    }

    /// Deterministic fallback: walk one operand of `gate` along the
    /// cheapest path until the gate's operands are adjacent.
    fn force_route(&mut self, gate: usize) {
        let (qa, qb) = self.circuit.gates()[gate]
            .qubit_pair()
            .expect("force_route only for two-qubit gates");
        let mut guard = 0;
        while !self
            .expanded
            .slots_adjacent(self.slot_of(qa), self.slot_of(qb))
        {
            let sa = self.slot_of(qa);
            let sb = self.slot_of(qb);
            let path = self
                .oracle
                .path(sa, sb)
                .unwrap_or_else(|| panic!("no path between {sa} and {sb}"));
            debug_assert!(path.len() >= 3, "non-adjacent slots have a mid hop");
            let next = path[1];
            self.apply_move((sa, next));
            guard += 1;
            assert!(
                guard <= self.expanded.n_slots() * 2,
                "force_route failed to converge"
            );
        }
        self.last_move = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{map_circuit, MappingOptions};
    use qompress_arch::Topology;

    fn route_circuit(
        circuit: &Circuit,
        topo: &Topology,
        options: &MappingOptions,
    ) -> (Vec<PhysicalOp>, Layout) {
        let config = CompilerConfig::paper();
        let dag = CircuitDag::build(circuit);
        let expanded = ExpandedGraph::new(topo.clone());
        let mut layout = map_circuit(circuit, topo, &config, options);
        let ops = route(circuit, &dag, &mut layout, &expanded, &config);
        (ops, layout)
    }

    fn count_2q_logical(ops: &[PhysicalOp]) -> usize {
        ops.iter().filter(|op| op.class().is_cx()).count()
    }

    #[test]
    fn adjacent_gates_emit_without_swaps() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let topo = Topology::line(2);
        let (ops, _) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[1].class(), GateClass::Cx2);
    }

    #[test]
    fn distant_gates_insert_swaps() {
        // K4 on a line cannot be embedded without communication.
        let mut c = Circuit::new(4);
        for a in 0..4 {
            for b in (a + 1)..4 {
                c.push(Gate::cx(a, b));
            }
        }
        let topo = Topology::line(4);
        let (ops, layout) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        let swaps = ops.iter().filter(|o| o.class().is_swap()).count();
        assert!(swaps >= 1, "expected inserted swaps, ops: {ops:?}");
        assert_eq!(count_2q_logical(&ops), 6);
        layout.check_invariants().unwrap();
    }

    #[test]
    fn internal_cx_for_encoded_pairs() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 0));
        let topo = Topology::line(2);
        let opts = MappingOptions::with_pairs(vec![(0, 1)]);
        let (ops, _) = route_circuit(&c, &topo, &opts);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].class(), GateClass::Cx0);
        assert_eq!(ops[1].class(), GateClass::Cx1);
    }

    #[test]
    fn single_qubit_classes_follow_encoding() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        c.push(Gate::h(2));
        let topo = Topology::line(3);
        let opts = MappingOptions::with_pairs(vec![(0, 1)]);
        let (ops, layout) = route_circuit(&c, &topo, &opts);
        let mut classes: Vec<GateClass> = ops.iter().map(|o| o.class()).collect();
        classes.sort();
        assert!(classes.contains(&GateClass::X0));
        assert!(classes.contains(&GateClass::X1));
        assert!(classes.contains(&GateClass::X));
        assert_eq!(layout.active_units(), 2);
    }

    #[test]
    fn logical_swap_is_a_free_relabel() {
        let mut c = Circuit::new(2);
        c.push(Gate::swap(0, 1));
        let topo = Topology::line(2);
        let before = {
            let config = CompilerConfig::paper();
            crate::mapping::map_circuit(&c, &topo, &config, &MappingOptions::qubit_only())
                .placements()
        };
        let (ops, layout) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        assert!(ops.is_empty(), "logical SWAP must emit no pulses");
        // The two qubits exchanged positions relative to the mapping.
        let after = layout.placements();
        assert_eq!(after[0], before[1]);
        assert_eq!(after[1], before[0]);
    }

    #[test]
    fn distant_logical_swap_needs_no_routing() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 1));
        c.push(Gate::swap(0, 3));
        c.push(Gate::cx(3, 1));
        let topo = Topology::line(4);
        let (ops, _) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        // The seed version of this assertion ended in `|| true`, making it
        // vacuous. The intended property (paper §4.2: logical SWAPs are
        // free relabels that emit no pulses): after the relabel both CX
        // gates act on adjacent units, so no SWAP-family op of any class
        // may appear — only the two CXs do.
        assert!(
            ops.iter().all(|o| !o.class().is_swap()),
            "free logical SWAP must not generate physical SWAP traffic: {ops:?}"
        );
        assert_eq!(ops.iter().filter(|o| o.class().is_cx()).count(), 2);
    }

    #[test]
    fn all_two_unit_ops_on_coupled_units() {
        let c = {
            let mut c = Circuit::new(6);
            for i in 0..5 {
                c.push(Gate::cx(i, i + 1));
            }
            c.push(Gate::cx(0, 5));
            c.push(Gate::cx(2, 5));
            c
        };
        let topo = Topology::grid(6);
        let (ops, _) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        for op in &ops {
            if let (a, Some(b)) = op.units() {
                assert!(topo.has_edge(a, b), "op {op} spans uncoupled units");
            }
        }
    }

    #[test]
    fn mixed_radix_routing_produces_partial_gates() {
        // Pair (0,1) encoded; qubit 2 interacts with 0 -> partial CX needed.
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 2));
        c.push(Gate::cx(2, 1));
        let topo = Topology::line(3);
        let opts = MappingOptions::with_pairs(vec![(0, 1)]);
        let (ops, _) = route_circuit(&c, &topo, &opts);
        let has_partial = ops.iter().any(|o| {
            matches!(
                o.class(),
                GateClass::CxE0Bare
                    | GateClass::CxE1Bare
                    | GateClass::CxBareE0
                    | GateClass::CxBareE1
            )
        });
        assert!(has_partial, "expected a partial CX, got {ops:?}");
    }

    #[test]
    fn routing_terminates_on_ring() {
        // Ring topology with long-range interactions exercises the guard.
        let mut c = Circuit::new(8);
        for i in 0..8 {
            c.push(Gate::cx(i, (i + 4) % 8));
        }
        let topo = Topology::ring(8);
        let (ops, _) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        assert_eq!(count_2q_logical(&ops), 8);
    }

    #[test]
    fn dependency_order_is_preserved() {
        // cx(0,1) then x(1) then cx(1,2): ops referencing qubit 1 must stay
        // ordered.
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 1));
        c.push(Gate::x(1));
        c.push(Gate::cx(1, 2));
        let topo = Topology::line(3);
        let (ops, _) = route_circuit(&c, &topo, &MappingOptions::qubit_only());
        let cx_positions: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.class().is_cx())
            .map(|(i, _)| i)
            .collect();
        let x_pos = ops
            .iter()
            .position(|o| matches!(o, PhysicalOp::Single { .. }))
            .unwrap();
        assert!(cx_positions[0] < x_pos);
        assert!(x_pos < cx_positions[1]);
    }
}
