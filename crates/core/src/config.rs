//! Compiler configuration.

use qompress_arch::Fingerprinter;
use qompress_pulse::GateLibrary;

/// Tunable parameters of the Qompress pipeline.
///
/// Defaults reproduce the paper's evaluation setup (§6.1.1): the Table 1
/// gate library, a 163.5 µs qubit T1, and the worst-case `T1/(d−1)` ququart
/// coherence ratio of 3.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerConfig {
    /// Gate durations and fidelities.
    pub library: GateLibrary,
    /// Bare-qubit T1 time in microseconds (paper: 163.5 µs, IBM-like).
    pub t1_qubit_us: f64,
    /// Ratio `T1_qubit / T1_ququart` (paper worst case: 3.0 for d = 4).
    pub t1_ratio: f64,
    /// Routing lookahead window (number of upcoming two-qubit gates
    /// considered beyond the front layer).
    pub lookahead: usize,
    /// Multiplicative weight of lookahead terms relative to front terms.
    pub lookahead_decay: f64,
    /// Additive score penalty for swaps that move occupants of encoded
    /// ququarts not involved in the front gates ("avoid swapping through
    /// ququarts", §4.2).
    pub ququart_route_penalty: f64,
    /// Deterministic seed for tie-breaking.
    pub seed: u64,
    /// Safety bound on router iterations per two-qubit gate before the
    /// fallback shortest-path routing engages.
    pub max_router_steps_per_gate: usize,
    /// Largest device (in physical units) for which the
    /// [`crate::DistanceOracle`] stays in exact mode (lazy full Dijkstra
    /// rows, byte-identity pinned). Bigger devices switch to landmark
    /// mode: O(K·V) memory, triangle-inequality estimates for lookahead
    /// scoring, exact rows only for front-layer precision.
    pub oracle_exact_threshold: usize,
    /// Number of landmarks K in landmark mode. `0` picks automatically
    /// (`ceil(sqrt(slots))`, clamped to `8..=64`).
    pub oracle_landmarks: usize,
}

impl CompilerConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        CompilerConfig {
            library: GateLibrary::paper(),
            t1_qubit_us: 163.5,
            t1_ratio: 3.0,
            lookahead: 8,
            lookahead_decay: 0.5,
            // Comparable to one hop's −log-success cost (~0.01-0.05), so it
            // discourages but never forbids moving through ququarts.
            ququart_route_penalty: 0.02,
            seed: 2023,
            max_router_steps_per_gate: 24,
            // All the paper's devices (≤ 65 units) stay exact; landmark
            // mode is for the utility-scale (1000-unit) axis.
            oracle_exact_threshold: 256,
            oracle_landmarks: 0,
        }
    }

    /// Bare-qubit T1 in nanoseconds.
    pub fn t1_qubit_ns(&self) -> f64 {
        self.t1_qubit_us * 1000.0
    }

    /// Ququart T1 in nanoseconds.
    pub fn t1_ququart_ns(&self) -> f64 {
        self.t1_qubit_ns() / self.t1_ratio
    }

    /// Returns a copy with a different gate library.
    pub fn with_library(&self, library: GateLibrary) -> Self {
        CompilerConfig {
            library,
            ..self.clone()
        }
    }

    /// Returns a copy with a different T1 ratio (Figure 12 sweeps).
    pub fn with_t1_ratio(&self, t1_ratio: f64) -> Self {
        CompilerConfig {
            t1_ratio,
            ..self.clone()
        }
    }

    /// A stable 64-bit content fingerprint over **every** field that can
    /// influence a compilation: the full gate library (class names,
    /// durations, fidelities in Table 1 order) and all numeric knobs.
    /// Session caches key results on this value, so equal configurations
    /// share cache entries across [`crate::Compiler`] calls and different
    /// configurations can never collide into each other's results (up to
    /// 64-bit hash collisions).
    pub fn fingerprint(&self) -> u64 {
        // Exhaustive destructuring (no `..`): adding a field to
        // `CompilerConfig` fails to compile here until the fingerprint
        // covers it, so the cache-key contract can never silently rot.
        let CompilerConfig {
            library,
            t1_qubit_us,
            t1_ratio,
            lookahead,
            lookahead_decay,
            ququart_route_penalty,
            seed,
            max_router_steps_per_gate,
            oracle_exact_threshold,
            oracle_landmarks,
        } = self;
        let mut h = Fingerprinter::new();
        for (class, spec) in library.iter() {
            h.write_str(&class.to_string())
                .write_f64(spec.duration_ns)
                .write_f64(spec.fidelity);
        }
        h.write_f64(*t1_qubit_us)
            .write_f64(*t1_ratio)
            .write_usize(*lookahead)
            .write_f64(*lookahead_decay)
            .write_f64(*ququart_route_penalty)
            .write_u64(*seed)
            .write_usize(*max_router_steps_per_gate)
            .write_usize(*oracle_exact_threshold)
            .write_usize(*oracle_landmarks);
        h.finish()
    }
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_t1_values() {
        let c = CompilerConfig::paper();
        assert!((c.t1_qubit_ns() - 163_500.0).abs() < 1e-9);
        assert!((c.t1_ququart_ns() - 54_500.0).abs() < 1e-9);
    }

    #[test]
    fn with_t1_ratio_changes_only_ratio() {
        let base = CompilerConfig::paper();
        let swept = base.with_t1_ratio(1.5);
        assert_eq!(swept.t1_qubit_us, base.t1_qubit_us);
        assert!((swept.t1_ququart_ns() - 109_000.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(CompilerConfig::default(), CompilerConfig::paper());
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = CompilerConfig::paper();
        assert_eq!(base.fingerprint(), CompilerConfig::paper().fingerprint());

        let ratio = base.with_t1_ratio(1.5);
        assert_ne!(base.fingerprint(), ratio.fingerprint());

        let mut lookahead = base.clone();
        lookahead.lookahead += 1;
        assert_ne!(base.fingerprint(), lookahead.fingerprint());

        let library =
            base.with_library(qompress_pulse::GateLibrary::paper().with_qubit_error_improved(2.0));
        assert_ne!(base.fingerprint(), library.fingerprint());

        let mut threshold = base.clone();
        threshold.oracle_exact_threshold = 1;
        assert_ne!(base.fingerprint(), threshold.fingerprint());

        let mut landmarks = base.clone();
        landmarks.oracle_landmarks = 16;
        assert_ne!(base.fingerprint(), landmarks.fingerprint());
    }
}
