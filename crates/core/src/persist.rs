//! Binary serialization of [`CompilationResult`]s for the persistent
//! cache tier.
//!
//! The on-disk cache splits in two layers. `qompress-store` owns the
//! *container*: content-addressed files, a self-checking envelope (magic,
//! format version, length, FNV-1a integrity fingerprint), atomic writes
//! and byte-capped eviction — it never interprets payloads. This module
//! owns the *payload*: a hand-rolled, versioned, little-endian codec for
//! [`CompilationResult`] (serde is unavailable offline). It lives in
//! `qompress` rather than the store crate because the encoding must
//! exhaustively destructure types with private fields
//! ([`crate::Schedule`]'s op list is crate-internal) — and that split
//! keeps the dependency arrow pointing one way: core depends on the
//! store, never the reverse.
//!
//! ## Invariants
//!
//! * **Exhaustive destructure everywhere**: every struct the codec
//!   touches is taken apart field-by-field with no `..`, so adding a
//!   field to [`CompilationResult`], [`Metrics`], [`CoherenceTrace`] or
//!   `Schedule` fails to compile here until the format (and
//!   [`CODEC_VERSION`]) is updated — a new field can never silently skip
//!   the on-disk format.
//! * **Decoding never panics.** [`decode_result`] is total over arbitrary
//!   byte strings: truncations, bad tags, absurd lengths and version
//!   mismatches all return `None`. Callers treat `None` as a cache miss.
//!   (In the store pipeline the envelope's integrity fingerprint already
//!   rejects corrupt payloads before this layer; the codec is defensive
//!   anyway so it is safe on bytes from anywhere.)
//! * **Strict round trip**: `decode_result(&encode_result(r))` rebuilds
//!   `r` exactly (floats travel by bit pattern; the schedule's derived
//!   duration is recomputed by the same deterministic fold that first
//!   produced it). Trailing bytes after a well-formed payload are an
//!   error, so a decode accepts exactly the canonical encoding.
//!
//! Bump [`CODEC_VERSION`] on any layout change; old entries then decode
//! to `None`, the caller recompiles, and the write-back replaces the
//! entry in the new format (see the `qompress-store` crate docs for the
//! shared-directory upgrade story).

use crate::metrics::Metrics;
use crate::physical::{PhysicalOp, Schedule, ScheduledOp};
use crate::pipeline::CompilationResult;
use crate::scheduling::CoherenceTrace;
use qompress_circuit::SingleQubitKind;
use qompress_pulse::{GateClass, ALL_GATE_CLASSES};
use std::collections::BTreeMap;

/// Version of the payload layout below. Stored as the leading `u32` of
/// every encoded result; a mismatch decodes to `None` (= cache miss).
pub const CODEC_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Little-endian byte sink.
#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    /// Floats travel by bit pattern: exact round trip, NaN-safe.
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Bounds-checked little-endian cursor; every accessor returns `None`
/// past the end instead of panicking.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.remaining() {
            return None;
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }

    fn usize(&mut self) -> Option<usize> {
        self.u64()?.try_into().ok()
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Strict boolean: exactly 0 or 1 (a flipped flag byte is a decode
    /// failure, not a silent `true`).
    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn str(&mut self) -> Option<String> {
        let len = self.seq_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Reads a sequence length and sanity-bounds it: a corrupt length
    /// field cannot request more elements than the remaining bytes could
    /// possibly hold (`min_elem_bytes` per element), so hostile lengths
    /// fail fast instead of driving a huge allocation.
    fn seq_len(&mut self, min_elem_bytes: usize) -> Option<usize> {
        let len = self.usize()?;
        if len.checked_mul(min_elem_bytes.max(1))? > self.remaining() {
            return None;
        }
        Some(len)
    }

    /// `true` once every byte has been consumed — required at the end of
    /// a decode so only the exact canonical encoding is accepted.
    fn finished(&self) -> bool {
        self.remaining() == 0
    }
}

// ---------------------------------------------------------------------
// Enum tags
// ---------------------------------------------------------------------

/// Stable wire tag of a gate class: its index in [`ALL_GATE_CLASSES`].
/// The exhaustive match (no `_` arm) means a new variant fails to compile
/// here until it gets a tag; the codec tests pin the match against the
/// canonical array order.
fn class_tag(class: GateClass) -> u8 {
    match class {
        GateClass::X => 0,
        GateClass::X0 => 1,
        GateClass::X1 => 2,
        GateClass::X01 => 3,
        GateClass::Cx0 => 4,
        GateClass::Cx1 => 5,
        GateClass::SwapIn => 6,
        GateClass::Enc => 7,
        GateClass::Dec => 8,
        GateClass::Cx2 => 9,
        GateClass::Swap2 => 10,
        GateClass::CxE0Bare => 11,
        GateClass::CxE1Bare => 12,
        GateClass::CxBareE0 => 13,
        GateClass::CxBareE1 => 14,
        GateClass::SwapBareE0 => 15,
        GateClass::SwapBareE1 => 16,
        GateClass::Cx00 => 17,
        GateClass::Cx01 => 18,
        GateClass::Cx10 => 19,
        GateClass::Cx11 => 20,
        GateClass::Swap00 => 21,
        GateClass::Swap01 => 22,
        GateClass::Swap11 => 23,
        GateClass::Swap4 => 24,
    }
}

fn class_from_tag(tag: u8) -> Option<GateClass> {
    ALL_GATE_CLASSES.get(tag as usize).copied()
}

/// Encodes a single-qubit kind: tag byte (mirroring the fingerprint tags
/// in `result_cache::hash_gate`), then the angle for rotation kinds.
fn put_kind(w: &mut Writer, kind: SingleQubitKind) {
    match kind {
        SingleQubitKind::X => w.u8(0),
        SingleQubitKind::Y => w.u8(1),
        SingleQubitKind::Z => w.u8(2),
        SingleQubitKind::H => w.u8(3),
        SingleQubitKind::T => w.u8(4),
        SingleQubitKind::Tdg => w.u8(5),
        SingleQubitKind::S => w.u8(6),
        SingleQubitKind::Sdg => w.u8(7),
        SingleQubitKind::Rz(a) => {
            w.u8(8);
            w.f64(a);
        }
        SingleQubitKind::Rx(a) => {
            w.u8(9);
            w.f64(a);
        }
        SingleQubitKind::Ry(a) => {
            w.u8(10);
            w.f64(a);
        }
    }
}

fn get_kind(r: &mut Reader) -> Option<SingleQubitKind> {
    Some(match r.u8()? {
        0 => SingleQubitKind::X,
        1 => SingleQubitKind::Y,
        2 => SingleQubitKind::Z,
        3 => SingleQubitKind::H,
        4 => SingleQubitKind::T,
        5 => SingleQubitKind::Tdg,
        6 => SingleQubitKind::S,
        7 => SingleQubitKind::Sdg,
        8 => SingleQubitKind::Rz(r.f64()?),
        9 => SingleQubitKind::Rx(r.f64()?),
        10 => SingleQubitKind::Ry(r.f64()?),
        _ => return None,
    })
}

fn put_op(w: &mut Writer, op: &PhysicalOp) {
    match *op {
        PhysicalOp::Single { unit, kind, class } => {
            w.u8(0);
            w.usize(unit);
            put_kind(w, kind);
            w.u8(class_tag(class));
        }
        PhysicalOp::Merged { unit, kind0, kind1 } => {
            w.u8(1);
            w.usize(unit);
            put_kind(w, kind0);
            put_kind(w, kind1);
        }
        PhysicalOp::Internal { unit, class } => {
            w.u8(2);
            w.usize(unit);
            w.u8(class_tag(class));
        }
        PhysicalOp::TwoUnit { a, b, class } => {
            w.u8(3);
            w.usize(a);
            w.usize(b);
            w.u8(class_tag(class));
        }
    }
}

fn get_op(r: &mut Reader) -> Option<PhysicalOp> {
    Some(match r.u8()? {
        0 => PhysicalOp::Single {
            unit: r.usize()?,
            kind: get_kind(r)?,
            class: class_from_tag(r.u8()?)?,
        },
        1 => PhysicalOp::Merged {
            unit: r.usize()?,
            kind0: get_kind(r)?,
            kind1: get_kind(r)?,
        },
        2 => PhysicalOp::Internal {
            unit: r.usize()?,
            class: class_from_tag(r.u8()?)?,
        },
        3 => PhysicalOp::TwoUnit {
            a: r.usize()?,
            b: r.usize()?,
            class: class_from_tag(r.u8()?)?,
        },
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// Aggregate layouts
// ---------------------------------------------------------------------

fn put_f64_seq(w: &mut Writer, values: &[f64]) {
    w.usize(values.len());
    for &v in values {
        w.f64(v);
    }
}

fn get_f64_seq(r: &mut Reader) -> Option<Vec<f64>> {
    let len = r.seq_len(8)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.f64()?);
    }
    Some(out)
}

fn put_pair_seq(w: &mut Writer, pairs: &[(usize, usize)]) {
    w.usize(pairs.len());
    for &(a, b) in pairs {
        w.usize(a);
        w.usize(b);
    }
}

fn get_pair_seq(r: &mut Reader) -> Option<Vec<(usize, usize)>> {
    let len = r.seq_len(16)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push((r.usize()?, r.usize()?));
    }
    Some(out)
}

fn put_schedule(w: &mut Writer, schedule: &Schedule) {
    let (ops, n_units) = schedule.codec_parts();
    w.usize(n_units);
    w.usize(ops.len());
    for sop in ops {
        // Exhaustive destructure: a new `ScheduledOp` field must be
        // encoded here before this compiles again.
        let ScheduledOp {
            op,
            start_ns,
            duration_ns,
        } = sop;
        put_op(w, op);
        w.f64(*start_ns);
        w.f64(*duration_ns);
    }
}

fn get_schedule(r: &mut Reader) -> Option<Schedule> {
    let n_units = r.usize()?;
    // Minimum op footprint: 1 tag + 8 operand + 1 kind/class + 16 times.
    let len = r.seq_len(18)?;
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let op = get_op(r)?;
        let start_ns = r.f64()?;
        let duration_ns = r.f64()?;
        ops.push(ScheduledOp {
            op,
            start_ns,
            duration_ns,
        });
    }
    // `Schedule::new` recomputes the derived critical-path duration with
    // the same deterministic fold that produced the original.
    Some(Schedule::new(ops, n_units))
}

fn put_metrics(w: &mut Writer, metrics: &Metrics) {
    // Exhaustive destructure: a new `Metrics` field fails to compile here
    // until the format covers it.
    let Metrics {
        gate_eps,
        coherence_eps,
        total_eps,
        duration_ns,
        gate_counts,
        communication_ops,
        qubit_state_ns,
        ququart_state_ns,
    } = metrics;
    w.f64(*gate_eps);
    w.f64(*coherence_eps);
    w.f64(*total_eps);
    w.f64(*duration_ns);
    w.usize(gate_counts.len());
    for (&class, &count) in gate_counts {
        w.u8(class_tag(class));
        w.usize(count);
    }
    w.usize(*communication_ops);
    w.f64(*qubit_state_ns);
    w.f64(*ququart_state_ns);
}

fn get_metrics(r: &mut Reader) -> Option<Metrics> {
    let gate_eps = r.f64()?;
    let coherence_eps = r.f64()?;
    let total_eps = r.f64()?;
    let duration_ns = r.f64()?;
    let n_counts = r.seq_len(9)?;
    let mut gate_counts = BTreeMap::new();
    for _ in 0..n_counts {
        let class = class_from_tag(r.u8()?)?;
        let count = r.usize()?;
        if gate_counts.insert(class, count).is_some() {
            // Duplicate keys are not canonical (a BTreeMap encodes each
            // key once): reject rather than silently keep one.
            return None;
        }
    }
    Some(Metrics {
        gate_eps,
        coherence_eps,
        total_eps,
        duration_ns,
        gate_counts,
        communication_ops: r.usize()?,
        qubit_state_ns: r.f64()?,
        ququart_state_ns: r.f64()?,
    })
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Serializes a [`CompilationResult`] into the versioned little-endian
/// payload format (wrap it in the `qompress-store` envelope before
/// writing to disk).
pub fn encode_result(result: &CompilationResult) -> Vec<u8> {
    // Exhaustive destructure: a new `CompilationResult` field fails to
    // compile here until the on-disk format covers it.
    let CompilationResult {
        strategy,
        schedule,
        metrics,
        initial_placements,
        final_placements,
        encoded_units,
        pairs,
        logical_gates,
        trace,
    } = result;
    let mut w = Writer::default();
    w.u32(CODEC_VERSION);
    w.str(strategy);
    put_schedule(&mut w, schedule);
    put_metrics(&mut w, metrics);
    put_pair_seq(&mut w, initial_placements);
    put_pair_seq(&mut w, final_placements);
    w.usize(encoded_units.len());
    for &flag in encoded_units {
        w.bool(flag);
    }
    put_pair_seq(&mut w, pairs);
    w.usize(*logical_gates);
    let CoherenceTrace {
        qubit_ns,
        ququart_ns,
    } = trace;
    put_f64_seq(&mut w, qubit_ns);
    put_f64_seq(&mut w, ququart_ns);
    w.buf
}

/// Deserializes a payload produced by [`encode_result`].
///
/// Total over arbitrary bytes: any truncation, trailing garbage, bad tag,
/// hostile length or [`CODEC_VERSION`] mismatch returns `None` (a cache
/// miss) — never a panic.
pub fn decode_result(bytes: &[u8]) -> Option<CompilationResult> {
    let mut r = Reader::new(bytes);
    if r.u32()? != CODEC_VERSION {
        return None;
    }
    let strategy = r.str()?;
    let schedule = get_schedule(&mut r)?;
    let metrics = get_metrics(&mut r)?;
    let initial_placements = get_pair_seq(&mut r)?;
    let final_placements = get_pair_seq(&mut r)?;
    let n_flags = r.seq_len(1)?;
    let mut encoded_units = Vec::with_capacity(n_flags);
    for _ in 0..n_flags {
        encoded_units.push(r.bool()?);
    }
    let pairs = get_pair_seq(&mut r)?;
    let logical_gates = r.usize()?;
    let qubit_ns = get_f64_seq(&mut r)?;
    let ququart_ns = get_f64_seq(&mut r)?;
    if !r.finished() {
        return None;
    }
    Some(CompilationResult {
        strategy,
        schedule,
        metrics,
        initial_placements,
        final_placements,
        encoded_units,
        pairs,
        logical_gates,
        trace: CoherenceTrace {
            qubit_ns,
            ququart_ns,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompilerConfig;
    use crate::mapping::MappingOptions;
    use crate::pipeline::compile_with_options;
    use qompress_arch::Topology;
    use qompress_circuit::{Circuit, Gate};

    fn sample_result() -> CompilationResult {
        let mut c = Circuit::new(4);
        c.push(Gate::h(0));
        c.push(Gate::rz(0.75, 1));
        for i in 0..3 {
            c.push(Gate::cx(i, i + 1));
        }
        compile_with_options(
            &c,
            &Topology::grid(4),
            &CompilerConfig::paper(),
            &MappingOptions::eqm(),
        )
    }

    #[test]
    fn class_tags_match_canonical_order() {
        for (i, &class) in ALL_GATE_CLASSES.iter().enumerate() {
            assert_eq!(class_tag(class) as usize, i, "{class}");
            assert_eq!(class_from_tag(i as u8), Some(class));
        }
        assert_eq!(class_from_tag(ALL_GATE_CLASSES.len() as u8), None);
    }

    #[test]
    fn round_trip_is_exact() {
        let result = sample_result();
        let encoded = encode_result(&result);
        let decoded = decode_result(&encoded).expect("round trip");
        // Debug-rendering equality covers every field bit-exactly (floats
        // print from their full bit patterns via Debug).
        assert_eq!(format!("{result:?}"), format!("{decoded:?}"));
        // And re-encoding the decoded value is byte-identical: the
        // encoding is canonical.
        assert_eq!(encode_result(&decoded), encoded);
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let mut encoded = encode_result(&sample_result());
        let bumped = (CODEC_VERSION + 1).to_le_bytes();
        encoded[..4].copy_from_slice(&bumped);
        assert_eq!(decode_result(&encoded).map(|r| r.strategy), None);
    }

    #[test]
    fn truncations_never_panic() {
        let encoded = encode_result(&sample_result());
        for len in 0..encoded.len() {
            assert!(
                decode_result(&encoded[..len]).is_none(),
                "strict prefix of length {len} decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut encoded = encode_result(&sample_result());
        encoded.push(0);
        assert!(decode_result(&encoded).is_none());
    }

    #[test]
    fn hostile_lengths_fail_fast() {
        // A version header followed by a huge declared string length must
        // not drive a giant allocation or a panic.
        let mut bytes = CODEC_VERSION.to_le_bytes().to_vec();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_result(&bytes).is_none());
    }

    #[test]
    fn empty_result_round_trips() {
        let empty = compile_with_options(
            &Circuit::new(2),
            &Topology::line(2),
            &CompilerConfig::paper(),
            &MappingOptions::qubit_only(),
        );
        let decoded = decode_result(&encode_result(&empty)).expect("round trip");
        assert_eq!(format!("{empty:?}"), format!("{decoded:?}"));
    }
}
