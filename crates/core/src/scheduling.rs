//! List scheduling, single-qubit merge pass and coherence-time tracking.
//!
//! Physical units are exclusive resources: any operation touching a unit
//! blocks both of its encoded qubits (the serialization cost of
//! compression, §4.2). Two single-qubit gates landing on the two slots of
//! one ququart merge into a single `X0,1`-class pulse, "as executing one
//! gate acting on a full ququart is less error prone than executing two
//! single-qubit gates."

use crate::layout::Layout;
use crate::physical::{PhysicalOp, Schedule, ScheduledOp};
use qompress_arch::Slot;
use qompress_pulse::{GateClass, GateLibrary};

/// Merges consecutive single-qubit gates on opposite slots of the same
/// ququart into one `X0,1` pulse. Gates merge only when no intervening
/// operation touches the unit.
pub fn merge_singles(ops: Vec<PhysicalOp>) -> Vec<PhysicalOp> {
    let mut out: Vec<PhysicalOp> = Vec::with_capacity(ops.len());
    let mut consumed = vec![false; ops.len()];
    for i in 0..ops.len() {
        if consumed[i] {
            continue;
        }
        let candidate = match ops[i] {
            PhysicalOp::Single { unit, kind, class }
                if class == GateClass::X0 || class == GateClass::X1 =>
            {
                Some((unit, kind, class))
            }
            _ => None,
        };
        if let Some((unit, kind, class)) = candidate {
            // Find the next op touching this unit.
            let mut partner = None;
            for (j, other) in ops.iter().enumerate().skip(i + 1) {
                if consumed[j] {
                    continue;
                }
                let (u, v) = other.units();
                if u == unit || v == Some(unit) {
                    if let PhysicalOp::Single {
                        unit: u2,
                        kind: kind2,
                        class: class2,
                    } = *other
                    {
                        if u2 == unit
                            && ((class == GateClass::X0 && class2 == GateClass::X1)
                                || (class == GateClass::X1 && class2 == GateClass::X0))
                        {
                            partner = Some((j, kind2));
                        }
                    }
                    break;
                }
            }
            if let Some((j, kind2)) = partner {
                let (kind0, kind1) = if class == GateClass::X0 {
                    (kind, kind2)
                } else {
                    (kind2, kind)
                };
                consumed[j] = true;
                out.push(PhysicalOp::Merged { unit, kind0, kind1 });
                continue;
            }
        }
        out.push(ops[i]);
    }
    out
}

/// Assigns start times: each op begins when all of its units are free.
pub fn schedule_ops(ops: Vec<PhysicalOp>, n_units: usize, library: &GateLibrary) -> Schedule {
    let mut avail = vec![0.0f64; n_units];
    let mut scheduled = Vec::with_capacity(ops.len());
    for op in ops {
        let duration_ns = library.duration(op.class());
        let (a, b) = op.units();
        let mut start = avail[a];
        if let Some(b) = b {
            start = start.max(avail[b]);
        }
        avail[a] = start + duration_ns;
        if let Some(b) = b {
            avail[b] = start + duration_ns;
        }
        scheduled.push(ScheduledOp {
            op,
            start_ns: start,
            duration_ns,
        });
    }
    Schedule::new(scheduled, n_units)
}

/// Per-qubit time split between bare-qubit and ququart residence.
#[derive(Debug, Clone, PartialEq)]
pub struct CoherenceTrace {
    /// Time (ns) each logical qubit spent hosted by a bare unit.
    pub qubit_ns: Vec<f64>,
    /// Time (ns) each logical qubit spent hosted by an encoded ququart.
    pub ququart_ns: Vec<f64>,
}

impl CoherenceTrace {
    /// Total bare-qubit nanoseconds across all qubits.
    pub fn total_qubit_ns(&self) -> f64 {
        self.qubit_ns.iter().sum()
    }

    /// Total ququart nanoseconds across all qubits.
    pub fn total_ququart_ns(&self) -> f64 {
        self.ququart_ns.iter().sum()
    }
}

/// Replays the schedule to split each qubit's lifetime between bare and
/// encoded residency (paper §6.1.1: every qubit is assumed alive for the
/// whole circuit, from `t = 0` to the final gate).
///
/// `initial` maps each logical qubit to its starting slot; `encoded` are
/// the per-unit flags (fixed for the whole circuit).
pub fn trace_coherence(
    schedule: &Schedule,
    initial: &[(usize, usize)],
    encoded: &[bool],
) -> CoherenceTrace {
    let n = initial.len();
    let total = schedule.total_duration_ns();
    // Track slot occupancy over time.
    let mut layout = Layout::new(n, encoded.len());
    for (u, &e) in encoded.iter().enumerate() {
        if e {
            layout.set_encoded(u);
        }
    }
    for (q, &(unit, slot)) in initial.iter().enumerate() {
        let s = if slot == 0 {
            Slot::zero(unit)
        } else {
            Slot::one(unit)
        };
        layout.place(q, s);
    }
    let mut last_change = vec![0.0f64; n];
    let mut qubit_ns = vec![0.0f64; n];
    let mut ququart_ns = vec![0.0f64; n];
    let mut is_enc: Vec<bool> = (0..n)
        .map(|q| encoded[layout.slot_of(q).unwrap().node])
        .collect();

    let credit = |q: usize,
                  until: f64,
                  last_change: &mut [f64],
                  qubit_ns: &mut [f64],
                  ququart_ns: &mut [f64],
                  enc: bool| {
        let dt = until - last_change[q];
        if enc {
            ququart_ns[q] += dt;
        } else {
            qubit_ns[q] += dt;
        }
        last_change[q] = until;
    };

    for sop in schedule.ops() {
        let before = layout.clone();
        layout.apply_op(&sop.op);
        // Any qubit whose hosting radix changed gets credited up to the
        // op's end time.
        for q in 0..n {
            let enc_now = encoded[layout.slot_of(q).unwrap().node];
            if enc_now != is_enc[q] {
                let _ = &before;
                credit(
                    q,
                    sop.end_ns(),
                    &mut last_change,
                    &mut qubit_ns,
                    &mut ququart_ns,
                    is_enc[q],
                );
                is_enc[q] = enc_now;
            }
        }
    }
    for q in 0..n {
        credit(
            q,
            total,
            &mut last_change,
            &mut qubit_ns,
            &mut ququart_ns,
            is_enc[q],
        );
    }
    CoherenceTrace {
        qubit_ns,
        ququart_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::SingleQubitKind;

    #[test]
    fn merge_combines_opposite_slots() {
        let ops = vec![
            PhysicalOp::Single {
                unit: 0,
                kind: SingleQubitKind::H,
                class: GateClass::X0,
            },
            PhysicalOp::Single {
                unit: 0,
                kind: SingleQubitKind::X,
                class: GateClass::X1,
            },
        ];
        let merged = merge_singles(ops);
        assert_eq!(merged.len(), 1);
        assert_eq!(
            merged[0],
            PhysicalOp::Merged {
                unit: 0,
                kind0: SingleQubitKind::H,
                kind1: SingleQubitKind::X
            }
        );
    }

    #[test]
    fn merge_respects_intervening_ops() {
        let ops = vec![
            PhysicalOp::Single {
                unit: 0,
                kind: SingleQubitKind::H,
                class: GateClass::X0,
            },
            PhysicalOp::Internal {
                unit: 0,
                class: GateClass::Cx0,
            },
            PhysicalOp::Single {
                unit: 0,
                kind: SingleQubitKind::X,
                class: GateClass::X1,
            },
        ];
        let merged = merge_singles(ops);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn merge_skips_same_slot_gates() {
        let ops = vec![
            PhysicalOp::Single {
                unit: 0,
                kind: SingleQubitKind::H,
                class: GateClass::X0,
            },
            PhysicalOp::Single {
                unit: 0,
                kind: SingleQubitKind::X,
                class: GateClass::X0,
            },
        ];
        assert_eq!(merge_singles(ops).len(), 2);
    }

    #[test]
    fn merge_ignores_other_units() {
        let ops = vec![
            PhysicalOp::Single {
                unit: 0,
                kind: SingleQubitKind::H,
                class: GateClass::X0,
            },
            PhysicalOp::Single {
                unit: 1,
                kind: SingleQubitKind::X,
                class: GateClass::X1,
            },
        ];
        // Different units: op on unit 1 does not touch unit 0, but is also
        // not a merge partner; both survive.
        assert_eq!(merge_singles(ops).len(), 2);
    }

    #[test]
    fn schedule_serializes_unit_conflicts() {
        let lib = GateLibrary::paper();
        let ops = vec![
            PhysicalOp::TwoUnit {
                a: 0,
                b: 1,
                class: GateClass::Cx2,
            },
            PhysicalOp::TwoUnit {
                a: 1,
                b: 2,
                class: GateClass::Cx2,
            },
            PhysicalOp::Single {
                unit: 3,
                kind: SingleQubitKind::X,
                class: GateClass::X,
            },
        ];
        let s = schedule_ops(ops, 4, &lib);
        let ops = s.ops();
        assert_eq!(ops[0].start_ns, 0.0);
        assert_eq!(ops[1].start_ns, 251.0); // waits for unit 1
        assert_eq!(ops[2].start_ns, 0.0); // parallel on unit 3
        assert!((s.total_duration_ns() - 502.0).abs() < 1e-12);
    }

    #[test]
    fn coherence_trace_static_layout() {
        let lib = GateLibrary::paper();
        let ops = vec![PhysicalOp::TwoUnit {
            a: 0,
            b: 1,
            class: GateClass::Cx2,
        }];
        let s = schedule_ops(ops, 3, &lib);
        // Qubit 0 bare on unit 0; qubit 1 bare on unit 1.
        let trace = trace_coherence(&s, &[(0, 0), (1, 0)], &[false, false, false]);
        assert!((trace.qubit_ns[0] - 251.0).abs() < 1e-9);
        assert!((trace.ququart_ns[0]).abs() < 1e-12);
        assert!((trace.total_qubit_ns() - 502.0).abs() < 1e-9);
    }

    #[test]
    fn coherence_trace_encoded_residency() {
        let lib = GateLibrary::paper();
        let ops = vec![PhysicalOp::Internal {
            unit: 0,
            class: GateClass::Cx0,
        }];
        let s = schedule_ops(ops, 2, &lib);
        let trace = trace_coherence(&s, &[(0, 0), (0, 1)], &[true, false]);
        assert!((trace.ququart_ns[0] - 83.0).abs() < 1e-9);
        assert!((trace.ququart_ns[1] - 83.0).abs() < 1e-9);
        assert_eq!(trace.total_qubit_ns(), 0.0);
    }

    #[test]
    fn coherence_trace_radix_transition() {
        // Qubit starts bare on unit 1, swaps into encoded unit 0's slot 0.
        let lib = GateLibrary::paper();
        let ops = vec![
            PhysicalOp::TwoUnit {
                a: 0,
                b: 1,
                class: GateClass::SwapBareE0,
            },
            PhysicalOp::Internal {
                unit: 0,
                class: GateClass::SwapIn,
            },
        ];
        let s = schedule_ops(ops, 2, &lib);
        let trace = trace_coherence(&s, &[(1, 0)], &[true, false]);
        let swap_t = lib.duration(GateClass::SwapBareE0);
        let total = swap_t + lib.duration(GateClass::SwapIn);
        // Bare until the swap completes, encoded afterwards.
        assert!((trace.qubit_ns[0] - swap_t).abs() < 1e-9);
        assert!((trace.ququart_ns[0] - (total - swap_t)).abs() < 1e-9);
    }
}
