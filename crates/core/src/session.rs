//! The `Compiler` session: the one blessed entry path into the pipeline.
//!
//! A [`Compiler`] owns everything that is worth keeping *between*
//! compilations:
//!
//! * a **topology registry** keyed by
//!   [`Topology::structural_fingerprint`], deduplicating
//!   [`TopologyCache`] construction (expanded slot graph, distance
//!   oracles) across every call on the session — not just within one
//!   batch;
//! * a **content-addressed LRU result cache** keyed by `(circuit hash,
//!   job kind, topology fingerprint, config fingerprint)` with exact
//!   [`CacheStats`]; a hit is byte-identical to a fresh compile because
//!   the pipeline is deterministic in exactly those inputs (pinned by the
//!   session test-suite, and checkable per-hit via
//!   [`CompilerBuilder::verify_hits`]);
//! * a **persistent worker pool** behind an MPMC job queue — the job
//!   service. [`Compiler::submit`] enqueues one job and returns a
//!   [`crate::JobHandle`] (poll/wait/cancel, exact
//!   [`crate::ServiceMetrics`]); [`Compiler::compile_batch`] is a thin
//!   submit-all-then-wait wrapper over the same pool, so streaming and
//!   batch callers share one queue, one topology registry and one result
//!   cache. Workers spawn on demand — the pool grows with outstanding
//!   jobs up to the configured bound — and are joined when the session
//!   drops (still-queued jobs are cancelled, waiters woken).
//!
//! The paper's evaluation (§6) and its precursor communication/compression
//! trade-off study recompile near-identical `(circuit, strategy,
//! topology)` jobs across large sweeps; a session turns every repeat into
//! a cache hit.
//!
//! ```
//! use qompress::{Compiler, Strategy};
//! use qompress_arch::Topology;
//! use qompress_circuit::{Circuit, Gate};
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::h(0));
//! c.push(Gate::cx(0, 1));
//!
//! let session = Compiler::builder().build();
//! let topo = Topology::grid(3);
//! let first = session.compile(&c, &topo, Strategy::Eqm);
//! let again = session.compile(&c, &topo, Strategy::Eqm); // cache hit
//! assert_eq!(first.metrics, again.metrics);
//! assert_eq!(session.cache_stats().hits, 1);
//! ```

use crate::batch::{
    BatchJob, BatchJobError, BatchJobFailure, BatchJobResult, BatchResult, TryBatchResult,
};
use crate::breaker::{BreakerState, CircuitBreaker};
use crate::config::CompilerConfig;
use crate::jobs::{CompletionQueue, JobHandle, JobOutcome};
use crate::mapping::MappingOptions;
use crate::parametric::{SkeletonArtifact, SweepResult};
use crate::persist;
use crate::pipeline::{compile_with_options_cached, CompilationResult, TopologyCache};
use crate::result_cache::{CacheKey, CacheStats, ResultCache, TieredCacheStats};
use crate::service::{JobService, ServiceMetrics};
use crate::strategies::{
    compile_cached, run_exhaustive, ExhaustiveOptions, ExhaustiveStep, Strategy,
};
use qompress_arch::Topology;
use qompress_circuit::{Circuit, ParametricCircuit};
use qompress_store::{DiskStore, FaultPlan, LoadOutcome};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default bound on memoized compilation results per session.
const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Bound on registered topology structures per session. A `TopologyCache`
/// holds the expanded slot graph plus lazily-filled Dijkstra state, so a
/// long-lived session serving arbitrarily many distinct device structures
/// must not grow without limit; beyond the bound the oldest registration
/// is dropped (outstanding `Arc`s stay valid, the structure just rebuilds
/// on its next use). Real sweeps use a handful of devices and never hit
/// this.
const MAX_REGISTERED_TOPOLOGIES: usize = 64;

/// The session's topology registry: fingerprint-keyed caches plus
/// insertion order for deterministic oldest-first eviction at the bound.
#[derive(Debug, Default)]
struct TopologyRegistry {
    map: HashMap<u64, Arc<TopologyCache>>,
    order: std::collections::VecDeque<u64>,
}

/// Configures and builds a [`Compiler`] session.
///
/// Obtained from [`Compiler::builder`]; every knob has a production
/// default, so `Compiler::builder().build()` is a fully working session.
#[derive(Debug, Clone)]
pub struct CompilerBuilder {
    config: CompilerConfig,
    workers: usize,
    cache_capacity: usize,
    caching: bool,
    verify_hits: bool,
    persist_dir: Option<PathBuf>,
    persist_max_bytes: u64,
    persist_strict: bool,
    persist_faults: FaultPlan,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
}

impl CompilerBuilder {
    /// Sets the compiler configuration (default:
    /// [`CompilerConfig::paper`]).
    pub fn config(mut self, config: CompilerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the worker-thread count for the session's job service
    /// ([`Compiler::submit`] / [`Compiler::compile_batch`]). `0` (the
    /// default) autodetects the machine's available parallelism; `1`
    /// forces serial execution.
    ///
    /// Autodetection is clamped to **at least one worker** in every case:
    /// [`std::thread::available_parallelism`] can fail (it returns an
    /// `Err` on platforms or sandboxes where the CPU count is unknowable,
    /// and cgroup/affinity masks can legitimately report a single CPU —
    /// the common CI-container case), and a session must still be able to
    /// make progress then.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the result-cache capacity in entries (default: 256). `0`
    /// disables caching entirely, like `caching(false)`.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Enables or disables the result cache (default: enabled).
    pub fn caching(mut self, enabled: bool) -> Self {
        self.caching = enabled;
        self
    }

    /// When enabled, every cache hit is re-compiled from scratch and the
    /// two results are asserted byte-identical (`Debug`-rendering
    /// comparison) before the hit is served — the cache's proof obligation
    /// as a runtime check. This removes the entire speedup, so it is meant
    /// for tests and audits, not production (default: disabled).
    ///
    /// With it on, a divergent hit panics instead of silently returning a
    /// stale or collided entry.
    pub fn verify_hits(mut self, enabled: bool) -> Self {
        self.verify_hits = enabled;
        self
    }

    /// Attaches a persistent on-disk cache tier rooted at `dir` (created
    /// if missing). Compilation results the in-memory tier cannot serve
    /// are looked up on disk before compiling, and fresh compiles are
    /// written back — so a later session (or another process) pointed at
    /// the same directory comes up warm. Corrupt, truncated or
    /// version-mismatched entries degrade to misses, never errors; see
    /// the `qompress-store` crate for the on-disk contract. Disabled by
    /// default.
    pub fn persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Sets the byte cap of the persistent tier (default: 1 GiB). Beyond
    /// it, oldest-used entries are evicted from disk. Only meaningful
    /// together with [`CompilerBuilder::persist_dir`].
    pub fn persist_max_bytes(mut self, bytes: u64) -> Self {
        self.persist_max_bytes = bytes;
        self
    }

    /// When enabled, an unopenable [`CompilerBuilder::persist_dir`] makes
    /// [`CompilerBuilder::build`] panic instead of degrading to a
    /// memory-only session — for deployments where running without the
    /// shared cache is worse than not running (default: disabled; the
    /// degradation is surfaced through [`Compiler::diagnostics`]).
    pub fn persist_strict(mut self, enabled: bool) -> Self {
        self.persist_strict = enabled;
        self
    }

    /// Attaches an I/O [`FaultPlan`] to the persistent tier's store —
    /// the deterministic chaos hook (see `qompress-store`'s fault
    /// module). The plan handle stays live after `build`, so a test can
    /// heal the "disk" mid-run. Default: [`FaultPlan::none`], which
    /// injects nothing. Only meaningful together with
    /// [`CompilerBuilder::persist_dir`].
    pub fn persist_faults(mut self, faults: FaultPlan) -> Self {
        self.persist_faults = faults;
        self
    }

    /// Tunes the disk tier's circuit breaker: it trips open after
    /// `threshold` consecutive disk I/O errors (clamped to ≥ 1) and
    /// admits a half-open probe after `cooldown`. While open, lookups
    /// and write-backs skip the disk entirely — the session serves
    /// memory + compile. Defaults: 5 failures, 5 s cooldown. Only
    /// meaningful together with [`CompilerBuilder::persist_dir`].
    pub fn persist_breaker(mut self, threshold: u32, cooldown: Duration) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Builds the session.
    ///
    /// An unopenable [`CompilerBuilder::persist_dir`] **degrades** the
    /// session to memory-only: the failure is recorded as a
    /// [`Compiler::diagnostics`] warning, everything else works, and
    /// `persistence_enabled()` reports `false`.
    ///
    /// # Panics
    ///
    /// With [`CompilerBuilder::persist_strict`] enabled, panics when the
    /// persist directory cannot be created or read — for deployments
    /// that must fail loudly rather than run cold.
    pub fn build(self) -> Compiler {
        let workers = if self.workers == 0 {
            // `available_parallelism` may *fail* (unsupported platform,
            // unreadable cgroup limits); the `.max(1)` keeps the pool
            // non-empty even if a platform ever reported zero.
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(1)
        } else {
            self.workers
        };
        let cache = (self.caching && self.cache_capacity > 0)
            .then(|| Mutex::new(ResultCache::new(self.cache_capacity)));
        let skeletons = (self.caching && self.cache_capacity > 0)
            .then(|| Mutex::new(ResultCache::new(self.cache_capacity)));
        // The persistent tier is independent of the in-memory switch: a
        // `caching(false)` session with a `persist_dir` still serves and
        // feeds the shared on-disk store.
        let mut diagnostics = Vec::new();
        let persist = self.persist_dir.and_then(|dir| {
            let opened =
                DiskStore::open_with_faults(&dir, self.persist_max_bytes, self.persist_faults);
            let store = match opened {
                Ok(store) => store,
                Err(err) if self.persist_strict => {
                    panic!("cannot open persistent cache at {}: {err}", dir.display())
                }
                Err(err) => {
                    diagnostics.push(format!(
                        "persistent cache disabled: cannot open {}: {err} \
                         (session degrades to memory-only; use persist_strict(true) \
                         to fail fast instead)",
                        dir.display()
                    ));
                    return None;
                }
            };
            Some(DiskTier {
                store,
                breaker: CircuitBreaker::new(self.breaker_threshold, self.breaker_cooldown),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                rejects: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                write_errors: AtomicU64::new(0),
                read_errors: AtomicU64::new(0),
                skipped: AtomicU64::new(0),
            })
        });
        Compiler {
            state: Arc::new(SessionState {
                config_fp: self.config.fingerprint(),
                config: self.config,
                workers,
                verify_hits: self.verify_hits,
                topologies: Mutex::new(TopologyRegistry::default()),
                cache,
                skeletons,
                persist,
                diagnostics,
            }),
            service: JobService::new(),
        }
    }
}

impl Default for CompilerBuilder {
    fn default() -> Self {
        CompilerBuilder {
            config: CompilerConfig::paper(),
            workers: 0,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            caching: true,
            verify_hits: false,
            persist_dir: None,
            persist_max_bytes: qompress_store::DEFAULT_MAX_BYTES,
            persist_strict: false,
            persist_faults: FaultPlan::none(),
            breaker_threshold: CircuitBreaker::DEFAULT_THRESHOLD,
            breaker_cooldown: CircuitBreaker::DEFAULT_COOLDOWN,
        }
    }
}

/// The session's persistent tier: the shared on-disk store plus this
/// session's exact lookup/write counters (the store itself is stateless
/// about traffic — several processes may be hitting the same directory).
#[derive(Debug)]
struct DiskTier {
    store: DiskStore,
    /// The tier's health gate: every disk operation first asks the
    /// breaker; while open, the tier is skipped entirely and the session
    /// behaves as if no persist dir were configured.
    breaker: CircuitBreaker,
    /// Lookups served from disk (after a memory miss).
    hits: AtomicU64,
    /// Lookups that missed disk too — true compiles.
    misses: AtomicU64,
    /// Entries rejected by validation (corrupt/truncated/version skew).
    rejects: AtomicU64,
    /// Successful write-backs.
    writes: AtomicU64,
    /// Write-backs that failed with an I/O error.
    write_errors: AtomicU64,
    /// Disk reads that failed with a real I/O error (not a miss, not a
    /// reject).
    read_errors: AtomicU64,
    /// Disk operations skipped because the breaker was open.
    skipped: AtomicU64,
}

/// The shared heart of a session: configuration plus every cross-request
/// cache. Worker threads of the job service hold an `Arc` of this (never
/// of the [`Compiler`] itself, which owns the pool and must be able to
/// join it on drop).
#[derive(Debug)]
pub(crate) struct SessionState {
    pub(crate) config: CompilerConfig,
    pub(crate) config_fp: u64,
    pub(crate) workers: usize,
    verify_hits: bool,
    topologies: Mutex<TopologyRegistry>,
    cache: Option<Mutex<ResultCache<Arc<CompilationResult>>>>,
    /// Compiled skeleton artifacts, keyed by the skeleton's *structural*
    /// fingerprint (parameter wiring, not values) — shares the concrete
    /// cache's capacity knob and on/off switch.
    skeletons: Option<Mutex<ResultCache<Arc<SkeletonArtifact>>>>,
    /// The on-disk tier behind the in-memory cache (tier 2). Concrete
    /// results only: skeleton artifacts hold closure-derived state that
    /// is cheap to rebuild relative to their reuse pattern, so they stay
    /// memory-resident.
    persist: Option<DiskTier>,
    /// Build-time warnings (e.g. a persist dir that could not be opened
    /// and was degraded to memory-only). Never fatal — the session they
    /// describe works.
    diagnostics: Vec<String>,
}

impl SessionState {
    /// Compiles `circuit` onto `topo` with `strategy`, serving repeats
    /// from the result cache.
    pub(crate) fn compile(
        &self,
        circuit: &Circuit,
        topo: &Topology,
        strategy: Strategy,
    ) -> Arc<CompilationResult> {
        let topo_fp = topo.structural_fingerprint();
        let tcache = self.topology_cache_by_fp(topo_fp, topo);
        let key = CacheKey::for_strategy(circuit, strategy, topo_fp, self.config_fp);
        self.memoized(key, || {
            Arc::new(self.compile_strategy_job(circuit, &tcache, strategy))
        })
    }

    /// One whole service/batch job, memoized in the result cache. When
    /// the submitter pre-resolved the job's topology fingerprint and
    /// [`TopologyCache`] (the batch wrapper does), both are used directly
    /// — no per-job re-hash of the topology, and immunity to registry
    /// eviction, so a batch spanning more distinct topologies than the
    /// registry bound never rebuilds precomputation mid-flight; otherwise
    /// the cache is looked up (or built) through the registry.
    pub(crate) fn compile_queued_job(
        &self,
        job: &BatchJob,
        resolved: Option<(u64, &TopologyCache)>,
    ) -> Arc<CompilationResult> {
        if let Some(binding) = &job.binding {
            // A sweep job: resolve the skeleton artifact (sweep-shared
            // `OnceLock` first, then the session's skeleton cache) and
            // stamp this job's angles into it — no pipeline run.
            let held;
            let (topo_fp, tcache): (u64, &TopologyCache) = match resolved {
                Some((fp, t)) => (fp, t),
                None => {
                    let fp = job.topology.structural_fingerprint();
                    held = self.topology_cache_by_fp(fp, &job.topology);
                    (fp, &held)
                }
            };
            let artifact = binding.artifact.get_or_init(|| {
                self.skeleton_artifact(&binding.skeleton, tcache, topo_fp, job.strategy)
            });
            return Arc::new(artifact.stamp(&binding.angles));
        }
        let Some((topo_fp, tcache)) = resolved else {
            return self.compile(&job.circuit, &job.topology, job.strategy);
        };
        let key = CacheKey::for_strategy(&job.circuit, job.strategy, topo_fp, self.config_fp);
        self.memoized(key, || {
            Arc::new(self.compile_strategy_job(&job.circuit, tcache, job.strategy))
        })
    }

    /// One strategy-level compilation against a registered topology cache.
    /// The exhaustive strategies are dispatched through the session state
    /// itself (their candidate evaluations must land in this session's
    /// result cache); everything else goes through the stateless pipeline.
    pub(crate) fn compile_strategy_job(
        &self,
        circuit: &Circuit,
        tcache: &TopologyCache,
        strategy: Strategy,
    ) -> CompilationResult {
        if let Strategy::Exhaustive { ordered } = strategy {
            let (best, _) = run_exhaustive(
                self,
                circuit,
                tcache.topology(),
                &ExhaustiveOptions {
                    ordered,
                    ..ExhaustiveOptions::default()
                },
            );
            let mut result = (*best).clone();
            result.strategy = strategy.name().to_string();
            result
        } else {
            compile_cached(circuit, tcache, strategy, &self.config)
        }
    }

    /// Options-level session compile (see [`Compiler::compile_with_options`]).
    pub(crate) fn compile_with_options(
        &self,
        circuit: &Circuit,
        topo: &Topology,
        options: &MappingOptions,
    ) -> Arc<CompilationResult> {
        let topo_fp = topo.structural_fingerprint();
        let tcache = self.topology_cache_by_fp(topo_fp, topo);
        let key = CacheKey::for_options(circuit, options, topo_fp, self.config_fp);
        self.memoized(key, || {
            Arc::new(compile_with_options_cached(
                circuit,
                &tcache,
                &self.config,
                options,
            ))
        })
    }

    pub(crate) fn topology_cache_by_fp(&self, topo_fp: u64, topo: &Topology) -> Arc<TopologyCache> {
        let mut registry = self.topologies.lock().expect("topology registry poisoned");
        if let Some(cache) = registry.map.get(&topo_fp) {
            return Arc::clone(cache);
        }
        if registry.map.len() >= MAX_REGISTERED_TOPOLOGIES {
            if let Some(oldest) = registry.order.pop_front() {
                registry.map.remove(&oldest);
            }
        }
        let cache = Arc::new(TopologyCache::new(topo.clone(), &self.config));
        registry.map.insert(topo_fp, Arc::clone(&cache));
        registry.order.push_back(topo_fp);
        cache
    }

    fn adopt_topology_cache(&self, cache: Arc<TopologyCache>) {
        let topo_fp = cache.topology().structural_fingerprint();
        let mut registry = self.topologies.lock().expect("topology registry poisoned");
        if registry.map.contains_key(&topo_fp) {
            return;
        }
        if registry.map.len() >= MAX_REGISTERED_TOPOLOGIES {
            if let Some(oldest) = registry.order.pop_front() {
                registry.map.remove(&oldest);
            }
        }
        registry.map.insert(topo_fp, cache);
        registry.order.push_back(topo_fp);
    }

    pub(crate) fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(|c| c.lock().expect("result cache poisoned").stats())
            .unwrap_or_default()
    }

    pub(crate) fn skeleton_cache_stats(&self) -> CacheStats {
        self.skeletons
            .as_ref()
            .map(|c| c.lock().expect("skeleton cache poisoned").stats())
            .unwrap_or_default()
    }

    /// The compiled artifact for `skeleton` under `strategy`, serving
    /// repeats of the same parameter *structure* from the skeleton cache.
    /// A miss runs the full pipeline once on the sentinel probe (see
    /// [`crate::parametric`]).
    pub(crate) fn skeleton_artifact(
        &self,
        skeleton: &ParametricCircuit,
        tcache: &TopologyCache,
        topo_fp: u64,
        strategy: Strategy,
    ) -> Arc<SkeletonArtifact> {
        let key = CacheKey::for_skeleton(skeleton, strategy, topo_fp, self.config_fp);
        memoized_in(self.skeletons.as_ref(), self.verify_hits, key, || {
            Arc::new(SkeletonArtifact::build(skeleton, |probe| {
                self.compile_strategy_job(probe, tcache, strategy)
            }))
        })
    }

    /// Serves `key` through the cache tiers — memory, then disk, then
    /// compiling via `fresh` — writing a fresh result back to both tiers
    /// and promoting a disk hit into memory. No lock is held across disk
    /// I/O or compilation, so parallel workers never serialize on either;
    /// two workers racing on one key both compile and the (identical)
    /// write-backs overwrite harmlessly. With `verify_hits`, disk hits
    /// are audited against a fresh recompile exactly like memory hits.
    fn memoized(
        &self,
        key: CacheKey,
        fresh: impl FnOnce() -> Arc<CompilationResult>,
    ) -> Arc<CompilationResult> {
        let Some(tier) = &self.persist else {
            return memoized_in(self.cache.as_ref(), self.verify_hits, key, fresh);
        };
        // Tier 1: memory. (See `memoized_in` for why the lookup drops the
        // guard before any recompilation.)
        if let Some(cache) = self.cache.as_ref() {
            let looked_up = cache.lock().expect("result cache poisoned").get(&key);
            if let Some(hit) = looked_up {
                if self.verify_hits {
                    verify_hit(&hit, fresh, "memory");
                }
                return hit;
            }
        }
        // Tier 2: disk, gated by the circuit breaker — while the tier is
        // open every disk touch is skipped and the lookup is a plain
        // miss. A payload that passes the store's envelope check but
        // fails the codec is still a reject (version-skewed or damaged
        // payload) — removed so it stops costing a read. Only real I/O
        // errors feed the breaker; misses and rejects are healthy-disk
        // outcomes.
        let hex = key.hex();
        if tier.breaker.try_acquire() {
            match tier.store.load(&hex) {
                LoadOutcome::Payload(payload) => match persist::decode_result(&payload) {
                    Some(result) => {
                        tier.breaker.record_success();
                        tier.hits.fetch_add(1, Ordering::Relaxed);
                        let result = Arc::new(result);
                        if self.verify_hits {
                            verify_hit(&result, fresh, "disk");
                            // `fresh` is consumed by the audit; the verified
                            // hit is promoted and served like the normal path.
                            self.promote(key, &result);
                            return result;
                        }
                        self.promote(key, &result);
                        return result;
                    }
                    None => {
                        tier.breaker.record_success();
                        tier.rejects.fetch_add(1, Ordering::Relaxed);
                        tier.misses.fetch_add(1, Ordering::Relaxed);
                        let _ = tier.store.remove(&hex);
                    }
                },
                LoadOutcome::Rejected => {
                    tier.breaker.record_success();
                    tier.rejects.fetch_add(1, Ordering::Relaxed);
                    tier.misses.fetch_add(1, Ordering::Relaxed);
                }
                LoadOutcome::Absent => {
                    tier.breaker.record_success();
                    tier.misses.fetch_add(1, Ordering::Relaxed);
                }
                LoadOutcome::Failed(_) => {
                    tier.breaker.record_failure();
                    tier.read_errors.fetch_add(1, Ordering::Relaxed);
                    tier.misses.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            tier.skipped.fetch_add(1, Ordering::Relaxed);
            tier.misses.fetch_add(1, Ordering::Relaxed);
        }
        // Both tiers missed: compile, then write back to both (the disk
        // write-back again asks the breaker first — tripped mid-lookup
        // means the write is skipped too).
        let result = fresh();
        self.promote(key, &result);
        if tier.breaker.try_acquire() {
            match tier.store.store(&hex, &persist::encode_result(&result)) {
                Ok(true) => {
                    tier.breaker.record_success();
                    tier.writes.fetch_add(1, Ordering::Relaxed);
                }
                // Oversized for the cap: simply not persisted — a policy
                // outcome on a healthy disk, not a failure.
                Ok(false) => {
                    tier.breaker.record_success();
                }
                Err(_) => {
                    tier.breaker.record_failure();
                    tier.write_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            tier.skipped.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Inserts a result into the in-memory tier (a no-op with caching
    /// off). Promotions and write-backs share this path; neither counts
    /// as a lookup in [`CacheStats`].
    fn promote(&self, key: CacheKey, result: &Arc<CompilationResult>) {
        if let Some(cache) = self.cache.as_ref() {
            cache
                .lock()
                .expect("result cache poisoned")
                .insert(key, Arc::clone(result));
        }
    }

    pub(crate) fn tiered_cache_stats(&self) -> TieredCacheStats {
        let memory = self.cache_stats();
        match &self.persist {
            Some(tier) => TieredCacheStats {
                memory_hits: memory.hits,
                disk_hits: tier.hits.load(Ordering::Relaxed),
                misses: tier.misses.load(Ordering::Relaxed),
                memory_evictions: memory.evictions,
                disk_writes: tier.writes.load(Ordering::Relaxed),
                disk_rejects: tier.rejects.load(Ordering::Relaxed),
                disk_write_errors: tier.write_errors.load(Ordering::Relaxed),
                disk_read_errors: tier.read_errors.load(Ordering::Relaxed),
                disk_skipped: tier.skipped.load(Ordering::Relaxed),
                breaker_trips: tier.breaker.trips(),
                breaker_probes: tier.breaker.probes(),
                breaker_state: tier.breaker.state(),
            },
            // Without a persistent tier the flat stats are the whole
            // story: misses are the memory tier's misses.
            None => TieredCacheStats {
                memory_hits: memory.hits,
                disk_hits: 0,
                misses: memory.misses,
                memory_evictions: memory.evictions,
                disk_writes: 0,
                disk_rejects: 0,
                disk_write_errors: 0,
                disk_read_errors: 0,
                disk_skipped: 0,
                breaker_trips: 0,
                breaker_probes: 0,
                breaker_state: BreakerState::Closed,
            },
        }
    }
}

/// The `verify_hits` audit: recompiles through `fresh` and asserts the
/// served hit `Debug`-identical to the rebuild.
fn verify_hit(
    hit: &Arc<CompilationResult>,
    fresh: impl FnOnce() -> Arc<CompilationResult>,
    tier: &str,
) {
    let rebuilt = fresh();
    assert_eq!(
        format!("{hit:?}"),
        format!("{rebuilt:?}"),
        "{tier}-tier cache hit diverged from a fresh compile — \
         content fingerprint collision, codec defect or nondeterministic pipeline"
    );
}

/// Serves `key` from `cache` or builds via `fresh`, inserting the result.
/// The cache lock is *not* held while building, so parallel batch workers
/// never serialize on the pipeline; two workers racing on the same key
/// both build and the (identical) results overwrite harmlessly. With
/// `verify_hits`, every hit is rebuilt and `Debug`-compared before being
/// served.
fn memoized_in<T: Clone + std::fmt::Debug>(
    cache: Option<&Mutex<ResultCache<T>>>,
    verify_hits: bool,
    key: CacheKey,
    fresh: impl FnOnce() -> T,
) -> T {
    let Some(cache) = cache else {
        return fresh();
    };
    // Bind the lookup to a statement of its own so the MutexGuard drops
    // *before* any recompilation: `fresh` may re-enter this cache on the
    // same thread (the exhaustive search compiles its candidates through
    // the session), and an `if let` scrutinee would keep the lock alive
    // across the whole branch.
    let looked_up = cache.lock().expect("result cache poisoned").get(&key);
    if let Some(hit) = looked_up {
        if verify_hits {
            let rebuilt = fresh();
            assert_eq!(
                format!("{hit:?}"),
                format!("{rebuilt:?}"),
                "result-cache hit diverged from a fresh compile — \
                 content fingerprint collision or nondeterministic pipeline"
            );
        }
        return hit;
    }
    let result = fresh();
    cache
        .lock()
        .expect("result cache poisoned")
        .insert(key, result.clone());
    result
}

/// A compilation session owning shared state across compilations: the
/// configuration, the per-topology precomputation registry, the
/// content-addressed result cache, and the persistent worker pool of the
/// job service.
///
/// All methods take `&self`; the session is `Sync` and can be shared
/// across threads (its own service workers do exactly that). See the
/// crate-level docs for the full story and an example.
///
/// Dropping the session shuts the job service down: still-queued jobs are
/// cancelled (their [`JobHandle`]s observe [`crate::JobStatus::Cancelled`]
/// and every `wait` returns), in-flight compilations finish, and all
/// worker threads are joined.
#[derive(Debug)]
pub struct Compiler {
    state: Arc<SessionState>,
    service: JobService,
}

impl Compiler {
    /// Starts building a session.
    pub fn builder() -> CompilerBuilder {
        CompilerBuilder::default()
    }

    /// A default session: paper configuration, autodetected workers,
    /// caching on.
    pub fn new() -> Self {
        Compiler::builder().build()
    }

    /// A session over `config` with every other knob at its default.
    pub fn with_config(config: &CompilerConfig) -> Self {
        Compiler::builder().config(config.clone()).build()
    }

    /// The shared state, for crate-internal callers (the exhaustive
    /// search threads candidate evaluations through it).
    pub(crate) fn state(&self) -> &Arc<SessionState> {
        &self.state
    }

    /// The session's configuration.
    pub fn config(&self) -> &CompilerConfig {
        &self.state.config
    }

    /// The session's worker-thread count for the job service.
    pub fn workers(&self) -> usize {
        self.state.workers
    }

    /// Compiles `circuit` onto `topo` with `strategy`, serving repeats
    /// from the result cache.
    pub fn compile(
        &self,
        circuit: &Circuit,
        topo: &Topology,
        strategy: Strategy,
    ) -> Arc<CompilationResult> {
        self.state.compile(circuit, topo, strategy)
    }

    /// Runs the exhaustive-compression search (§5.1) through this session:
    /// every per-candidate evaluation reuses the session's per-topology
    /// precomputation and is memoized in the result cache under its
    /// `(circuit, pair-set)` key, so repeated sweeps on one session stop
    /// recompiling identical candidates. Returns the best compilation and
    /// the per-round Figure 4 trace.
    pub fn compile_exhaustive(
        &self,
        circuit: &Circuit,
        topo: &Topology,
        options: &ExhaustiveOptions,
    ) -> (Arc<CompilationResult>, Vec<ExhaustiveStep>) {
        run_exhaustive(&self.state, circuit, topo, options)
    }

    /// Compiles `circuit` onto `topo` with explicit [`MappingOptions`]
    /// (the options-level pipeline entry), serving repeats from the
    /// result cache.
    pub fn compile_with_options(
        &self,
        circuit: &Circuit,
        topo: &Topology,
        options: &MappingOptions,
    ) -> Arc<CompilationResult> {
        self.state.compile_with_options(circuit, topo, options)
    }

    /// Compiles the angle-independent structure of `skeleton` once —
    /// mapping, routing, merging and scheduling with traceable sentinel
    /// angles — and returns the reusable [`SkeletonArtifact`]. Repeats of
    /// the same parameter *structure* (values never matter, wiring does)
    /// are served from the session's skeleton cache; each concrete angle
    /// set then costs one [`SkeletonArtifact::stamp`] instead of a
    /// pipeline run.
    pub fn compile_skeleton(
        &self,
        skeleton: &ParametricCircuit,
        topo: &Topology,
        strategy: Strategy,
    ) -> Arc<SkeletonArtifact> {
        let topo_fp = topo.structural_fingerprint();
        let tcache = self.state.topology_cache_by_fp(topo_fp, topo);
        self.state
            .skeleton_artifact(skeleton, &tcache, topo_fp, strategy)
    }

    /// Compiles one skeleton against `bindings.len()` angle sets: one
    /// structural compile (or a skeleton-cache hit from earlier session
    /// work), then one stamp per binding. Each result is byte-identical
    /// to `compile(&skeleton.bind(angles), topo, strategy)`; a cold sweep
    /// of N bindings reports exactly 1 skeleton-cache miss and N−1 hits
    /// in [`SweepResult::skeleton_cache`].
    ///
    /// # Panics
    ///
    /// Panics when a binding has the wrong length or a non-finite angle
    /// (the [`SkeletonArtifact::stamp`] contract).
    pub fn compile_sweep(
        &self,
        skeleton: &ParametricCircuit,
        topo: &Topology,
        strategy: Strategy,
        bindings: &[Vec<f64>],
    ) -> SweepResult {
        let stats_before = self.state.skeleton_cache_stats();
        let started = Instant::now();
        let topo_fp = topo.structural_fingerprint();
        let tcache = self.state.topology_cache_by_fp(topo_fp, topo);
        // With the skeleton cache off there is nothing to pin stats
        // against, so hoist one artifact for the whole sweep instead of
        // recompiling the structure per binding.
        let mut hoisted: Option<Arc<SkeletonArtifact>> = None;
        let results: Vec<Arc<CompilationResult>> = bindings
            .iter()
            .map(|angles| {
                let artifact = if self.state.skeletons.is_some() {
                    self.state
                        .skeleton_artifact(skeleton, &tcache, topo_fp, strategy)
                } else {
                    Arc::clone(hoisted.get_or_insert_with(|| {
                        self.state
                            .skeleton_artifact(skeleton, &tcache, topo_fp, strategy)
                    }))
                };
                Arc::new(artifact.stamp(angles))
            })
            .collect();
        let elapsed = started.elapsed();
        let after = self.state.skeleton_cache_stats();
        SweepResult {
            results,
            // Saturating for the same reason as `compile_batch`: a
            // concurrent counter reset must not underflow the delta.
            skeleton_cache: CacheStats {
                hits: after.hits.saturating_sub(stats_before.hits),
                misses: after.misses.saturating_sub(stats_before.misses),
                evictions: after.evictions.saturating_sub(stats_before.evictions),
            },
            elapsed,
        }
    }

    /// Cumulative skeleton-cache counters (all zeros when caching is
    /// disabled).
    pub fn skeleton_cache_stats(&self) -> CacheStats {
        self.state.skeleton_cache_stats()
    }

    /// Enqueues one job on the session's persistent worker pool and
    /// returns its [`JobHandle`] immediately.
    ///
    /// The pool (bounded by [`CompilerBuilder::workers`]) grows on
    /// demand — up to `min(bound, outstanding jobs)` threads — and serves
    /// every subsequent submit and batch of this session. The handle supports [`JobHandle::poll`],
    /// [`JobHandle::wait`] and [`JobHandle::cancel`]; a job cancelled
    /// while still queued is never compiled and never touches the
    /// session's result cache.
    pub fn submit(&self, job: BatchJob) -> JobHandle {
        self.service.submit(&self.state, job, None, None)
    }

    /// Like [`Compiler::submit`], additionally registering `watcher` to
    /// receive the job's id when it reaches a terminal state — the
    /// primitive for streaming per-job completions out of a large sweep
    /// as they finish (the `qompress-service` wire front-end is built on
    /// exactly this).
    pub fn submit_watched(&self, job: BatchJob, watcher: &CompletionQueue) -> JobHandle {
        self.service
            .submit(&self.state, job, None, Some(watcher.clone()))
    }

    /// Exact lifecycle counters of the session's job service.
    pub fn service_metrics(&self) -> ServiceMetrics {
        self.service.metrics()
    }

    /// Jobs currently waiting in the service queue: unclaimed work,
    /// including entries cancelled while queued that no worker has
    /// skipped past yet. This is the backpressure signal the wire
    /// front-end samples before admitting a submit — when the queue is
    /// deeper than its configured bound, new work is turned away with a
    /// `busy` response instead of being piled on.
    pub fn queue_depth(&self) -> usize {
        self.service.queue_depth()
    }

    /// Stops workers from claiming further jobs. In-flight compilations
    /// finish normally; queued jobs stay queued (and cancellable) until
    /// [`Compiler::resume_workers`]. Note that [`Compiler::compile_batch`]
    /// and [`JobHandle::wait`] block for as long as the service is paused.
    pub fn pause_workers(&self) {
        self.service.pause();
    }

    /// Resumes job claiming after [`Compiler::pause_workers`].
    pub fn resume_workers(&self) {
        self.service.resume();
    }

    /// Compiles every job of `jobs` through the session's job service —
    /// a thin submit-all-then-wait wrapper over [`Compiler::submit`] —
    /// serving repeats (within this batch *and* from earlier session
    /// work) out of the result cache.
    ///
    /// Results come back in input order and are byte-identical for any
    /// worker count; [`BatchResult::cache`] reports the cache activity
    /// observed during this batch (exact when the session runs one batch
    /// at a time; concurrent submitters on the same session fold into the
    /// same counters).
    ///
    /// # Panics
    ///
    /// Panics if any job's compilation panics (e.g. a circuit too large
    /// for its topology); callers that prefer per-job error values
    /// should use [`Compiler::try_compile_batch`].
    pub fn compile_batch(&self, jobs: &[BatchJob]) -> BatchResult {
        let out = self.try_compile_batch(jobs);
        let results: Vec<BatchJobResult> = out
            .results
            .into_iter()
            .map(|r| match r {
                Ok(result) => result,
                Err(failure) => match failure.error {
                    BatchJobError::Panicked(message) => {
                        panic!("batch job `{}` panicked: {message}", failure.label)
                    }
                    BatchJobError::Cancelled => {
                        // Unreachable through this wrapper: the handles never
                        // escape, so nothing can cancel them.
                        panic!("batch job `{}` was cancelled mid-batch", failure.label)
                    }
                },
            })
            .collect();
        BatchResult {
            results,
            distinct_topologies: out.distinct_topologies,
            elapsed: out.elapsed,
            cache: out.cache,
        }
    }

    /// The non-panicking sibling of [`Compiler::compile_batch`]: every
    /// job gets an input-order `Result` slot, a failed job (compilation
    /// panic, or a cancellation racing the batch) yields a
    /// [`BatchJobFailure`] carrying the label and message, and **the
    /// other jobs still complete** — one oversized circuit no longer
    /// takes the caller (and the 23 good results) down with it.
    ///
    /// [`Compiler::compile_batch`] is a thin wrapper over this method
    /// that panics on the first failure with the historical message.
    pub fn try_compile_batch(&self, jobs: &[BatchJob]) -> TryBatchResult {
        let stats_before = self.state.cache_stats();
        // Resolve every job's topology cache up front (deduplicated by
        // structural fingerprint) so the expensive expanded-graph
        // construction happens once, outside the timed window, exactly as
        // the scoped-thread engine did. The per-job `Arc` rides along
        // with the queued job, so even a batch spanning more distinct
        // topologies than the registry bound never rebuilds one
        // mid-flight.
        let per_job: Vec<(u64, Arc<TopologyCache>)> = jobs
            .iter()
            .map(|job| {
                let fp = job.topology.structural_fingerprint();
                (fp, self.state.topology_cache_by_fp(fp, &job.topology))
            })
            .collect();
        let distinct_topologies = {
            let mut fps: Vec<u64> = per_job.iter().map(|(fp, _)| *fp).collect();
            fps.sort_unstable();
            fps.dedup();
            fps.len()
        };

        let started = Instant::now();
        let handles: Vec<JobHandle> = jobs
            .iter()
            .zip(&per_job)
            .map(|(job, (fp, tcache))| {
                self.service.submit(
                    &self.state,
                    job.clone(),
                    Some((*fp, Arc::clone(tcache))),
                    None,
                )
            })
            .collect();
        let results: Vec<Result<BatchJobResult, BatchJobFailure>> = handles
            .iter()
            .enumerate()
            .map(|(job_index, handle)| match handle.wait() {
                JobOutcome::Done(result) => Ok(BatchJobResult {
                    label: handle.label().to_string(),
                    job_index,
                    result,
                }),
                JobOutcome::Failed(message) => Err(BatchJobFailure {
                    label: handle.label().to_string(),
                    job_index,
                    error: BatchJobError::Panicked(message),
                }),
                JobOutcome::Cancelled => Err(BatchJobFailure {
                    label: handle.label().to_string(),
                    job_index,
                    error: BatchJobError::Cancelled,
                }),
            })
            .collect();
        let elapsed = started.elapsed();

        let after = self.state.cache_stats();
        TryBatchResult {
            results,
            distinct_topologies,
            elapsed,
            // Saturating: a concurrent `clear_cache` between the two
            // snapshots resets the counters, which would otherwise
            // underflow the delta.
            cache: CacheStats {
                hits: after.hits.saturating_sub(stats_before.hits),
                misses: after.misses.saturating_sub(stats_before.misses),
                evictions: after.evictions.saturating_sub(stats_before.evictions),
            },
        }
    }

    /// The shared [`TopologyCache`] for `topo`, building it on first use
    /// and deduplicating by structural fingerprint across every session
    /// call (two same-structure topologies share one cache regardless of
    /// name). The registry holds at most `MAX_REGISTERED_TOPOLOGIES`
    /// structures; beyond that the oldest registration is dropped (in-use
    /// `Arc`s stay valid).
    pub fn topology_cache(&self, topo: &Topology) -> Arc<TopologyCache> {
        self.state
            .topology_cache_by_fp(topo.structural_fingerprint(), topo)
    }

    /// Registers an externally built [`TopologyCache`] under its
    /// topology's structural fingerprint, so the session's compilations
    /// reuse its precomputation (expanded graph, memoized oracles)
    /// instead of rebuilding it. An existing registration for the same
    /// structure wins — precomputation is pure, so either copy is valid.
    pub(crate) fn adopt_topology_cache(&self, cache: Arc<TopologyCache>) {
        self.state.adopt_topology_cache(cache);
    }

    /// Number of distinct topology structures registered so far.
    pub fn registered_topologies(&self) -> usize {
        self.state
            .topologies
            .lock()
            .expect("topology registry poisoned")
            .map
            .len()
    }

    /// Aggregated distance-oracle row/memory accounting across every
    /// registered topology (bare + memoized encoded-signature oracles).
    /// Large landmark-mode devices report their O(K·V) footprint here;
    /// the wire `stats` op serves this object as `"oracle"`.
    pub fn oracle_stats(&self) -> crate::OracleStats {
        let caches: Vec<Arc<TopologyCache>> = {
            let registry = self
                .state
                .topologies
                .lock()
                .expect("topology registry poisoned");
            registry.map.values().map(Arc::clone).collect()
        };
        let mut total = crate::OracleStats::default();
        for cache in caches {
            total.merge(&cache.oracle_stats());
        }
        total
    }

    /// Cumulative cache counters (all zeros when caching is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.state.cache_stats()
    }

    /// Cumulative counters split by cache tier (memory / disk /
    /// compiles). Without a [`CompilerBuilder::persist_dir`] the disk
    /// counters are zero and the view collapses to [`Compiler::cache_stats`].
    pub fn tiered_cache_stats(&self) -> TieredCacheStats {
        self.state.tiered_cache_stats()
    }

    /// Returns `true` when the session has a persistent on-disk tier.
    pub fn persistence_enabled(&self) -> bool {
        self.state.persist.is_some()
    }

    /// Build-time warnings — non-fatal degradations the builder chose
    /// over aborting (today: a [`CompilerBuilder::persist_dir`] that
    /// could not be opened, degrading the session to memory-only).
    /// Empty for a cleanly built session. Servers surface these on
    /// startup; library callers may log or ignore them.
    pub fn diagnostics(&self) -> &[String] {
        &self.state.diagnostics
    }

    /// Number of results currently held by the cache.
    pub fn cached_results(&self) -> usize {
        self.state
            .cache
            .as_ref()
            .map(|c| c.lock().expect("result cache poisoned").len())
            .unwrap_or(0)
    }

    /// Returns `true` when the session memoizes results.
    pub fn caching_enabled(&self) -> bool {
        self.state.cache.is_some()
    }

    /// Drops every cached result and resets the counters (the topology
    /// registry is kept — it is pure precomputation, never stale). The
    /// persistent on-disk tier is left intact: it is shared with other
    /// processes and its entries are content-addressed, so they can never
    /// be stale — reclaim disk space by deleting the directory or
    /// reopening it with a smaller [`CompilerBuilder::persist_max_bytes`].
    pub fn clear_cache(&self) {
        if let Some(c) = &self.state.cache {
            c.lock().expect("result cache poisoned").clear();
        }
        if let Some(c) = &self.state.skeletons {
            c.lock().expect("skeleton cache poisoned").clear();
        }
    }
}

impl Drop for Compiler {
    /// Cancels every still-queued job, wakes all waiters, and joins the
    /// worker pool (a no-op for sessions that never submitted).
    fn drop(&mut self) {
        self.service.shutdown();
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::Gate;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::h(0));
        for i in 0..n - 1 {
            c.push(Gate::cx(i, i + 1));
        }
        c
    }

    #[test]
    fn repeat_compile_hits_and_matches() {
        let session = Compiler::builder().verify_hits(true).build();
        let c = ghz(5);
        let topo = Topology::grid(5);
        let first = session.compile(&c, &topo, Strategy::Eqm);
        let again = session.compile(&c, &topo, Strategy::Eqm);
        assert!(Arc::ptr_eq(&first, &again), "hit must serve the cached Arc");
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn hit_equals_uncached_compile() {
        let cached = Compiler::builder().build();
        let uncached = Compiler::builder().caching(false).build();
        let c = ghz(4);
        let topo = Topology::grid(4);
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
            let _warm = cached.compile(&c, &topo, strategy);
            let hit = cached.compile(&c, &topo, strategy);
            let fresh = uncached.compile(&c, &topo, strategy);
            assert_eq!(format!("{:?}", *hit), format!("{:?}", *fresh), "{strategy}");
        }
        assert_eq!(uncached.cache_stats(), CacheStats::default());
        assert_eq!(uncached.cached_results(), 0);
    }

    #[test]
    fn distinct_jobs_do_not_collide() {
        let session = Compiler::new();
        let c = ghz(4);
        let topo = Topology::grid(4);
        let eqm = session.compile(&c, &topo, Strategy::Eqm);
        let qubit_only = session.compile(&c, &topo, Strategy::QubitOnly);
        assert_ne!(eqm.strategy, qubit_only.strategy);
        // Options-level entry is keyed separately from the strategy entry.
        let opts = session.compile_with_options(&c, &topo, &MappingOptions::eqm());
        assert_eq!(opts.strategy, String::new());
        assert_eq!(session.cache_stats().hits, 0);
        assert_eq!(session.cache_stats().misses, 3);
    }

    #[test]
    fn topology_registry_dedupes_across_calls_and_names() {
        let session = Compiler::new();
        let a = session.topology_cache(&Topology::grid(5));
        let b = session.topology_cache(&Topology::grid(5));
        assert!(Arc::ptr_eq(&a, &b));
        // Same structure under another name shares the cache.
        let renamed = Topology::from_edges(
            "renamed",
            Topology::grid(5).n_nodes(),
            Topology::grid(5).edges().to_vec(),
        );
        let c = session.topology_cache(&renamed);
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(session.registered_topologies(), 1);
        let _ = session.topology_cache(&Topology::line(4));
        assert_eq!(session.registered_topologies(), 2);
    }

    #[test]
    fn config_changes_key_space() {
        let paper = Compiler::new();
        let swept = Compiler::with_config(&CompilerConfig::paper().with_t1_ratio(1.5));
        let c = ghz(4);
        let topo = Topology::grid(4);
        let a = paper.compile(&c, &topo, Strategy::Eqm);
        let b = swept.compile(&c, &topo, Strategy::Eqm);
        // Different coherence model => different metrics; each session
        // missed once (separate caches, separate key spaces).
        assert_ne!(a.metrics.coherence_eps, b.metrics.coherence_eps);
        assert_eq!(paper.cache_stats().misses, 1);
        assert_eq!(swept.cache_stats().misses, 1);
    }

    #[test]
    fn clear_cache_forgets_results_but_keeps_topologies() {
        let session = Compiler::new();
        let c = ghz(4);
        let topo = Topology::grid(4);
        let _ = session.compile(&c, &topo, Strategy::Eqm);
        assert_eq!(session.cached_results(), 1);
        session.clear_cache();
        assert_eq!(session.cached_results(), 0);
        assert_eq!(session.cache_stats(), CacheStats::default());
        assert_eq!(session.registered_topologies(), 1);
        let _ = session.compile(&c, &topo, Strategy::Eqm);
        assert_eq!(session.cache_stats().misses, 1);
    }

    #[test]
    fn capacity_bound_evicts() {
        let session = Compiler::builder().cache_capacity(2).build();
        let topo = Topology::grid(4);
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
            let _ = session.compile(&ghz(4), &topo, strategy);
        }
        assert_eq!(session.cached_results(), 2);
        assert_eq!(session.cache_stats().evictions, 1);
    }

    #[test]
    fn topology_registry_is_bounded() {
        let session = Compiler::builder().caching(false).build();
        for n in 1..=(MAX_REGISTERED_TOPOLOGIES + 8) {
            let _ = session.topology_cache(&Topology::line(n));
        }
        assert_eq!(
            session.registered_topologies(),
            MAX_REGISTERED_TOPOLOGIES,
            "registry must evict oldest-first at the bound"
        );
        // The newest structure survived eviction and still dedupes.
        let newest = Topology::line(MAX_REGISTERED_TOPOLOGIES + 8);
        let a = session.topology_cache(&newest);
        let b = session.topology_cache(&newest);
        assert!(Arc::ptr_eq(&a, &b));
        // The oldest was evicted; re-requesting it simply rebuilds.
        let rebuilt = session.topology_cache(&Topology::line(1));
        assert_eq!(rebuilt.topology().n_nodes(), 1);
    }

    #[test]
    fn workers_autodetect_and_override() {
        assert!(Compiler::builder().build().workers() >= 1);
        assert_eq!(Compiler::builder().workers(3).build().workers(), 3);
        assert!(Compiler::builder()
            .caching(false)
            .build()
            .state
            .cache
            .is_none());
        assert!(Compiler::builder()
            .cache_capacity(0)
            .build()
            .state
            .cache
            .is_none());
    }

    #[test]
    fn pool_grows_with_demand_not_bound() {
        // A wide bound must not cost threads a narrow workload never
        // uses: one outstanding job at a time keeps a one-thread pool.
        let session = Compiler::builder().workers(8).build();
        assert_eq!(session.service.worker_count(), 0, "no submit, no pool");
        for _ in 0..3 {
            let h = session.submit(BatchJob::new(
                "serial",
                ghz(4),
                Strategy::QubitOnly,
                Topology::grid(4),
            ));
            assert!(h.wait().result().is_some());
        }
        assert_eq!(
            session.service.worker_count(),
            1,
            "serial submits never need a second worker"
        );
        // Piling up outstanding work grows the pool toward the bound.
        session.pause_workers();
        for i in 0..5 {
            let _ = session.submit(BatchJob::new(
                format!("burst-{i}"),
                ghz(4),
                Strategy::QubitOnly,
                Topology::grid(4),
            ));
        }
        let grown = session.service.worker_count();
        assert!(
            (2..=5).contains(&grown),
            "burst of 5 queued jobs must grow the pool (got {grown})"
        );
        session.resume_workers();
    }

    #[test]
    fn batch_survives_topology_registry_eviction() {
        // More distinct topologies than the registry holds: the per-job
        // `Arc<TopologyCache>` rides along with each queued job, so the
        // batch completes without rebuilding precomputation mid-flight
        // even though the registry evicted the earliest structures.
        let session = Compiler::builder().workers(2).build();
        let n = MAX_REGISTERED_TOPOLOGIES + 8;
        let jobs: Vec<BatchJob> = (0..n)
            .map(|i| {
                BatchJob::new(
                    format!("line-{}", i + 2),
                    ghz(2),
                    Strategy::QubitOnly,
                    Topology::line(i + 2),
                )
            })
            .collect();
        let out = session.compile_batch(&jobs);
        assert_eq!(out.results.len(), n);
        assert_eq!(out.distinct_topologies, n);
        assert_eq!(session.registered_topologies(), MAX_REGISTERED_TOPOLOGIES);
        for (job, r) in jobs.iter().zip(&out.results) {
            assert_eq!(r.label, job.label);
            assert!(r.result.metrics.total_eps > 0.0, "{}", job.label);
        }
    }

    #[test]
    fn workers_zero_autodetects_at_least_one_on_any_box() {
        // The CI container reports a single CPU; `workers(0)` must still
        // yield a usable pool (and would even if `available_parallelism`
        // errored — the builder clamps to ≥ 1).
        let session = Compiler::builder().workers(0).build();
        assert!(session.workers() >= 1);
        // …and the autodetected pool actually serves work.
        let handle = session.submit(BatchJob::new(
            "autodetect",
            ghz(4),
            Strategy::QubitOnly,
            Topology::grid(4),
        ));
        assert!(handle.wait().result().is_some());
    }
}
