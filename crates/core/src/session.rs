//! The `Compiler` session: the one blessed entry path into the pipeline.
//!
//! A [`Compiler`] owns everything that is worth keeping *between*
//! compilations:
//!
//! * a **topology registry** keyed by
//!   [`Topology::structural_fingerprint`], deduplicating
//!   [`TopologyCache`] construction (expanded slot graph, distance
//!   oracles) across every call on the session — not just within one
//!   batch;
//! * a **content-addressed LRU result cache** keyed by `(circuit hash,
//!   job kind, topology fingerprint, config fingerprint)` with exact
//!   [`CacheStats`]; a hit is byte-identical to a fresh compile because
//!   the pipeline is deterministic in exactly those inputs (pinned by the
//!   session test-suite, and checkable per-hit via
//!   [`CompilerBuilder::verify_hits`]);
//! * the worker pool configuration for [`Compiler::compile_batch`].
//!
//! The paper's evaluation (§6) and its precursor communication/compression
//! trade-off study recompile near-identical `(circuit, strategy,
//! topology)` jobs across large sweeps; a session turns every repeat into
//! a cache hit.
//!
//! ```
//! use qompress::{Compiler, Strategy};
//! use qompress_arch::Topology;
//! use qompress_circuit::{Circuit, Gate};
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::h(0));
//! c.push(Gate::cx(0, 1));
//!
//! let session = Compiler::builder().build();
//! let topo = Topology::grid(3);
//! let first = session.compile(&c, &topo, Strategy::Eqm);
//! let again = session.compile(&c, &topo, Strategy::Eqm); // cache hit
//! assert_eq!(first.metrics, again.metrics);
//! assert_eq!(session.cache_stats().hits, 1);
//! ```

use crate::batch::{BatchJob, BatchJobResult, BatchResult};
use crate::config::CompilerConfig;
use crate::mapping::MappingOptions;
use crate::pipeline::{compile_with_options_cached, CompilationResult, TopologyCache};
use crate::result_cache::{CacheKey, CacheStats, ResultCache};
use crate::strategies::{
    compile_cached, run_exhaustive, ExhaustiveOptions, ExhaustiveStep, Strategy,
};
use qompress_arch::Topology;
use qompress_circuit::Circuit;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default bound on memoized compilation results per session.
const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Bound on registered topology structures per session. A `TopologyCache`
/// holds the expanded slot graph plus lazily-filled Dijkstra state, so a
/// long-lived session serving arbitrarily many distinct device structures
/// must not grow without limit; beyond the bound the oldest registration
/// is dropped (outstanding `Arc`s stay valid, the structure just rebuilds
/// on its next use). Real sweeps use a handful of devices and never hit
/// this.
const MAX_REGISTERED_TOPOLOGIES: usize = 64;

/// The session's topology registry: fingerprint-keyed caches plus
/// insertion order for deterministic oldest-first eviction at the bound.
#[derive(Debug, Default)]
struct TopologyRegistry {
    map: HashMap<u64, Arc<TopologyCache>>,
    order: std::collections::VecDeque<u64>,
}

/// Configures and builds a [`Compiler`] session.
///
/// Obtained from [`Compiler::builder`]; every knob has a production
/// default, so `Compiler::builder().build()` is a fully working session.
#[derive(Debug, Clone)]
pub struct CompilerBuilder {
    config: CompilerConfig,
    workers: usize,
    cache_capacity: usize,
    caching: bool,
    verify_hits: bool,
}

impl CompilerBuilder {
    /// Sets the compiler configuration (default:
    /// [`CompilerConfig::paper`]).
    pub fn config(mut self, config: CompilerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the worker-thread count for [`Compiler::compile_batch`].
    /// `0` (the default) autodetects the machine's available parallelism;
    /// `1` forces serial execution.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the result-cache capacity in entries (default: 256). `0`
    /// disables caching entirely, like `caching(false)`.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Enables or disables the result cache (default: enabled).
    pub fn caching(mut self, enabled: bool) -> Self {
        self.caching = enabled;
        self
    }

    /// When enabled, every cache hit is re-compiled from scratch and the
    /// two results are asserted byte-identical (`Debug`-rendering
    /// comparison) before the hit is served — the cache's proof obligation
    /// as a runtime check. This removes the entire speedup, so it is meant
    /// for tests and audits, not production (default: disabled).
    ///
    /// With it on, a divergent hit panics instead of silently returning a
    /// stale or collided entry.
    pub fn verify_hits(mut self, enabled: bool) -> Self {
        self.verify_hits = enabled;
        self
    }

    /// Builds the session.
    pub fn build(self) -> Compiler {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        };
        let cache = (self.caching && self.cache_capacity > 0)
            .then(|| Mutex::new(ResultCache::new(self.cache_capacity)));
        Compiler {
            config_fp: self.config.fingerprint(),
            config: self.config,
            workers,
            verify_hits: self.verify_hits,
            topologies: Mutex::new(TopologyRegistry::default()),
            cache,
        }
    }
}

impl Default for CompilerBuilder {
    fn default() -> Self {
        CompilerBuilder {
            config: CompilerConfig::paper(),
            workers: 0,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            caching: true,
            verify_hits: false,
        }
    }
}

/// A compilation session owning shared state across compilations: the
/// configuration, the per-topology precomputation registry, and the
/// content-addressed result cache.
///
/// All methods take `&self`; the session is `Sync` and can be shared
/// across threads (its own [`Compiler::compile_batch`] workers do exactly
/// that). See the crate-level docs for the full story and an example.
#[derive(Debug)]
pub struct Compiler {
    config: CompilerConfig,
    config_fp: u64,
    workers: usize,
    verify_hits: bool,
    topologies: Mutex<TopologyRegistry>,
    cache: Option<Mutex<ResultCache>>,
}

impl Compiler {
    /// Starts building a session.
    pub fn builder() -> CompilerBuilder {
        CompilerBuilder::default()
    }

    /// A default session: paper configuration, autodetected workers,
    /// caching on.
    pub fn new() -> Self {
        Compiler::builder().build()
    }

    /// A session over `config` with every other knob at its default.
    pub fn with_config(config: &CompilerConfig) -> Self {
        Compiler::builder().config(config.clone()).build()
    }

    /// The session's configuration.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// The session's worker-thread count for batches.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Compiles `circuit` onto `topo` with `strategy`, serving repeats
    /// from the result cache.
    pub fn compile(
        &self,
        circuit: &Circuit,
        topo: &Topology,
        strategy: Strategy,
    ) -> Arc<CompilationResult> {
        let topo_fp = topo.structural_fingerprint();
        let tcache = self.topology_cache_by_fp(topo_fp, topo);
        let key = CacheKey::for_strategy(circuit, strategy, topo_fp, self.config_fp);
        self.memoized(key, || {
            Arc::new(self.compile_strategy_job(circuit, &tcache, strategy))
        })
    }

    /// Runs the exhaustive-compression search (§5.1) through this session:
    /// every per-candidate evaluation reuses the session's per-topology
    /// precomputation and is memoized in the result cache under its
    /// `(circuit, pair-set)` key, so repeated sweeps on one session stop
    /// recompiling identical candidates. Returns the best compilation and
    /// the per-round Figure 4 trace.
    pub fn compile_exhaustive(
        &self,
        circuit: &Circuit,
        topo: &Topology,
        options: &ExhaustiveOptions,
    ) -> (Arc<CompilationResult>, Vec<ExhaustiveStep>) {
        run_exhaustive(self, circuit, topo, options)
    }

    /// One strategy-level compilation against a registered topology cache.
    /// The exhaustive strategies are dispatched through the session itself
    /// (their candidate evaluations must land in this session's result
    /// cache); everything else goes through the stateless pipeline.
    fn compile_strategy_job(
        &self,
        circuit: &Circuit,
        tcache: &TopologyCache,
        strategy: Strategy,
    ) -> CompilationResult {
        if let Strategy::Exhaustive { ordered } = strategy {
            let (best, _) = run_exhaustive(
                self,
                circuit,
                tcache.topology(),
                &ExhaustiveOptions {
                    ordered,
                    ..ExhaustiveOptions::default()
                },
            );
            let mut result = (*best).clone();
            result.strategy = strategy.name().to_string();
            result
        } else {
            compile_cached(circuit, tcache, strategy, &self.config)
        }
    }

    /// Compiles `circuit` onto `topo` with explicit [`MappingOptions`]
    /// (the options-level pipeline entry), serving repeats from the
    /// result cache.
    pub fn compile_with_options(
        &self,
        circuit: &Circuit,
        topo: &Topology,
        options: &MappingOptions,
    ) -> Arc<CompilationResult> {
        let topo_fp = topo.structural_fingerprint();
        let tcache = self.topology_cache_by_fp(topo_fp, topo);
        let key = CacheKey::for_options(circuit, options, topo_fp, self.config_fp);
        self.memoized(key, || {
            Arc::new(compile_with_options_cached(
                circuit,
                &tcache,
                &self.config,
                options,
            ))
        })
    }

    /// Compiles every job of `jobs`, fanning over the session's worker
    /// threads and serving repeats (within this batch *and* from earlier
    /// session work) out of the result cache.
    ///
    /// Results come back in input order and are byte-identical for any
    /// worker count; [`BatchResult::cache`] reports the cache activity of
    /// this batch alone.
    ///
    /// # Panics
    ///
    /// Panics if any job's compilation panics (e.g. a circuit too large
    /// for its topology); the panic propagates out of the thread scope.
    pub fn compile_batch(&self, jobs: &[BatchJob]) -> BatchResult {
        let stats_before = self.cache_stats();
        let per_job: Vec<(u64, Arc<TopologyCache>)> = jobs
            .iter()
            .map(|job| {
                let fp = job.topology.structural_fingerprint();
                (fp, self.topology_cache_by_fp(fp, &job.topology))
            })
            .collect();
        let distinct_topologies = {
            let mut fps: Vec<u64> = per_job.iter().map(|(fp, _)| *fp).collect();
            fps.sort_unstable();
            fps.dedup();
            fps.len()
        };

        let n_jobs = jobs.len();
        let workers = self.workers.max(1).min(n_jobs.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<BatchJobResult>>> =
            (0..n_jobs).map(|_| Mutex::new(None)).collect();

        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n_jobs {
                        break;
                    }
                    let job = &jobs[idx];
                    let (topo_fp, tcache) = &per_job[idx];
                    let key = CacheKey::for_strategy(
                        &job.circuit,
                        job.strategy,
                        *topo_fp,
                        self.config_fp,
                    );
                    let result = self.memoized(key, || {
                        Arc::new(self.compile_strategy_job(&job.circuit, tcache, job.strategy))
                    });
                    *slots[idx].lock().expect("result slot poisoned") = Some(BatchJobResult {
                        label: job.label.clone(),
                        job_index: idx,
                        result,
                    });
                });
            }
        });
        let elapsed = started.elapsed();

        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job index was claimed by a worker")
            })
            .collect();

        let after = self.cache_stats();
        BatchResult {
            results,
            distinct_topologies,
            elapsed,
            // Saturating: a concurrent `clear_cache` between the two
            // snapshots resets the counters, which would otherwise
            // underflow the delta.
            cache: CacheStats {
                hits: after.hits.saturating_sub(stats_before.hits),
                misses: after.misses.saturating_sub(stats_before.misses),
                evictions: after.evictions.saturating_sub(stats_before.evictions),
            },
        }
    }

    /// The shared [`TopologyCache`] for `topo`, building it on first use
    /// and deduplicating by structural fingerprint across every session
    /// call (two same-structure topologies share one cache regardless of
    /// name). The registry holds at most `MAX_REGISTERED_TOPOLOGIES`
    /// structures; beyond that the oldest registration is dropped (in-use
    /// `Arc`s stay valid).
    pub fn topology_cache(&self, topo: &Topology) -> Arc<TopologyCache> {
        self.topology_cache_by_fp(topo.structural_fingerprint(), topo)
    }

    fn topology_cache_by_fp(&self, topo_fp: u64, topo: &Topology) -> Arc<TopologyCache> {
        let mut registry = self.topologies.lock().expect("topology registry poisoned");
        if let Some(cache) = registry.map.get(&topo_fp) {
            return Arc::clone(cache);
        }
        if registry.map.len() >= MAX_REGISTERED_TOPOLOGIES {
            if let Some(oldest) = registry.order.pop_front() {
                registry.map.remove(&oldest);
            }
        }
        let cache = Arc::new(TopologyCache::new(topo.clone(), &self.config));
        registry.map.insert(topo_fp, Arc::clone(&cache));
        registry.order.push_back(topo_fp);
        cache
    }

    /// Registers an externally built [`TopologyCache`] under its
    /// topology's structural fingerprint, so the session's compilations
    /// reuse its precomputation (expanded graph, memoized oracles)
    /// instead of rebuilding it. An existing registration for the same
    /// structure wins — precomputation is pure, so either copy is valid.
    pub(crate) fn adopt_topology_cache(&self, cache: Arc<TopologyCache>) {
        let topo_fp = cache.topology().structural_fingerprint();
        let mut registry = self.topologies.lock().expect("topology registry poisoned");
        if registry.map.contains_key(&topo_fp) {
            return;
        }
        if registry.map.len() >= MAX_REGISTERED_TOPOLOGIES {
            if let Some(oldest) = registry.order.pop_front() {
                registry.map.remove(&oldest);
            }
        }
        registry.map.insert(topo_fp, cache);
        registry.order.push_back(topo_fp);
    }

    /// Number of distinct topology structures registered so far.
    pub fn registered_topologies(&self) -> usize {
        self.topologies
            .lock()
            .expect("topology registry poisoned")
            .map
            .len()
    }

    /// Cumulative cache counters (all zeros when caching is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(|c| c.lock().expect("result cache poisoned").stats())
            .unwrap_or_default()
    }

    /// Number of results currently held by the cache.
    pub fn cached_results(&self) -> usize {
        self.cache
            .as_ref()
            .map(|c| c.lock().expect("result cache poisoned").len())
            .unwrap_or(0)
    }

    /// Returns `true` when the session memoizes results.
    pub fn caching_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Drops every cached result and resets the counters (the topology
    /// registry is kept — it is pure precomputation, never stale).
    pub fn clear_cache(&self) {
        if let Some(c) = &self.cache {
            c.lock().expect("result cache poisoned").clear();
        }
    }

    /// Serves `key` from the cache or compiles via `fresh`, inserting the
    /// result. The cache lock is *not* held while compiling, so parallel
    /// batch workers never serialize on the pipeline; two workers racing
    /// on the same key both compile and the (identical) results overwrite
    /// harmlessly.
    fn memoized(
        &self,
        key: CacheKey,
        fresh: impl FnOnce() -> Arc<CompilationResult>,
    ) -> Arc<CompilationResult> {
        let Some(cache) = &self.cache else {
            return fresh();
        };
        // Bind the lookup to a statement of its own so the MutexGuard
        // drops *before* any recompilation: `fresh` may re-enter this
        // cache on the same thread (the exhaustive search compiles its
        // candidates through the session), and an `if let` scrutinee
        // would keep the lock alive across the whole branch.
        let looked_up = cache.lock().expect("result cache poisoned").get(&key);
        if let Some(hit) = looked_up {
            if self.verify_hits {
                let recompiled = fresh();
                assert_eq!(
                    format!("{:?}", *hit),
                    format!("{:?}", *recompiled),
                    "result-cache hit diverged from a fresh compile — \
                     content fingerprint collision or nondeterministic pipeline"
                );
            }
            return hit;
        }
        let result = fresh();
        cache
            .lock()
            .expect("result cache poisoned")
            .insert(key, Arc::clone(&result));
        result
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::Gate;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::h(0));
        for i in 0..n - 1 {
            c.push(Gate::cx(i, i + 1));
        }
        c
    }

    #[test]
    fn repeat_compile_hits_and_matches() {
        let session = Compiler::builder().verify_hits(true).build();
        let c = ghz(5);
        let topo = Topology::grid(5);
        let first = session.compile(&c, &topo, Strategy::Eqm);
        let again = session.compile(&c, &topo, Strategy::Eqm);
        assert!(Arc::ptr_eq(&first, &again), "hit must serve the cached Arc");
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn hit_equals_uncached_compile() {
        let cached = Compiler::builder().build();
        let uncached = Compiler::builder().caching(false).build();
        let c = ghz(4);
        let topo = Topology::grid(4);
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
            let _warm = cached.compile(&c, &topo, strategy);
            let hit = cached.compile(&c, &topo, strategy);
            let fresh = uncached.compile(&c, &topo, strategy);
            assert_eq!(format!("{:?}", *hit), format!("{:?}", *fresh), "{strategy}");
        }
        assert_eq!(uncached.cache_stats(), CacheStats::default());
        assert_eq!(uncached.cached_results(), 0);
    }

    #[test]
    fn distinct_jobs_do_not_collide() {
        let session = Compiler::new();
        let c = ghz(4);
        let topo = Topology::grid(4);
        let eqm = session.compile(&c, &topo, Strategy::Eqm);
        let qubit_only = session.compile(&c, &topo, Strategy::QubitOnly);
        assert_ne!(eqm.strategy, qubit_only.strategy);
        // Options-level entry is keyed separately from the strategy entry.
        let opts = session.compile_with_options(&c, &topo, &MappingOptions::eqm());
        assert_eq!(opts.strategy, String::new());
        assert_eq!(session.cache_stats().hits, 0);
        assert_eq!(session.cache_stats().misses, 3);
    }

    #[test]
    fn topology_registry_dedupes_across_calls_and_names() {
        let session = Compiler::new();
        let a = session.topology_cache(&Topology::grid(5));
        let b = session.topology_cache(&Topology::grid(5));
        assert!(Arc::ptr_eq(&a, &b));
        // Same structure under another name shares the cache.
        let renamed = Topology::from_edges(
            "renamed",
            Topology::grid(5).n_nodes(),
            Topology::grid(5).edges().to_vec(),
        );
        let c = session.topology_cache(&renamed);
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(session.registered_topologies(), 1);
        let _ = session.topology_cache(&Topology::line(4));
        assert_eq!(session.registered_topologies(), 2);
    }

    #[test]
    fn config_changes_key_space() {
        let paper = Compiler::new();
        let swept = Compiler::with_config(&CompilerConfig::paper().with_t1_ratio(1.5));
        let c = ghz(4);
        let topo = Topology::grid(4);
        let a = paper.compile(&c, &topo, Strategy::Eqm);
        let b = swept.compile(&c, &topo, Strategy::Eqm);
        // Different coherence model => different metrics; each session
        // missed once (separate caches, separate key spaces).
        assert_ne!(a.metrics.coherence_eps, b.metrics.coherence_eps);
        assert_eq!(paper.cache_stats().misses, 1);
        assert_eq!(swept.cache_stats().misses, 1);
    }

    #[test]
    fn clear_cache_forgets_results_but_keeps_topologies() {
        let session = Compiler::new();
        let c = ghz(4);
        let topo = Topology::grid(4);
        let _ = session.compile(&c, &topo, Strategy::Eqm);
        assert_eq!(session.cached_results(), 1);
        session.clear_cache();
        assert_eq!(session.cached_results(), 0);
        assert_eq!(session.cache_stats(), CacheStats::default());
        assert_eq!(session.registered_topologies(), 1);
        let _ = session.compile(&c, &topo, Strategy::Eqm);
        assert_eq!(session.cache_stats().misses, 1);
    }

    #[test]
    fn capacity_bound_evicts() {
        let session = Compiler::builder().cache_capacity(2).build();
        let topo = Topology::grid(4);
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
            let _ = session.compile(&ghz(4), &topo, strategy);
        }
        assert_eq!(session.cached_results(), 2);
        assert_eq!(session.cache_stats().evictions, 1);
    }

    #[test]
    fn topology_registry_is_bounded() {
        let session = Compiler::builder().caching(false).build();
        for n in 1..=(MAX_REGISTERED_TOPOLOGIES + 8) {
            let _ = session.topology_cache(&Topology::line(n));
        }
        assert_eq!(
            session.registered_topologies(),
            MAX_REGISTERED_TOPOLOGIES,
            "registry must evict oldest-first at the bound"
        );
        // The newest structure survived eviction and still dedupes.
        let newest = Topology::line(MAX_REGISTERED_TOPOLOGIES + 8);
        let a = session.topology_cache(&newest);
        let b = session.topology_cache(&newest);
        assert!(Arc::ptr_eq(&a, &b));
        // The oldest was evicted; re-requesting it simply rebuilds.
        let rebuilt = session.topology_cache(&Topology::line(1));
        assert_eq!(rebuilt.topology().n_nodes(), 1);
    }

    #[test]
    fn workers_autodetect_and_override() {
        assert!(Compiler::builder().build().workers() >= 1);
        assert_eq!(Compiler::builder().workers(3).build().workers(), 3);
        assert!(Compiler::builder().caching(false).build().cache.is_none());
        assert!(Compiler::builder()
            .cache_capacity(0)
            .build()
            .cache
            .is_none());
    }
}
