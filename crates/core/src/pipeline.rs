//! The shared compilation pipeline: map → route → merge → schedule →
//! evaluate.
//!
//! Initial compressions are free: before any gate executes every unit is in
//! `|0⟩`, and an encoded `|00⟩` pair *is* the ququart ground state, so
//! placing two logical qubits in one ququart at circuit start needs no ENC
//! pulse (ENC/DEC costs arise only for mid-circuit re-encoding, as in the
//! FQ baseline). This matches the paper's accounting, where ENC/DEC
//! overhead is attributed to the FQ strategy.

use crate::config::CompilerConfig;
use crate::cost::{DistanceOracle, OracleStats};
use crate::layout::Layout;
use crate::mapping::{map_circuit_with_center, MappingOptions};
use crate::metrics::Metrics;
use crate::physical::Schedule;
use crate::routing::route_cached;
use crate::scheduling::{merge_singles, schedule_ops, trace_coherence, CoherenceTrace};
use qompress_arch::{ExpandedGraph, Topology};
use qompress_circuit::{Circuit, CircuitDag};
use std::fmt;
use std::sync::Arc;

/// Upper bound on distinct encoded-signature oracles one [`TopologyCache`]
/// retains. Beyond it, oracles are still built on demand but no longer
/// memoized — a safety valve for adversarial workloads (e.g. an exhaustive
/// search over a huge device) rather than a limit real sweeps hit.
const MAX_ENCODED_ORACLES: usize = 128;

/// Immutable per-topology precomputation, shared across compilations.
///
/// Building the expanded slot graph and the distance oracles is pure
/// topology+config work; batches that compile many jobs on the same device
/// reuse one cache behind an [`Arc`] instead of redoing it per job (see
/// [`crate::Compiler`]). The bare-encoding oracle fills lazily on the
/// first compilation that routes an unencoded layout; encoded layouts are
/// served from a per-**encoding-signature** oracle map (the signature is
/// the per-unit encoded-flag vector — the only layout state the oracle's
/// edge weights depend on), so jobs whose layouts encode the same unit set
/// stop rebuilding their oracle.
#[derive(Debug)]
pub struct TopologyCache {
    expanded: Arc<ExpandedGraph>,
    /// The configuration the cache (and its lazy oracles) is bound to.
    config: CompilerConfig,
    bare_oracle: std::sync::OnceLock<Arc<DistanceOracle>>,
    /// Oracles keyed by encoded-flag signature, for layouts with at least
    /// one encoded unit.
    encoded_oracles: std::sync::Mutex<std::collections::HashMap<Vec<bool>, Arc<DistanceOracle>>>,
    /// The topology's center unit, memoized (finding it is an all-sources
    /// BFS — noticeable on 1000-unit devices, pure waste per job).
    center: std::sync::OnceLock<usize>,
}

impl Clone for TopologyCache {
    /// Clones the shared structures; already-memoized oracles ride along.
    fn clone(&self) -> Self {
        TopologyCache {
            expanded: Arc::clone(&self.expanded),
            config: self.config.clone(),
            bare_oracle: self.bare_oracle.clone(),
            encoded_oracles: std::sync::Mutex::new(
                self.encoded_oracles
                    .lock()
                    .expect("oracle map poisoned")
                    .clone(),
            ),
            center: self.center.clone(),
        }
    }
}

impl TopologyCache {
    /// Builds the shared structures for one topology under `config`.
    pub fn new(topo: Topology, config: &CompilerConfig) -> Self {
        TopologyCache {
            expanded: Arc::new(ExpandedGraph::new(topo)),
            config: config.clone(),
            bare_oracle: std::sync::OnceLock::new(),
            encoded_oracles: std::sync::Mutex::new(std::collections::HashMap::new()),
            center: std::sync::OnceLock::new(),
        }
    }

    /// The topology's center unit, computed once per cache.
    pub fn center(&self) -> usize {
        *self.center.get_or_init(|| self.topology().center())
    }

    /// The physical topology this cache was built for.
    pub fn topology(&self) -> &Topology {
        self.expanded.topology()
    }

    /// The expanded slot graph.
    pub fn expanded(&self) -> &Arc<ExpandedGraph> {
        &self.expanded
    }

    /// The distance oracle valid while **no unit is encoded** (the state
    /// every qubit-only compilation routes in), built on first use under
    /// the cache's own configuration.
    pub fn bare_oracle(&self) -> &Arc<DistanceOracle> {
        self.bare_oracle
            .get_or_init(|| Arc::new(DistanceOracle::bare(&self.expanded, &self.config)))
    }

    /// The distance oracle for `layout`'s encoding state, shared across
    /// every compilation whose layout encodes the same unit set.
    ///
    /// Oracle edge weights depend only on the per-unit encoded flags (not
    /// on which qubit occupies which slot), so the flag vector is a
    /// complete cache signature. All-bare layouts reuse the
    /// [`TopologyCache::bare_oracle`]; encoded signatures land in a bounded
    /// map (beyond `MAX_ENCODED_ORACLES` entries the oracle is built fresh and
    /// not retained).
    pub fn oracle_for(&self, layout: &Layout) -> Arc<DistanceOracle> {
        if !layout.encoded_flags().iter().any(|&e| e) {
            return Arc::clone(self.bare_oracle());
        }
        let mut map = self.encoded_oracles.lock().expect("oracle map poisoned");
        // Borrowed-slice lookup (`Vec<bool>: Borrow<[bool]>`): the hit path
        // — every encoded candidate compile of an exhaustive sweep —
        // allocates nothing.
        if let Some(oracle) = map.get(layout.encoded_flags()) {
            return Arc::clone(oracle);
        }
        let oracle = Arc::new(DistanceOracle::new(&self.expanded, layout, &self.config));
        if map.len() < MAX_ENCODED_ORACLES {
            map.insert(layout.encoded_flags().to_vec(), Arc::clone(&oracle));
        }
        oracle
    }

    /// Number of memoized encoded-signature oracles (diagnostics/tests).
    pub fn encoded_oracle_count(&self) -> usize {
        self.encoded_oracles
            .lock()
            .expect("oracle map poisoned")
            .len()
    }

    /// Aggregated row/memory accounting over every oracle this cache
    /// holds (bare + all memoized encoded signatures).
    pub fn oracle_stats(&self) -> OracleStats {
        let mut total = OracleStats::default();
        if let Some(bare) = self.bare_oracle.get() {
            total.merge(&bare.stats());
        }
        let map = self.encoded_oracles.lock().expect("oracle map poisoned");
        for oracle in map.values() {
            total.merge(&oracle.stats());
        }
        total
    }
}

/// A fully compiled circuit with its evaluation statistics.
#[derive(Debug, Clone)]
pub struct CompilationResult {
    /// Strategy label (filled by [`crate::strategies::compile`]).
    pub strategy: String,
    /// The scheduled physical circuit.
    pub schedule: Schedule,
    /// Evaluation metrics (EPS, durations, gate mix).
    pub metrics: Metrics,
    /// Starting `(unit, slot)` of every logical qubit.
    pub initial_placements: Vec<(usize, usize)>,
    /// Final `(unit, slot)` of every logical qubit after routing.
    pub final_placements: Vec<(usize, usize)>,
    /// Per-unit encoded flags (fixed across the circuit).
    pub encoded_units: Vec<bool>,
    /// Compressed pairs `(slot-0 qubit, slot-1 qubit)`, including
    /// spontaneous EQM pairings.
    pub pairs: Vec<(usize, usize)>,
    /// Number of logical gates in the input circuit.
    pub logical_gates: usize,
    /// Per-qubit coherence residency trace.
    pub trace: CoherenceTrace,
}

impl CompilationResult {
    /// Number of physical units hosting at least one qubit.
    pub fn active_units(&self) -> usize {
        let mut used: Vec<bool> = vec![false; self.encoded_units.len()];
        for &(u, _) in &self.initial_placements {
            used[u] = true;
        }
        used.iter().filter(|&&b| b).count()
    }
}

impl fmt::Display for CompilationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} logical gates -> {} physical ops, {} pairs",
            self.strategy,
            self.logical_gates,
            self.schedule.len(),
            self.pairs.len()
        )?;
        writeln!(
            f,
            "  gate EPS {:.4}  coherence EPS {:.4}  total EPS {:.4}  duration {:.0} ns",
            self.metrics.gate_eps,
            self.metrics.coherence_eps,
            self.metrics.total_eps,
            self.metrics.duration_ns
        )
    }
}

/// Compiles `circuit` onto `topo` with explicit mapping options.
///
/// This is the single pipeline all strategies share; only the pair
/// selection differs between them. Compatibility wrapper over a one-shot
/// [`crate::Compiler`] session (caching off); callers that compile more
/// than once should hold a session and use
/// [`crate::Compiler::compile_with_options`].
pub fn compile_with_options(
    circuit: &Circuit,
    topo: &Topology,
    config: &CompilerConfig,
    options: &MappingOptions,
) -> CompilationResult {
    let session = crate::session::Compiler::builder()
        .config(config.clone())
        .caching(false)
        .build();
    let result = session.compile_with_options(circuit, topo, options);
    Arc::try_unwrap(result).unwrap_or_else(|arc| (*arc).clone())
}

/// [`compile_with_options`] against a pre-built [`TopologyCache`], reusing
/// the expanded graph and (for unencoded layouts) the bare distance oracle
/// instead of rebuilding them per job.
pub fn compile_with_options_cached(
    circuit: &Circuit,
    cache: &TopologyCache,
    config: &CompilerConfig,
    options: &MappingOptions,
) -> CompilationResult {
    let topo = cache.topology();
    let dag = CircuitDag::build(circuit);
    let mut layout = map_circuit_with_center(circuit, topo, config, options, cache.center());
    let initial_placements = layout.placements();
    let encoded_units = layout.encoded_flags().to_vec();
    let pairs = pairs_from_layout(&layout);

    let ops = route_cached(circuit, &dag, &mut layout, cache, config);
    let ops = merge_singles(ops);
    let schedule = schedule_ops(ops, topo.n_nodes(), &config.library);
    let trace = trace_coherence(&schedule, &initial_placements, &encoded_units);
    let metrics = Metrics::compute(&schedule, &trace, config);
    let final_placements = layout.placements();

    CompilationResult {
        strategy: String::new(),
        schedule,
        metrics,
        initial_placements,
        final_placements,
        encoded_units,
        pairs,
        logical_gates: circuit.len(),
        trace,
    }
}

/// Reads the compressed pairs out of a mapped layout.
fn pairs_from_layout(layout: &Layout) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for unit in 0..layout.n_units() {
        let q0 = layout.qubit_at(qompress_arch::Slot::zero(unit));
        let q1 = layout.qubit_at(qompress_arch::Slot::one(unit));
        if let (Some(a), Some(b)) = (q0, q1) {
            pairs.push((a, b));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::Gate;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::h(0));
        for i in 0..n - 1 {
            c.push(Gate::cx(i, i + 1));
        }
        c
    }

    #[test]
    fn qubit_only_pipeline_end_to_end() {
        let c = ghz(6);
        let topo = Topology::grid(6);
        let config = CompilerConfig::paper();
        let r = compile_with_options(&c, &topo, &config, &MappingOptions::qubit_only());
        assert!(r.schedule.validate(&topo).is_empty());
        assert!(r.metrics.gate_eps > 0.0 && r.metrics.gate_eps < 1.0);
        assert!(r.metrics.coherence_eps > 0.0 && r.metrics.coherence_eps < 1.0);
        assert!(r.metrics.duration_ns > 0.0);
        assert!(r.pairs.is_empty());
        assert_eq!(r.initial_placements.len(), 6);
    }

    #[test]
    fn paired_pipeline_end_to_end() {
        let c = ghz(6);
        let topo = Topology::grid(6);
        let config = CompilerConfig::paper();
        let opts = MappingOptions::with_pairs(vec![(0, 1), (2, 3)]);
        let r = compile_with_options(&c, &topo, &config, &opts);
        assert!(r.schedule.validate(&topo).is_empty());
        assert_eq!(r.pairs.len(), 2);
        assert!(r.metrics.ququart_state_ns > 0.0);
        // Four qubits live in two units; two more bare: 4 active units.
        assert_eq!(r.active_units(), 4);
    }

    #[test]
    fn pair_compression_reduces_two_unit_gates_on_hot_pairs() {
        // Circuit dominated by 0-1 interactions: pairing (0,1) turns CX2
        // into internal CX.
        let mut c = Circuit::new(4);
        for _ in 0..10 {
            c.push(Gate::cx(0, 1));
        }
        c.push(Gate::cx(2, 3));
        let topo = Topology::grid(4);
        let config = CompilerConfig::paper();
        let baseline = compile_with_options(&c, &topo, &config, &MappingOptions::qubit_only());
        let paired = compile_with_options(
            &c,
            &topo,
            &config,
            &MappingOptions::with_pairs(vec![(0, 1)]),
        );
        assert!(paired.metrics.gate_eps > baseline.metrics.gate_eps);
        assert_eq!(paired.metrics.count(qompress_pulse::GateClass::Cx0), 10);
    }

    #[test]
    fn coherence_trace_covers_all_qubits_for_whole_duration() {
        let c = ghz(5);
        let topo = Topology::grid(5);
        let config = CompilerConfig::paper();
        let r = compile_with_options(&c, &topo, &config, &MappingOptions::eqm());
        let d = r.metrics.duration_ns;
        for q in 0..5 {
            let total = r.trace.qubit_ns[q] + r.trace.ququart_ns[q];
            assert!((total - d).abs() < 1e-6, "qubit {q}: {total} vs {d}");
        }
    }

    #[test]
    fn display_contains_key_figures() {
        let c = ghz(4);
        let topo = Topology::grid(4);
        let config = CompilerConfig::paper();
        let mut r = compile_with_options(&c, &topo, &config, &MappingOptions::qubit_only());
        r.strategy = "test".into();
        let s = format!("{r}");
        assert!(s.contains("gate EPS"));
        assert!(s.contains("[test]"));
    }
}
