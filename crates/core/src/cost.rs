//! The success-probability cost model (paper Eq. 4) and slot-distance
//! oracle.
//!
//! A gate at a connection succeeds with
//! `S(i,j,g) = F(i,j,g) · e^{−T/T1_i} · e^{−T/T1_j}` where the `T1` of each
//! endpoint depends on whether its unit is encoded. Path quality is the sum
//! of `−log S` over the SWAP hops plus the final CX hop; distances are
//! Dijkstra over the expanded slot graph with `−log S(swap)` edge weights.

use crate::config::CompilerConfig;
use crate::layout::Layout;
use qompress_arch::{ExpandedGraph, Slot, SlotIndex};
use qompress_circuit::graph::WGraph;
use qompress_pulse::GateClass;
use std::sync::OnceLock;

/// Selects the CX gate class and operand order for a control/target slot
/// pair under the current encodings.
///
/// Returns `(class, first_unit, second_unit)` with operands ordered per the
/// class convention (encoded unit first for mixed classes).
///
/// # Panics
///
/// Panics if both slots coincide.
pub fn cx_class(layout: &Layout, control: Slot, target: Slot) -> (GateClass, usize, usize) {
    assert_ne!(control, target, "CX needs two distinct slots");
    if control.node == target.node {
        let class = match control.slot {
            SlotIndex::Zero => GateClass::Cx0,
            SlotIndex::One => GateClass::Cx1,
        };
        return (class, control.node, control.node);
    }
    let c_enc = layout.is_encoded(control.node);
    let t_enc = layout.is_encoded(target.node);
    match (c_enc, t_enc) {
        (false, false) => (GateClass::Cx2, control.node, target.node),
        (true, false) => {
            let class = match control.slot {
                SlotIndex::Zero => GateClass::CxE0Bare,
                SlotIndex::One => GateClass::CxE1Bare,
            };
            (class, control.node, target.node)
        }
        (false, true) => {
            let class = match target.slot {
                SlotIndex::Zero => GateClass::CxBareE0,
                SlotIndex::One => GateClass::CxBareE1,
            };
            // Mixed classes put the encoded unit first.
            (class, target.node, control.node)
        }
        (true, true) => {
            let class = match (control.slot, target.slot) {
                (SlotIndex::Zero, SlotIndex::Zero) => GateClass::Cx00,
                (SlotIndex::Zero, SlotIndex::One) => GateClass::Cx01,
                (SlotIndex::One, SlotIndex::Zero) => GateClass::Cx10,
                (SlotIndex::One, SlotIndex::One) => GateClass::Cx11,
            };
            (class, control.node, target.node)
        }
    }
}

/// Selects the SWAP gate class and operand order for exchanging the
/// occupants of two slots.
///
/// # Panics
///
/// Panics if the slots coincide, or if a bare unit's slot 1 is referenced.
pub fn swap_class(layout: &Layout, a: Slot, b: Slot) -> (GateClass, usize, usize) {
    assert_ne!(a, b, "SWAP needs two distinct slots");
    if a.node == b.node {
        return (GateClass::SwapIn, a.node, a.node);
    }
    let a_enc = layout.is_encoded(a.node);
    let b_enc = layout.is_encoded(b.node);
    assert!(
        (a.slot == SlotIndex::Zero || a_enc) && (b.slot == SlotIndex::Zero || b_enc),
        "slot 1 referenced on a bare unit"
    );
    match (a_enc, b_enc) {
        (false, false) => (GateClass::Swap2, a.node, b.node),
        (true, false) => {
            let class = match a.slot {
                SlotIndex::Zero => GateClass::SwapBareE0,
                SlotIndex::One => GateClass::SwapBareE1,
            };
            (class, a.node, b.node)
        }
        (false, true) => {
            let class = match b.slot {
                SlotIndex::Zero => GateClass::SwapBareE0,
                SlotIndex::One => GateClass::SwapBareE1,
            };
            (class, b.node, a.node)
        }
        (true, true) => match (a.slot, b.slot) {
            (SlotIndex::Zero, SlotIndex::Zero) => (GateClass::Swap00, a.node, b.node),
            (SlotIndex::Zero, SlotIndex::One) => (GateClass::Swap01, a.node, b.node),
            (SlotIndex::One, SlotIndex::Zero) => (GateClass::Swap01, b.node, a.node),
            (SlotIndex::One, SlotIndex::One) => (GateClass::Swap11, a.node, b.node),
        },
    }
}

/// `S(i,j,g)`: success probability of one gate of `class` spanning
/// `units`, given per-unit encodings.
pub fn gate_success(
    config: &CompilerConfig,
    layout: &Layout,
    class: GateClass,
    unit_a: usize,
    unit_b: Option<usize>,
) -> f64 {
    let spec = config.library.spec(class);
    let t1 = |unit: usize| {
        if layout.is_encoded(unit) {
            config.t1_ququart_ns()
        } else {
            config.t1_qubit_ns()
        }
    };
    let mut s = spec.fidelity * (-spec.duration_ns / t1(unit_a)).exp();
    if let Some(b) = unit_b {
        s *= (-spec.duration_ns / t1(b)).exp();
    } else {
        // Single-unit gates still expose one unit for the gate duration.
    }
    s
}

/// Negative-log success of a gate (lower is better; additive along paths).
pub fn gate_cost(
    config: &CompilerConfig,
    layout: &Layout,
    class: GateClass,
    unit_a: usize,
    unit_b: Option<usize>,
) -> f64 {
    -gate_success(config, layout, class, unit_a, unit_b).ln()
}

/// Cached all-pairs slot distances under the Eq. (4) SWAP-cost metric.
///
/// Edge weights depend only on the *encoding flags* of the endpoint units,
/// so the oracle stays valid while qubits move; call
/// [`DistanceOracle::invalidate`] after changing encodings (mapping time).
///
/// Per-source rows fill lazily through a [`OnceLock`], so lookups take
/// `&self` and a fully immutable oracle can be shared across compilation
/// threads behind an `Arc` (the batch engine reuses one bare-encoding
/// oracle per topology this way). Predecessor rows for
/// [`DistanceOracle::path`] are memoized the same way, and the single
/// Dijkstra run that fills a predecessor row also populates the matching
/// distance row — fallback routing no longer pays a fresh search per call.
#[derive(Debug)]
pub struct DistanceOracle {
    graph: WGraph,
    cache: Vec<OnceLock<Vec<f64>>>,
    prev_cache: Vec<OnceLock<Vec<usize>>>,
}

impl DistanceOracle {
    /// Builds the oracle for the current encodings.
    pub fn new(expanded: &ExpandedGraph, layout: &Layout, config: &CompilerConfig) -> Self {
        let n = expanded.n_slots();
        let mut graph = WGraph::new(n);
        for s in expanded.slots() {
            for t in expanded.neighbors(s) {
                if t.index() <= s.index() {
                    continue;
                }
                if !Self::edge_usable(layout, s, t) {
                    continue;
                }
                let (class, ua, ub) = swap_class(layout, s, t);
                let ub = if ua == ub { None } else { Some(ub) };
                let cost = gate_cost(config, layout, class, ua, ub);
                graph.add_edge(s.index(), t.index(), cost.max(0.0));
            }
        }
        DistanceOracle {
            graph,
            cache: std::iter::repeat_with(OnceLock::new).take(n).collect(),
            prev_cache: std::iter::repeat_with(OnceLock::new).take(n).collect(),
        }
    }

    /// The oracle for a topology with **no encoded units** — the encoding
    /// state every compilation starts from. Safe to share across jobs on
    /// the same topology and config.
    pub fn bare(expanded: &ExpandedGraph, config: &CompilerConfig) -> Self {
        let bare_layout = Layout::new(0, expanded.topology().n_nodes());
        DistanceOracle::new(expanded, &bare_layout, config)
    }

    /// An expanded-graph edge is traversable when neither endpoint is the
    /// unusable slot 1 of a bare unit.
    fn edge_usable(layout: &Layout, s: Slot, t: Slot) -> bool {
        let ok = |x: Slot| x.slot == SlotIndex::Zero || layout.is_encoded(x.node);
        ok(s) && ok(t)
    }

    /// Shortest-path cost (sum of `−log S(swap)`) between two slots.
    pub fn distance(&self, from: Slot, to: Slot) -> f64 {
        self.cache[from.index()].get_or_init(|| self.graph.dijkstra(from.index()))[to.index()]
    }

    /// The equivalent *success probability* of the best SWAP path,
    /// `exp(−distance) ∈ (0, 1]`.
    pub fn path_success(&self, from: Slot, to: Slot) -> f64 {
        (-self.distance(from, to)).exp()
    }

    /// Shortest path between two slots (vertex list), for fallback routing.
    ///
    /// Predecessor rows are memoized per source slot, so repeated calls
    /// (the fallback router re-queries after every hop) cost one Dijkstra
    /// total per source. The run that fills a predecessor row also fills
    /// the source's distance row — the two entry points share one search.
    pub fn path(&self, from: Slot, to: Slot) -> Option<Vec<Slot>> {
        let prev = self.prev_cache[from.index()].get_or_init(|| {
            let (dist, prev) = self.graph.dijkstra_with_prev(from.index());
            // Bit-identical to what `distance` would compute (shared
            // Dijkstra core), so seeding the distance row is free; ignore
            // the error if that row already exists.
            let _ = self.cache[from.index()].set(dist);
            prev
        });
        WGraph::path_from_prev(prev, from.index(), to.index())
            .map(|p| p.into_iter().map(Slot::from_index).collect())
    }

    /// Drops all cached distances and predecessor rows (after encoding
    /// changes).
    pub fn invalidate(&mut self) {
        for c in &mut self.cache {
            *c = OnceLock::new();
        }
        for c in &mut self.prev_cache {
            *c = OnceLock::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_arch::Topology;

    fn setup(encode: &[usize]) -> (ExpandedGraph, Layout, CompilerConfig) {
        let topo = Topology::line(4);
        let expanded = ExpandedGraph::new(topo);
        let mut layout = Layout::new(0, 4);
        for &u in encode {
            layout.set_encoded(u);
        }
        (expanded, layout, CompilerConfig::paper())
    }

    #[test]
    fn cx_class_bare_bare() {
        let (_, layout, _) = setup(&[]);
        let (class, a, b) = cx_class(&layout, Slot::zero(0), Slot::zero(1));
        assert_eq!(class, GateClass::Cx2);
        assert_eq!((a, b), (0, 1));
    }

    #[test]
    fn cx_class_internal() {
        let (_, layout, _) = setup(&[1]);
        let (class, a, _) = cx_class(&layout, Slot::zero(1), Slot::one(1));
        assert_eq!(class, GateClass::Cx0);
        assert_eq!(a, 1);
        let (class, _, _) = cx_class(&layout, Slot::one(1), Slot::zero(1));
        assert_eq!(class, GateClass::Cx1);
    }

    #[test]
    fn cx_class_mixed_orders_encoded_first() {
        let (_, layout, _) = setup(&[0]);
        // Control encoded slot 1, target bare.
        let (class, a, b) = cx_class(&layout, Slot::one(0), Slot::zero(1));
        assert_eq!(class, GateClass::CxE1Bare);
        assert_eq!((a, b), (0, 1));
        // Control bare, target encoded slot 0: encoded unit still first.
        let (class, a, b) = cx_class(&layout, Slot::zero(1), Slot::zero(0));
        assert_eq!(class, GateClass::CxBareE0);
        assert_eq!((a, b), (0, 1));
    }

    #[test]
    fn cx_class_ququart_ququart() {
        let (_, layout, _) = setup(&[0, 1]);
        let (class, a, b) = cx_class(&layout, Slot::one(0), Slot::zero(1));
        assert_eq!(class, GateClass::Cx10);
        assert_eq!((a, b), (0, 1));
        let (class, ..) = cx_class(&layout, Slot::zero(0), Slot::one(1));
        assert_eq!(class, GateClass::Cx01);
    }

    #[test]
    fn swap_class_variants() {
        let (_, layout, _) = setup(&[0, 2]);
        assert_eq!(
            swap_class(&layout, Slot::zero(1), Slot::zero(3)).0,
            GateClass::Swap2
        );
        assert_eq!(
            swap_class(&layout, Slot::zero(0), Slot::one(0)).0,
            GateClass::SwapIn
        );
        let (class, a, b) = swap_class(&layout, Slot::zero(1), Slot::one(0));
        assert_eq!(class, GateClass::SwapBareE1);
        assert_eq!((a, b), (0, 1)); // encoded unit first
        let (class, a, b) = swap_class(&layout, Slot::one(0), Slot::zero(2));
        assert_eq!(class, GateClass::Swap01);
        assert_eq!((a, b), (2, 0)); // slot-0 side first
    }

    #[test]
    fn gate_success_penalizes_encoded_endpoints() {
        let (_, mut layout, config) = setup(&[]);
        let bare = gate_success(&config, &layout, GateClass::Cx2, 0, Some(1));
        layout.set_encoded(0);
        let enc = gate_success(&config, &layout, GateClass::Cx2, 0, Some(1));
        assert!(enc < bare);
        assert!(bare < 0.99 && bare > 0.98);
    }

    #[test]
    fn distance_prefers_short_paths() {
        let (expanded, layout, config) = setup(&[]);
        let oracle = DistanceOracle::new(&expanded, &layout, &config);
        let d01 = oracle.distance(Slot::zero(0), Slot::zero(1));
        let d03 = oracle.distance(Slot::zero(0), Slot::zero(3));
        assert!(d01 < d03);
        assert!(oracle.path_success(Slot::zero(0), Slot::zero(1)) > 0.9);
    }

    #[test]
    fn internal_hop_is_cheap() {
        let (expanded, mut layout, config) = setup(&[]);
        layout.set_encoded(1);
        let oracle = DistanceOracle::new(&expanded, &layout, &config);
        let internal = oracle.distance(Slot::zero(1), Slot::one(1));
        let external = oracle.distance(Slot::zero(0), Slot::zero(1));
        assert!(internal < external);
    }

    #[test]
    fn bare_slot_one_unreachable() {
        let (expanded, layout, config) = setup(&[]);
        let oracle = DistanceOracle::new(&expanded, &layout, &config);
        // Slot 1 of a bare unit has no usable edges.
        let d = oracle.distance(Slot::zero(0), Slot::one(2));
        assert!(d.is_infinite());
    }

    #[test]
    fn path_recovery_matches_distance() {
        let (expanded, layout, config) = setup(&[]);
        let oracle = DistanceOracle::new(&expanded, &layout, &config);
        let p = oracle.path(Slot::zero(0), Slot::zero(3)).unwrap();
        assert_eq!(p.first(), Some(&Slot::zero(0)));
        assert_eq!(p.last(), Some(&Slot::zero(3)));
        assert_eq!(p.len(), 4); // line of 4 units, slot0 chain
    }

    #[test]
    fn repeated_path_calls_reuse_memoized_rows() {
        let (expanded, layout, config) = setup(&[]);
        let oracle = DistanceOracle::new(&expanded, &layout, &config);
        let first = oracle.path(Slot::zero(0), Slot::zero(3)).unwrap();
        for _ in 0..3 {
            assert_eq!(oracle.path(Slot::zero(0), Slot::zero(3)).unwrap(), first);
        }
        // Different destination, same memoized source row.
        let shorter = oracle.path(Slot::zero(0), Slot::zero(2)).unwrap();
        assert_eq!(shorter.len(), 3);
    }

    #[test]
    fn path_call_seeds_distance_row_bitwise() {
        let (expanded, layout, config) = setup(&[]);
        // Oracle A: path first (seeds the distance row from the shared
        // Dijkstra); oracle B: distance only. The rows must agree bitwise.
        let a = DistanceOracle::new(&expanded, &layout, &config);
        let b = DistanceOracle::new(&expanded, &layout, &config);
        let _ = a.path(Slot::zero(0), Slot::zero(3));
        for t in expanded.slots() {
            let da = a.distance(Slot::zero(0), t);
            let db = b.distance(Slot::zero(0), t);
            assert_eq!(da.to_bits(), db.to_bits(), "row drifted at {t}");
        }
    }

    #[test]
    fn invalidate_clears_predecessor_rows() {
        let (expanded, layout, config) = setup(&[]);
        let mut oracle = DistanceOracle::new(&expanded, &layout, &config);
        let before = oracle.path(Slot::zero(0), Slot::zero(3)).unwrap();
        oracle.invalidate();
        // Rows rebuild transparently after invalidation.
        assert_eq!(oracle.path(Slot::zero(0), Slot::zero(3)).unwrap(), before);
        assert!(oracle.distance(Slot::zero(0), Slot::zero(1)).is_finite());
    }
}
