//! The success-probability cost model (paper Eq. 4) and slot-distance
//! oracle.
//!
//! A gate at a connection succeeds with
//! `S(i,j,g) = F(i,j,g) · e^{−T/T1_i} · e^{−T/T1_j}` where the `T1` of each
//! endpoint depends on whether its unit is encoded. Path quality is the sum
//! of `−log S` over the SWAP hops plus the final CX hop; distances are
//! Dijkstra over the expanded slot graph with `−log S(swap)` edge weights.

use crate::config::CompilerConfig;
use crate::layout::Layout;
use qompress_arch::{ExpandedGraph, Slot, SlotIndex};
use qompress_circuit::graph::WGraph;
use qompress_pulse::GateClass;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// Selects the CX gate class and operand order for a control/target slot
/// pair under the current encodings.
///
/// Returns `(class, first_unit, second_unit)` with operands ordered per the
/// class convention (encoded unit first for mixed classes).
///
/// # Panics
///
/// Panics if both slots coincide.
pub fn cx_class(layout: &Layout, control: Slot, target: Slot) -> (GateClass, usize, usize) {
    assert_ne!(control, target, "CX needs two distinct slots");
    if control.node == target.node {
        let class = match control.slot {
            SlotIndex::Zero => GateClass::Cx0,
            SlotIndex::One => GateClass::Cx1,
        };
        return (class, control.node, control.node);
    }
    let c_enc = layout.is_encoded(control.node);
    let t_enc = layout.is_encoded(target.node);
    match (c_enc, t_enc) {
        (false, false) => (GateClass::Cx2, control.node, target.node),
        (true, false) => {
            let class = match control.slot {
                SlotIndex::Zero => GateClass::CxE0Bare,
                SlotIndex::One => GateClass::CxE1Bare,
            };
            (class, control.node, target.node)
        }
        (false, true) => {
            let class = match target.slot {
                SlotIndex::Zero => GateClass::CxBareE0,
                SlotIndex::One => GateClass::CxBareE1,
            };
            // Mixed classes put the encoded unit first.
            (class, target.node, control.node)
        }
        (true, true) => {
            let class = match (control.slot, target.slot) {
                (SlotIndex::Zero, SlotIndex::Zero) => GateClass::Cx00,
                (SlotIndex::Zero, SlotIndex::One) => GateClass::Cx01,
                (SlotIndex::One, SlotIndex::Zero) => GateClass::Cx10,
                (SlotIndex::One, SlotIndex::One) => GateClass::Cx11,
            };
            (class, control.node, target.node)
        }
    }
}

/// Selects the SWAP gate class and operand order for exchanging the
/// occupants of two slots.
///
/// # Panics
///
/// Panics if the slots coincide, or if a bare unit's slot 1 is referenced.
pub fn swap_class(layout: &Layout, a: Slot, b: Slot) -> (GateClass, usize, usize) {
    assert_ne!(a, b, "SWAP needs two distinct slots");
    if a.node == b.node {
        return (GateClass::SwapIn, a.node, a.node);
    }
    let a_enc = layout.is_encoded(a.node);
    let b_enc = layout.is_encoded(b.node);
    assert!(
        (a.slot == SlotIndex::Zero || a_enc) && (b.slot == SlotIndex::Zero || b_enc),
        "slot 1 referenced on a bare unit"
    );
    match (a_enc, b_enc) {
        (false, false) => (GateClass::Swap2, a.node, b.node),
        (true, false) => {
            let class = match a.slot {
                SlotIndex::Zero => GateClass::SwapBareE0,
                SlotIndex::One => GateClass::SwapBareE1,
            };
            (class, a.node, b.node)
        }
        (false, true) => {
            let class = match b.slot {
                SlotIndex::Zero => GateClass::SwapBareE0,
                SlotIndex::One => GateClass::SwapBareE1,
            };
            (class, b.node, a.node)
        }
        (true, true) => match (a.slot, b.slot) {
            (SlotIndex::Zero, SlotIndex::Zero) => (GateClass::Swap00, a.node, b.node),
            (SlotIndex::Zero, SlotIndex::One) => (GateClass::Swap01, a.node, b.node),
            (SlotIndex::One, SlotIndex::Zero) => (GateClass::Swap01, b.node, a.node),
            (SlotIndex::One, SlotIndex::One) => (GateClass::Swap11, a.node, b.node),
        },
    }
}

/// `S(i,j,g)`: success probability of one gate of `class` spanning
/// `units`, given per-unit encodings.
pub fn gate_success(
    config: &CompilerConfig,
    layout: &Layout,
    class: GateClass,
    unit_a: usize,
    unit_b: Option<usize>,
) -> f64 {
    let spec = config.library.spec(class);
    let t1 = |unit: usize| {
        if layout.is_encoded(unit) {
            config.t1_ququart_ns()
        } else {
            config.t1_qubit_ns()
        }
    };
    let mut s = spec.fidelity * (-spec.duration_ns / t1(unit_a)).exp();
    if let Some(b) = unit_b {
        s *= (-spec.duration_ns / t1(b)).exp();
    } else {
        // Single-unit gates still expose one unit for the gate duration.
    }
    s
}

/// Negative-log success of a gate (lower is better; additive along paths).
pub fn gate_cost(
    config: &CompilerConfig,
    layout: &Layout,
    class: GateClass,
    unit_a: usize,
    unit_b: Option<usize>,
) -> f64 {
    -gate_success(config, layout, class, unit_a, unit_b).ln()
}

/// Which answering strategy a [`DistanceOracle`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// Lazy full Dijkstra rows per source (byte-identity pinned; up to
    /// O(V²) memory once every source is touched). Selected for devices
    /// with at most [`CompilerConfig::oracle_exact_threshold`] units.
    Exact,
    /// K landmark rows (farthest-point sampling, O(K·V) memory) answer
    /// [`DistanceOracle::distance`] with the admissible ALT bound
    /// `max_L |d(L,a)−d(L,b)| ≤ d(a,b)`; a small LRU of exact hot
    /// rows serves [`DistanceOracle::distance_exact`] and
    /// [`DistanceOracle::path`] where the router needs tie-break-grade
    /// precision.
    Landmark,
}

/// Memory/row accounting for one or more [`DistanceOracle`]s, surfaced
/// through `Compiler::oracle_stats()` and the wire `stats` op alongside
/// the result-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Oracles currently in exact mode.
    pub exact_oracles: usize,
    /// Oracles currently in landmark mode.
    pub landmark_oracles: usize,
    /// Materialized exact rows: lazily filled distance and predecessor
    /// rows in exact mode, plus distance+predecessor pairs held by the
    /// landmark-mode hot LRU.
    pub rows_materialized: usize,
    /// Precomputed landmark distance rows across landmark-mode oracles.
    pub landmark_rows: usize,
    /// Estimated bytes held by all counted rows (8 bytes per entry).
    pub approx_bytes: usize,
}

impl OracleStats {
    /// Accumulates another oracle's counters into this aggregate.
    pub fn merge(&mut self, other: &OracleStats) {
        // Exhaustive destructuring: a new counter fails to compile here
        // until aggregation covers it.
        let OracleStats {
            exact_oracles,
            landmark_oracles,
            rows_materialized,
            landmark_rows,
            approx_bytes,
        } = other;
        self.exact_oracles += exact_oracles;
        self.landmark_oracles += landmark_oracles;
        self.rows_materialized += rows_materialized;
        self.landmark_rows += landmark_rows;
        self.approx_bytes += approx_bytes;
    }

    /// Serializes to a stable JSON object for the wire `stats` op.
    pub fn to_json(&self) -> String {
        // Exhaustive destructuring: a new field fails to compile here
        // until the JSON shape covers it.
        let OracleStats {
            exact_oracles,
            landmark_oracles,
            rows_materialized,
            landmark_rows,
            approx_bytes,
        } = self;
        format!(
            "{{\"exact_oracles\":{exact_oracles},\"landmark_oracles\":{landmark_oracles},\
             \"rows_materialized\":{rows_materialized},\"landmark_rows\":{landmark_rows},\
             \"approx_bytes\":{approx_bytes}}}"
        )
    }
}

/// Precomputed landmark rows: `rows[k][v]` is the exact Dijkstra distance
/// from landmark `verts[k]` to vertex `v`.
#[derive(Debug)]
struct Landmarks {
    verts: Vec<usize>,
    rows: Vec<Vec<f64>>,
}

/// One exact Dijkstra result: per-target distances plus the predecessor
/// row that reconstructs shortest paths from the same run.
type ExactRow = Arc<(Vec<f64>, Vec<usize>)>;

/// Bounded cache of exact `(distances, predecessors)` rows for hot
/// sources in landmark mode. Values are pure Dijkstra results, so cache
/// state (shared across jobs) can never change an answer — only whether
/// it is recomputed.
#[derive(Debug, Default)]
struct HotRows {
    map: HashMap<usize, ExactRow>,
    order: VecDeque<usize>,
}

/// Exact hot rows retained per landmark-mode slot oracle. Front layers
/// rarely involve more than a handful of distinct source slots at once.
const HOT_ROW_BOUND: usize = 32;

/// Cached slot distances under the Eq. (4) SWAP-cost metric.
///
/// Edge weights depend only on the *encoding flags* of the endpoint units,
/// so the oracle stays valid while qubits move; call
/// [`DistanceOracle::invalidate`] after changing encodings (mapping time).
///
/// Two modes, selected at construction from the device size against
/// [`CompilerConfig::oracle_exact_threshold`]:
///
/// * **Exact** — per-source rows fill lazily through a [`OnceLock`], so
///   lookups take `&self` and a fully immutable oracle can be shared
///   across compilation threads behind an `Arc` (the batch engine reuses
///   one bare-encoding oracle per topology this way). Predecessor rows
///   for [`DistanceOracle::path`] are memoized the same way, and the
///   single Dijkstra run that fills a predecessor row also populates the
///   matching distance row. All exact-mode behavior is byte-identity
///   pinned against the naive reference (`tests/routing_determinism.rs`).
/// * **Landmark** — for utility-scale devices the all-pairs footprint is
///   prohibitive (a 1121-unit heavy-hex is 2242 slots ⇒ ~40 MB of
///   distance rows), so [`DistanceOracle::distance`] answers with the
///   admissible ALT landmark bound (never an overestimate)
///   from K farthest-point-sampled rows built once on first use, while
///   [`DistanceOracle::distance_exact`] / [`DistanceOracle::path`] fall
///   back to a bounded LRU of exact rows. Which entry point answers is a
///   static property of the call site — never of shared cache state — so
///   routing output stays deterministic under concurrency.
#[derive(Debug)]
pub struct DistanceOracle {
    graph: WGraph,
    mode: OracleMode,
    /// Exact-mode lazy rows (empty in landmark mode).
    cache: Vec<OnceLock<Vec<f64>>>,
    prev_cache: Vec<OnceLock<Vec<usize>>>,
    /// Landmark-mode state (unused in exact mode).
    landmark_count: usize,
    landmarks: OnceLock<Landmarks>,
    hot: Mutex<HotRows>,
    hot_capacity: usize,
}

impl DistanceOracle {
    /// Builds the oracle for the current encodings. Mode follows the
    /// device's unit count against `config.oracle_exact_threshold`.
    pub fn new(expanded: &ExpandedGraph, layout: &Layout, config: &CompilerConfig) -> Self {
        let n = expanded.n_slots();
        let mut graph = WGraph::new(n);
        for s in expanded.slots() {
            for t in expanded.neighbors(s) {
                if t.index() <= s.index() {
                    continue;
                }
                if !Self::edge_usable(layout, s, t) {
                    continue;
                }
                let (class, ua, ub) = swap_class(layout, s, t);
                let ub = if ua == ub { None } else { Some(ub) };
                let cost = gate_cost(config, layout, class, ua, ub);
                graph.add_edge(s.index(), t.index(), cost.max(0.0));
            }
        }
        let exact = expanded.topology().n_nodes() <= config.oracle_exact_threshold;
        Self::from_graph(graph, exact, config.oracle_landmarks, HOT_ROW_BOUND)
    }

    /// The oracle for a topology with **no encoded units** — the encoding
    /// state every compilation starts from. Safe to share across jobs on
    /// the same topology and config.
    pub fn bare(expanded: &ExpandedGraph, config: &CompilerConfig) -> Self {
        let bare_layout = Layout::new(0, expanded.topology().n_nodes());
        DistanceOracle::new(expanded, &bare_layout, config)
    }

    /// Wraps an arbitrary prebuilt weighted graph (the mapping stage's
    /// unit-level metric graph) in the same two-mode cache. Mode follows
    /// the vertex count against `config.oracle_exact_threshold`; the hot
    /// LRU is unbounded (capacity = vertex count) because mapping only
    /// ever requests exact rows for the few already-placed units.
    pub fn over_graph(graph: WGraph, config: &CompilerConfig) -> Self {
        let exact = graph.len() <= config.oracle_exact_threshold;
        let cap = graph.len().max(1);
        Self::from_graph(graph, exact, config.oracle_landmarks, cap)
    }

    fn from_graph(graph: WGraph, exact: bool, landmarks: usize, hot_capacity: usize) -> Self {
        let n = graph.len();
        let (mode, rows) = if exact {
            (OracleMode::Exact, n)
        } else {
            (OracleMode::Landmark, 0)
        };
        DistanceOracle {
            graph,
            mode,
            cache: std::iter::repeat_with(OnceLock::new).take(rows).collect(),
            prev_cache: std::iter::repeat_with(OnceLock::new).take(rows).collect(),
            landmark_count: Self::landmark_budget(landmarks, n),
            landmarks: OnceLock::new(),
            hot: Mutex::new(HotRows::default()),
            hot_capacity,
        }
    }

    /// K for landmark mode: the configured count, or `2 * ceil(sqrt(n))`
    /// clamped to `16..=128` when the config says "auto" (0). The doubled
    /// coefficient keeps mid-size (~100–300 unit) estimates within a few
    /// percent of exact communication while the footprint stays a small
    /// fraction of the all-pairs matrix at utility scale.
    fn landmark_budget(configured: usize, n: usize) -> usize {
        let k = if configured == 0 {
            (2 * ((n as f64).sqrt().ceil() as usize)).clamp(16, 128)
        } else {
            configured
        };
        k.min(n.max(1))
    }

    /// The answering strategy selected at construction.
    pub fn mode(&self) -> OracleMode {
        self.mode
    }

    /// An expanded-graph edge is traversable when neither endpoint is the
    /// unusable slot 1 of a bare unit.
    fn edge_usable(layout: &Layout, s: Slot, t: Slot) -> bool {
        let ok = |x: Slot| x.slot == SlotIndex::Zero || layout.is_encoded(x.node);
        ok(s) && ok(t)
    }

    /// Shortest-path cost (sum of `−log S(swap)`) between two slots: the
    /// exact Dijkstra value in exact mode, the admissible ALT landmark
    /// bound in landmark mode. Lookahead scoring uses this entry point.
    pub fn distance(&self, from: Slot, to: Slot) -> f64 {
        self.distance_idx(from.index(), to.index())
    }

    /// Exact shortest-path cost regardless of mode. In exact mode this is
    /// [`DistanceOracle::distance`] verbatim (same lazily filled row); in
    /// landmark mode it consults the bounded hot-row LRU. Front-layer
    /// scoring uses this entry point.
    pub fn distance_exact(&self, from: Slot, to: Slot) -> f64 {
        self.distance_exact_idx(from.index(), to.index())
    }

    /// [`DistanceOracle::distance`] over raw vertex indices (the mapping
    /// stage's unit-level oracle addresses units, not slots).
    pub fn distance_idx(&self, from: usize, to: usize) -> f64 {
        match self.mode {
            OracleMode::Exact => self.exact_row(from)[to],
            OracleMode::Landmark => self.estimate(from, to),
        }
    }

    /// [`DistanceOracle::distance_exact`] over raw vertex indices.
    pub fn distance_exact_idx(&self, from: usize, to: usize) -> f64 {
        match self.mode {
            OracleMode::Exact => self.exact_row(from)[to],
            OracleMode::Landmark => self.hot_row(from).0[to],
        }
    }

    fn exact_row(&self, from: usize) -> &[f64] {
        self.cache[from].get_or_init(|| self.graph.dijkstra(from))
    }

    /// Admissible triangle-inequality bound `max_L |d(L,a) - d(L,b)|`
    /// (the classic ALT heuristic): never more than the true distance,
    /// and exactly 0 for `a == b`. A landmark that reaches exactly one of
    /// the pair proves them disconnected; one that reaches neither says
    /// nothing and is skipped.
    fn estimate(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        let lm = self.landmarks();
        let mut best = 0.0f64;
        for row in &lm.rows {
            let (da, db) = (row[a], row[b]);
            let bound = if da.is_finite() && db.is_finite() {
                (da - db).abs()
            } else if da.is_finite() != db.is_finite() {
                f64::INFINITY
            } else {
                continue;
            };
            if bound > best {
                best = bound;
            }
        }
        best
    }

    /// Lazily selects landmarks by farthest-point sampling and runs their
    /// K Dijkstras — paid once per oracle, and only if estimates are ever
    /// requested. Seeded at the lowest non-isolated vertex (slot 1 of a
    /// bare unit is isolated and can never be a landmark); each next
    /// landmark maximizes the finite distance to the chosen set, ties
    /// broken toward the smallest index, so selection is deterministic.
    fn landmarks(&self) -> &Landmarks {
        self.landmarks.get_or_init(|| {
            let n = self.graph.len();
            let seed = (0..n).find(|&v| self.graph.degree(v) > 0);
            let Some(seed) = seed else {
                return Landmarks {
                    verts: Vec::new(),
                    rows: Vec::new(),
                };
            };
            let first = self.graph.dijkstra(seed);
            let mut min_dist = first.clone();
            let mut verts = vec![seed];
            let mut rows = vec![first];
            while verts.len() < self.landmark_count {
                let mut best = None;
                let mut best_d = 0.0;
                for (v, &d) in min_dist.iter().enumerate() {
                    if d.is_finite() && d > best_d {
                        best_d = d;
                        best = Some(v);
                    }
                }
                let Some(v) = best else { break };
                let row = self.graph.dijkstra(v);
                for (m, &d) in min_dist.iter_mut().zip(&row) {
                    if d < *m {
                        *m = d;
                    }
                }
                verts.push(v);
                rows.push(row);
            }
            Landmarks { verts, rows }
        })
    }

    /// The landmark vertex set, if landmark rows have been built (empty
    /// otherwise, and always in exact mode). Diagnostics only — reading
    /// it never triggers the landmark build.
    pub fn landmark_vertices(&self) -> &[usize] {
        self.landmarks.get().map_or(&[], |lm| &lm.verts)
    }

    /// Returns the exact `(distances, predecessors)` row for `src` from
    /// the hot LRU, computing and inserting it on miss. Values are pure
    /// functions of the graph, so shared LRU state affects cost, never
    /// answers.
    fn hot_row(&self, src: usize) -> ExactRow {
        let mut hot = self.hot.lock().expect("hot-row lock poisoned");
        if let Some(row) = hot.map.get(&src) {
            let row = Arc::clone(row);
            // Refresh recency.
            if let Some(pos) = hot.order.iter().position(|&v| v == src) {
                hot.order.remove(pos);
                hot.order.push_back(src);
            }
            return row;
        }
        let row = Arc::new(self.graph.dijkstra_with_prev(src));
        while hot.map.len() >= self.hot_capacity {
            match hot.order.pop_front() {
                Some(old) => {
                    hot.map.remove(&old);
                }
                None => break,
            }
        }
        hot.map.insert(src, Arc::clone(&row));
        hot.order.push_back(src);
        row
    }

    /// The equivalent *success probability* of the best SWAP path,
    /// `exp(−distance) ∈ (0, 1]` (estimate-grade in landmark mode).
    pub fn path_success(&self, from: Slot, to: Slot) -> f64 {
        (-self.distance(from, to)).exp()
    }

    /// Shortest path between two slots (vertex list), for fallback routing.
    ///
    /// In exact mode predecessor rows are memoized per source slot, so
    /// repeated calls (the fallback router re-queries after every hop)
    /// cost one Dijkstra total per source; the run that fills a
    /// predecessor row also fills the source's distance row — the two
    /// entry points share one search. In landmark mode the hot LRU serves
    /// the same purpose with bounded memory.
    pub fn path(&self, from: Slot, to: Slot) -> Option<Vec<Slot>> {
        let prev: &[usize] = match self.mode {
            OracleMode::Exact => self.prev_cache[from.index()].get_or_init(|| {
                let (dist, prev) = self.graph.dijkstra_with_prev(from.index());
                // Bit-identical to what `distance` would compute (shared
                // Dijkstra core), so seeding the distance row is free;
                // ignore the error if that row already exists.
                let _ = self.cache[from.index()].set(dist);
                prev
            }),
            OracleMode::Landmark => {
                let row = self.hot_row(from.index());
                return WGraph::path_from_prev(&row.1, from.index(), to.index())
                    .map(|p| p.into_iter().map(Slot::from_index).collect());
            }
        };
        WGraph::path_from_prev(prev, from.index(), to.index())
            .map(|p| p.into_iter().map(Slot::from_index).collect())
    }

    /// Drops all cached distances, predecessor rows, hot rows, and
    /// landmark rows (after encoding changes).
    pub fn invalidate(&mut self) {
        for c in &mut self.cache {
            *c = OnceLock::new();
        }
        for c in &mut self.prev_cache {
            *c = OnceLock::new();
        }
        self.landmarks = OnceLock::new();
        let mut hot = self.hot.lock().expect("hot-row lock poisoned");
        hot.map.clear();
        hot.order.clear();
    }

    /// Current row/memory accounting for this oracle. Computed on demand
    /// by scanning fill states — no counters on the hot path.
    pub fn stats(&self) -> OracleStats {
        let n = self.graph.len();
        let dist_rows = self.cache.iter().filter(|c| c.get().is_some()).count();
        let prev_rows = self.prev_cache.iter().filter(|c| c.get().is_some()).count();
        let hot_entries = self.hot.lock().expect("hot-row lock poisoned").map.len();
        let landmark_rows = self.landmarks.get().map_or(0, |lm| lm.rows.len());
        // Each hot entry holds one distance and one predecessor row.
        let rows_materialized = dist_rows + prev_rows + 2 * hot_entries;
        OracleStats {
            exact_oracles: usize::from(self.mode == OracleMode::Exact),
            landmark_oracles: usize::from(self.mode == OracleMode::Landmark),
            rows_materialized,
            landmark_rows,
            approx_bytes: (rows_materialized + landmark_rows) * n * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_arch::Topology;

    fn setup(encode: &[usize]) -> (ExpandedGraph, Layout, CompilerConfig) {
        let topo = Topology::line(4);
        let expanded = ExpandedGraph::new(topo);
        let mut layout = Layout::new(0, 4);
        for &u in encode {
            layout.set_encoded(u);
        }
        (expanded, layout, CompilerConfig::paper())
    }

    #[test]
    fn cx_class_bare_bare() {
        let (_, layout, _) = setup(&[]);
        let (class, a, b) = cx_class(&layout, Slot::zero(0), Slot::zero(1));
        assert_eq!(class, GateClass::Cx2);
        assert_eq!((a, b), (0, 1));
    }

    #[test]
    fn cx_class_internal() {
        let (_, layout, _) = setup(&[1]);
        let (class, a, _) = cx_class(&layout, Slot::zero(1), Slot::one(1));
        assert_eq!(class, GateClass::Cx0);
        assert_eq!(a, 1);
        let (class, _, _) = cx_class(&layout, Slot::one(1), Slot::zero(1));
        assert_eq!(class, GateClass::Cx1);
    }

    #[test]
    fn cx_class_mixed_orders_encoded_first() {
        let (_, layout, _) = setup(&[0]);
        // Control encoded slot 1, target bare.
        let (class, a, b) = cx_class(&layout, Slot::one(0), Slot::zero(1));
        assert_eq!(class, GateClass::CxE1Bare);
        assert_eq!((a, b), (0, 1));
        // Control bare, target encoded slot 0: encoded unit still first.
        let (class, a, b) = cx_class(&layout, Slot::zero(1), Slot::zero(0));
        assert_eq!(class, GateClass::CxBareE0);
        assert_eq!((a, b), (0, 1));
    }

    #[test]
    fn cx_class_ququart_ququart() {
        let (_, layout, _) = setup(&[0, 1]);
        let (class, a, b) = cx_class(&layout, Slot::one(0), Slot::zero(1));
        assert_eq!(class, GateClass::Cx10);
        assert_eq!((a, b), (0, 1));
        let (class, ..) = cx_class(&layout, Slot::zero(0), Slot::one(1));
        assert_eq!(class, GateClass::Cx01);
    }

    #[test]
    fn swap_class_variants() {
        let (_, layout, _) = setup(&[0, 2]);
        assert_eq!(
            swap_class(&layout, Slot::zero(1), Slot::zero(3)).0,
            GateClass::Swap2
        );
        assert_eq!(
            swap_class(&layout, Slot::zero(0), Slot::one(0)).0,
            GateClass::SwapIn
        );
        let (class, a, b) = swap_class(&layout, Slot::zero(1), Slot::one(0));
        assert_eq!(class, GateClass::SwapBareE1);
        assert_eq!((a, b), (0, 1)); // encoded unit first
        let (class, a, b) = swap_class(&layout, Slot::one(0), Slot::zero(2));
        assert_eq!(class, GateClass::Swap01);
        assert_eq!((a, b), (2, 0)); // slot-0 side first
    }

    #[test]
    fn gate_success_penalizes_encoded_endpoints() {
        let (_, mut layout, config) = setup(&[]);
        let bare = gate_success(&config, &layout, GateClass::Cx2, 0, Some(1));
        layout.set_encoded(0);
        let enc = gate_success(&config, &layout, GateClass::Cx2, 0, Some(1));
        assert!(enc < bare);
        assert!(bare < 0.99 && bare > 0.98);
    }

    #[test]
    fn distance_prefers_short_paths() {
        let (expanded, layout, config) = setup(&[]);
        let oracle = DistanceOracle::new(&expanded, &layout, &config);
        let d01 = oracle.distance(Slot::zero(0), Slot::zero(1));
        let d03 = oracle.distance(Slot::zero(0), Slot::zero(3));
        assert!(d01 < d03);
        assert!(oracle.path_success(Slot::zero(0), Slot::zero(1)) > 0.9);
    }

    #[test]
    fn internal_hop_is_cheap() {
        let (expanded, mut layout, config) = setup(&[]);
        layout.set_encoded(1);
        let oracle = DistanceOracle::new(&expanded, &layout, &config);
        let internal = oracle.distance(Slot::zero(1), Slot::one(1));
        let external = oracle.distance(Slot::zero(0), Slot::zero(1));
        assert!(internal < external);
    }

    #[test]
    fn bare_slot_one_unreachable() {
        let (expanded, layout, config) = setup(&[]);
        let oracle = DistanceOracle::new(&expanded, &layout, &config);
        // Slot 1 of a bare unit has no usable edges.
        let d = oracle.distance(Slot::zero(0), Slot::one(2));
        assert!(d.is_infinite());
    }

    #[test]
    fn path_recovery_matches_distance() {
        let (expanded, layout, config) = setup(&[]);
        let oracle = DistanceOracle::new(&expanded, &layout, &config);
        let p = oracle.path(Slot::zero(0), Slot::zero(3)).unwrap();
        assert_eq!(p.first(), Some(&Slot::zero(0)));
        assert_eq!(p.last(), Some(&Slot::zero(3)));
        assert_eq!(p.len(), 4); // line of 4 units, slot0 chain
    }

    #[test]
    fn repeated_path_calls_reuse_memoized_rows() {
        let (expanded, layout, config) = setup(&[]);
        let oracle = DistanceOracle::new(&expanded, &layout, &config);
        let first = oracle.path(Slot::zero(0), Slot::zero(3)).unwrap();
        for _ in 0..3 {
            assert_eq!(oracle.path(Slot::zero(0), Slot::zero(3)).unwrap(), first);
        }
        // Different destination, same memoized source row.
        let shorter = oracle.path(Slot::zero(0), Slot::zero(2)).unwrap();
        assert_eq!(shorter.len(), 3);
    }

    #[test]
    fn path_call_seeds_distance_row_bitwise() {
        let (expanded, layout, config) = setup(&[]);
        // Oracle A: path first (seeds the distance row from the shared
        // Dijkstra); oracle B: distance only. The rows must agree bitwise.
        let a = DistanceOracle::new(&expanded, &layout, &config);
        let b = DistanceOracle::new(&expanded, &layout, &config);
        let _ = a.path(Slot::zero(0), Slot::zero(3));
        for t in expanded.slots() {
            let da = a.distance(Slot::zero(0), t);
            let db = b.distance(Slot::zero(0), t);
            assert_eq!(da.to_bits(), db.to_bits(), "row drifted at {t}");
        }
    }

    #[test]
    fn invalidate_clears_predecessor_rows() {
        let (expanded, layout, config) = setup(&[]);
        let mut oracle = DistanceOracle::new(&expanded, &layout, &config);
        let before = oracle.path(Slot::zero(0), Slot::zero(3)).unwrap();
        oracle.invalidate();
        // Rows rebuild transparently after invalidation.
        assert_eq!(oracle.path(Slot::zero(0), Slot::zero(3)).unwrap(), before);
        assert!(oracle.distance(Slot::zero(0), Slot::zero(1)).is_finite());
    }

    /// Config that forces every oracle into landmark mode.
    fn landmark_config() -> CompilerConfig {
        let mut c = CompilerConfig::paper();
        c.oracle_exact_threshold = 1;
        c
    }

    fn exact_and_landmark_pair(topo: Topology) -> (DistanceOracle, DistanceOracle, ExpandedGraph) {
        let expanded = ExpandedGraph::new(topo);
        let exact = DistanceOracle::bare(&expanded, &CompilerConfig::paper());
        let landmark = DistanceOracle::bare(&expanded, &landmark_config());
        (exact, landmark, expanded)
    }

    #[test]
    fn mode_follows_threshold() {
        let (exact, landmark, _) = exact_and_landmark_pair(Topology::heavy_hex_65());
        assert_eq!(exact.mode(), OracleMode::Exact);
        assert_eq!(landmark.mode(), OracleMode::Landmark);
    }

    #[test]
    fn landmark_estimate_is_admissible() {
        for topo in [
            Topology::line(12),
            Topology::grid(16),
            Topology::ring(10),
            Topology::heavy_hex(3),
        ] {
            let (exact, landmark, expanded) = exact_and_landmark_pair(topo);
            for a in expanded.slots() {
                for b in expanded.slots() {
                    let est = landmark.distance(a, b);
                    let truth = exact.distance(a, b);
                    assert!(
                        est <= truth + 1e-9,
                        "overestimate {est} > {truth} for {a}->{b}"
                    );
                    if a == b {
                        assert_eq!(est, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn landmark_exact_entry_matches_exact_mode_bitwise() {
        let (exact, landmark, expanded) = exact_and_landmark_pair(Topology::grid(16));
        for a in expanded.slots() {
            for b in expanded.slots() {
                let via_hot = landmark.distance_exact(a, b);
                let truth = exact.distance(a, b);
                assert_eq!(via_hot.to_bits(), truth.to_bits(), "{a}->{b}");
            }
        }
    }

    #[test]
    fn landmark_selection_is_deterministic_and_distinct() {
        let expanded = ExpandedGraph::new(Topology::grid(25));
        let a = DistanceOracle::bare(&expanded, &landmark_config());
        let b = DistanceOracle::bare(&expanded, &landmark_config());
        assert!(a.landmark_vertices().is_empty(), "built before first use");
        let _ = a.distance(Slot::zero(0), Slot::zero(1));
        let _ = b.distance(Slot::zero(0), Slot::zero(1));
        let va = a.landmark_vertices().to_vec();
        let vb = b.landmark_vertices().to_vec();
        assert_eq!(va, vb);
        assert!(!va.is_empty());
        let mut dedup = va.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), va.len(), "duplicate landmark");
        // Every landmark is a usable vertex (never bare slot 1).
        for &v in &va {
            assert_eq!(Slot::from_index(v).slot, SlotIndex::Zero);
        }
    }

    #[test]
    fn hot_rows_evict_but_never_change_answers() {
        let expanded = ExpandedGraph::new(Topology::line(80));
        let oracle = DistanceOracle::bare(&expanded, &landmark_config());
        // Touch more sources than the hot bound, twice; answers agree.
        let probes: Vec<Slot> = (0..40).map(Slot::zero).collect();
        let first: Vec<f64> = probes
            .iter()
            .map(|&s| oracle.distance_exact(s, Slot::zero(79)))
            .collect();
        let second: Vec<f64> = probes
            .iter()
            .map(|&s| oracle.distance_exact(s, Slot::zero(79)))
            .collect();
        for (x, y) in first.iter().zip(&second) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let stats = oracle.stats();
        assert!(stats.rows_materialized <= 2 * HOT_ROW_BOUND);
    }

    #[test]
    fn landmark_path_matches_exact_route_cost() {
        let (exact, landmark, _) = exact_and_landmark_pair(Topology::grid(16));
        let p = landmark.path(Slot::zero(0), Slot::zero(15)).unwrap();
        let q = exact.path(Slot::zero(0), Slot::zero(15)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn stats_count_rows_and_bytes() {
        let expanded = ExpandedGraph::new(Topology::line(6));
        let n = expanded.n_slots();

        let exact = DistanceOracle::bare(&expanded, &CompilerConfig::paper());
        assert_eq!(
            exact.stats(),
            OracleStats {
                exact_oracles: 1,
                ..Default::default()
            }
        );
        let _ = exact.distance(Slot::zero(0), Slot::zero(1));
        let s = exact.stats();
        assert_eq!(s.rows_materialized, 1);
        assert_eq!(s.approx_bytes, n * 8);

        let lm = DistanceOracle::bare(&expanded, &landmark_config());
        let _ = lm.distance(Slot::zero(0), Slot::zero(5));
        let s = lm.stats();
        assert_eq!(s.landmark_oracles, 1);
        assert!(s.landmark_rows >= 1);
        assert_eq!(s.rows_materialized, 0);
        let _ = lm.distance_exact(Slot::zero(0), Slot::zero(5));
        let s2 = lm.stats();
        assert_eq!(s2.rows_materialized, 2); // one hot entry: dist + prev
        assert_eq!(s2.approx_bytes, (2 + s2.landmark_rows) * n * 8);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut total = OracleStats::default();
        total.merge(&OracleStats {
            exact_oracles: 1,
            landmark_oracles: 0,
            rows_materialized: 3,
            landmark_rows: 0,
            approx_bytes: 100,
        });
        total.merge(&OracleStats {
            exact_oracles: 0,
            landmark_oracles: 2,
            rows_materialized: 4,
            landmark_rows: 16,
            approx_bytes: 900,
        });
        assert_eq!(total.exact_oracles, 1);
        assert_eq!(total.landmark_oracles, 2);
        assert_eq!(total.rows_materialized, 7);
        assert_eq!(total.landmark_rows, 16);
        assert_eq!(total.approx_bytes, 1000);
        let json = total.to_json();
        assert!(json.contains("\"landmark_rows\":16"));
        assert!(json.contains("\"approx_bytes\":1000"));
    }

    #[test]
    fn invalidate_clears_landmark_state() {
        let expanded = ExpandedGraph::new(Topology::line(8));
        let mut oracle = DistanceOracle::bare(&expanded, &landmark_config());
        let before = oracle.distance(Slot::zero(0), Slot::zero(7));
        let before_exact = oracle.distance_exact(Slot::zero(0), Slot::zero(7));
        oracle.invalidate();
        let s = oracle.stats();
        assert_eq!(s.landmark_rows, 0);
        assert_eq!(s.rows_materialized, 0);
        assert_eq!(oracle.distance(Slot::zero(0), Slot::zero(7)), before);
        assert_eq!(
            oracle.distance_exact(Slot::zero(0), Slot::zero(7)),
            before_exact
        );
    }
}
