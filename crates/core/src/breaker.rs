//! A circuit breaker for the session's persistent disk tier.
//!
//! The tier-2 store is infrastructure that can *stay* broken — a disk
//! that filled up or lost its mount keeps failing on every lookup, and
//! each failed `open`/`read` costs a syscall plus an error path on the
//! hot compile route. The breaker bounds that cost with the classic
//! three-state machine:
//!
//! ```text
//!            N consecutive failures
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │ cooldown elapses
//!     │ probe succeeds                  ▼
//!     └─────────────────────────── HalfOpen
//!                                       │ probe fails
//!                                       └──────────▶ Open (again)
//! ```
//!
//! While **open**, disk operations are skipped entirely (the session
//! serves memory + compile, exactly as if no persist dir were
//! configured). After the cooldown one caller is admitted as the
//! **half-open probe**; its outcome decides whether the tier heals
//! (back to closed, failure streak forgotten) or trips again for
//! another cooldown. Successes in the closed state reset the streak, so
//! only *consecutive* failures trip the breaker — a lone `ENOSPC`
//! between thousands of good writes never disables the tier.
//!
//! The public face is [`BreakerState`], reported through
//! [`crate::TieredCacheStats`] and the service's wire `stats` op.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Observable state of the disk tier's circuit breaker (see the module
/// docs for the state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// The tier is healthy: disk operations flow normally.
    #[default]
    Closed,
    /// The tier tripped: disk operations are skipped until the cooldown
    /// elapses.
    Open,
    /// The cooldown elapsed and one probe operation is in flight; its
    /// outcome re-closes or re-opens the breaker.
    HalfOpen,
}

impl BreakerState {
    /// Stable wire name of the state: `"closed"`, `"open"` or
    /// `"half_open"` (the `stats` op's `breaker_state` field).
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Parses a wire name back into a state (the client side of
    /// [`BreakerState::name`]).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "closed" => Some(BreakerState::Closed),
            "open" => Some(BreakerState::Open),
            "half_open" => Some(BreakerState::HalfOpen),
            _ => None,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Internal phase: like [`BreakerState`] but `Open` carries its trip
/// instant so the cooldown clock travels with the state.
#[derive(Debug, Clone, Copy)]
enum Phase {
    Closed,
    Open(Instant),
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    phase: Phase,
    /// Failure streak while closed; trips at the threshold.
    consecutive_failures: u32,
}

/// The breaker itself — one per [`crate::Compiler`] disk tier.
///
/// Callers bracket every disk operation with
/// [`CircuitBreaker::try_acquire`] (skip the operation on `false`) and
/// exactly one of [`CircuitBreaker::record_success`] /
/// [`CircuitBreaker::record_failure`] on `true`.
#[derive(Debug)]
pub(crate) struct CircuitBreaker {
    /// Consecutive failures that trip the breaker (≥ 1).
    threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    cooldown: Duration,
    inner: Mutex<Inner>,
    /// Closed/HalfOpen → Open transitions.
    trips: AtomicU64,
    /// Open → HalfOpen transitions (probes admitted).
    probes: AtomicU64,
}

impl CircuitBreaker {
    /// Consecutive-failure threshold used when the builder does not
    /// override it.
    pub(crate) const DEFAULT_THRESHOLD: u32 = 5;
    /// Cooldown used when the builder does not override it.
    pub(crate) const DEFAULT_COOLDOWN: Duration = Duration::from_secs(5);

    /// A closed breaker tripping after `threshold` consecutive failures
    /// (clamped to ≥ 1) and probing after `cooldown`.
    pub(crate) fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(Inner {
                phase: Phase::Closed,
                consecutive_failures: 0,
            }),
            trips: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    /// Asks to perform one disk operation. `true` admits the caller
    /// (who must then report the outcome); `false` means the tier is
    /// open — skip the disk and proceed memory-only.
    pub(crate) fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.phase {
            Phase::Closed => true,
            Phase::Open(tripped_at) => {
                if tripped_at.elapsed() >= self.cooldown {
                    // This caller becomes the half-open probe.
                    inner.phase = Phase::HalfOpen;
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            // One probe at a time: others wait for its verdict.
            Phase::HalfOpen => false,
        }
    }

    /// Reports a successful disk operation: the failure streak resets
    /// and a probing breaker re-closes.
    pub(crate) fn record_success(&self) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        inner.consecutive_failures = 0;
        inner.phase = Phase::Closed;
    }

    /// Reports a failed disk operation: a probe failure re-opens
    /// immediately; in the closed state the streak grows and trips the
    /// breaker at the threshold.
    pub(crate) fn record_failure(&self) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.phase {
            Phase::HalfOpen => {
                inner.phase = Phase::Open(Instant::now());
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
            Phase::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    inner.phase = Phase::Open(Instant::now());
                    inner.consecutive_failures = 0;
                    self.trips.fetch_add(1, Ordering::Relaxed);
                }
            }
            // A failure report while already open (racing caller that
            // acquired before the trip) changes nothing.
            Phase::Open(_) => {}
        }
    }

    /// Current observable state (an open breaker past its cooldown still
    /// reports `Open` until a caller is admitted as the probe).
    pub(crate) fn state(&self) -> BreakerState {
        match self.inner.lock().expect("breaker poisoned").phase {
            Phase::Closed => BreakerState::Closed,
            Phase::Open(_) => BreakerState::Open,
            Phase::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Times the breaker tripped open.
    pub(crate) fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Half-open probes admitted.
    pub(crate) fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for state in [
            BreakerState::Closed,
            BreakerState::Open,
            BreakerState::HalfOpen,
        ] {
            assert_eq!(BreakerState::from_name(state.name()), Some(state));
            assert_eq!(format!("{state}"), state.name());
        }
        assert_eq!(BreakerState::from_name("ajar"), None);
    }

    #[test]
    fn trips_only_on_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        for _ in 0..2 {
            assert!(b.try_acquire());
            b.record_failure();
        }
        // A success resets the streak; two more failures stay closed.
        assert!(b.try_acquire());
        b.record_success();
        for _ in 0..2 {
            assert!(b.try_acquire());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
        // The third consecutive failure trips.
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.try_acquire(), "open breaker must reject");
    }

    #[test]
    fn threshold_clamps_to_one() {
        let b = CircuitBreaker::new(0, Duration::from_secs(60));
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn half_open_probe_success_recloses() {
        let b = CircuitBreaker::new(1, Duration::from_millis(5));
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(10));
        // First caller past the cooldown is the probe; a second caller
        // while the probe is out is still rejected.
        assert!(b.try_acquire());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.try_acquire());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!((b.trips(), b.probes()), (1, 1));
        assert!(b.try_acquire());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = CircuitBreaker::new(1, Duration::from_millis(5));
        assert!(b.try_acquire());
        b.record_failure();
        std::thread::sleep(Duration::from_millis(10));
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2, "probe failure counts as a fresh trip");
        assert!(!b.try_acquire(), "cooldown restarts after a failed probe");
    }
}
