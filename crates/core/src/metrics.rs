//! Expected Probability of Success (EPS) metrics (paper §6.1.1).
//!
//! The gate EPS is the product of every gate's success rate; the coherence
//! EPS is `Π_q e^{−t_qb(q)/T1_qb − t_qd(q)/T1_qd}` over logical qubits; the
//! total EPS is their product. Because coherence depends only on the
//! accumulated bare/encoded residency times, T1 sweeps (Figures 11 and 12)
//! re-evaluate a compiled circuit without recompiling.

use crate::config::CompilerConfig;
use crate::physical::Schedule;
use crate::scheduling::CoherenceTrace;
use qompress_pulse::{GateClass, GateLibrary};
use std::collections::BTreeMap;

/// All evaluation statistics of one compiled circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Product of per-gate success rates.
    pub gate_eps: f64,
    /// Probability no qubit decoheres (worst-case model).
    pub coherence_eps: f64,
    /// `gate_eps · coherence_eps`.
    pub total_eps: f64,
    /// Critical-path circuit duration in nanoseconds.
    pub duration_ns: f64,
    /// Gate count per class.
    pub gate_counts: BTreeMap<GateClass, usize>,
    /// Number of communication ops (SWAP family + ENC/DEC).
    pub communication_ops: usize,
    /// Total bare-qubit residency (ns, summed over qubits).
    pub qubit_state_ns: f64,
    /// Total ququart residency (ns, summed over qubits).
    pub ququart_state_ns: f64,
}

impl Metrics {
    /// Computes all metrics for a schedule.
    pub fn compute(schedule: &Schedule, trace: &CoherenceTrace, config: &CompilerConfig) -> Self {
        let mut gate_counts: BTreeMap<GateClass, usize> = BTreeMap::new();
        let mut communication_ops = 0;
        for sop in schedule.ops() {
            *gate_counts.entry(sop.op.class()).or_insert(0) += 1;
            if sop.op.is_communication() {
                communication_ops += 1;
            }
        }
        let gate_eps = gate_eps_from_counts(&gate_counts, &config.library);
        let qubit_state_ns = trace.total_qubit_ns();
        let ququart_state_ns = trace.total_ququart_ns();
        let coherence_eps = coherence_eps(
            qubit_state_ns,
            ququart_state_ns,
            config.t1_qubit_ns(),
            config.t1_ququart_ns(),
        );
        Metrics {
            gate_eps,
            coherence_eps,
            total_eps: gate_eps * coherence_eps,
            duration_ns: schedule.total_duration_ns(),
            gate_counts,
            communication_ops,
            qubit_state_ns,
            ququart_state_ns,
        }
    }

    /// Re-evaluates the coherence and total EPS under different T1 values
    /// (Figure 11's 10× T1 and Figure 12's ratio sweep) without recompiling.
    pub fn with_t1(&self, t1_qubit_ns: f64, t1_ququart_ns: f64) -> Metrics {
        let coherence = coherence_eps(
            self.qubit_state_ns,
            self.ququart_state_ns,
            t1_qubit_ns,
            t1_ququart_ns,
        );
        Metrics {
            coherence_eps: coherence,
            total_eps: self.gate_eps * coherence,
            ..self.clone()
        }
    }

    /// Total number of scheduled operations.
    pub fn total_ops(&self) -> usize {
        self.gate_counts.values().sum()
    }

    /// Count for one gate class (zero when absent).
    pub fn count(&self, class: GateClass) -> usize {
        self.gate_counts.get(&class).copied().unwrap_or(0)
    }
}

/// Gate EPS: product of the library fidelity of every counted gate.
pub fn gate_eps_from_counts(counts: &BTreeMap<GateClass, usize>, library: &GateLibrary) -> f64 {
    counts
        .iter()
        .map(|(&class, &n)| library.fidelity(class).powi(n as i32))
        .product()
}

/// Coherence EPS from total residency times:
/// `exp(−t_qb/T1_qb − t_qd/T1_qd)`.
pub fn coherence_eps(qubit_ns: f64, ququart_ns: f64, t1_qubit_ns: f64, t1_ququart_ns: f64) -> f64 {
    (-(qubit_ns / t1_qubit_ns) - (ququart_ns / t1_ququart_ns)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{PhysicalOp, ScheduledOp};
    use crate::scheduling::schedule_ops;

    fn two_op_schedule() -> Schedule {
        let lib = GateLibrary::paper();
        schedule_ops(
            vec![
                PhysicalOp::TwoUnit {
                    a: 0,
                    b: 1,
                    class: GateClass::Cx2,
                },
                PhysicalOp::TwoUnit {
                    a: 0,
                    b: 1,
                    class: GateClass::Swap2,
                },
            ],
            2,
            &lib,
        )
    }

    #[test]
    fn gate_eps_is_fidelity_product() {
        let s = two_op_schedule();
        let trace = CoherenceTrace {
            qubit_ns: vec![0.0, 0.0],
            ququart_ns: vec![0.0, 0.0],
        };
        let m = Metrics::compute(&s, &trace, &CompilerConfig::paper());
        assert!((m.gate_eps - 0.99f64.powi(2)).abs() < 1e-12);
        assert_eq!(m.communication_ops, 1);
        assert_eq!(m.count(GateClass::Cx2), 1);
        assert_eq!(m.total_ops(), 2);
    }

    #[test]
    fn coherence_eps_formula() {
        let eps = coherence_eps(1000.0, 500.0, 100_000.0, 50_000.0);
        let want = (-(1000.0f64 / 100_000.0) - (500.0 / 50_000.0)).exp();
        assert!((eps - want).abs() < 1e-15);
    }

    #[test]
    fn with_t1_rescales_only_coherence() {
        let s = two_op_schedule();
        let trace = CoherenceTrace {
            qubit_ns: vec![755.0, 755.0],
            ququart_ns: vec![0.0, 0.0],
        };
        let config = CompilerConfig::paper();
        let m = Metrics::compute(&s, &trace, &config);
        let better = m.with_t1(config.t1_qubit_ns() * 10.0, config.t1_ququart_ns() * 10.0);
        assert_eq!(better.gate_eps, m.gate_eps);
        assert!(better.coherence_eps > m.coherence_eps);
        assert!(better.total_eps > m.total_eps);
    }

    #[test]
    fn empty_schedule_is_perfect() {
        let s = Schedule::new(Vec::<ScheduledOp>::new(), 1);
        let trace = CoherenceTrace {
            qubit_ns: vec![],
            ququart_ns: vec![],
        };
        let m = Metrics::compute(&s, &trace, &CompilerConfig::paper());
        assert_eq!(m.gate_eps, 1.0);
        assert_eq!(m.coherence_eps, 1.0);
        assert_eq!(m.total_eps, 1.0);
    }

    #[test]
    fn ququart_residency_hurts_more() {
        let t1q = 163_500.0;
        let t1d = t1q / 3.0;
        let bare = coherence_eps(10_000.0, 0.0, t1q, t1d);
        let enc = coherence_eps(0.0, 10_000.0, t1q, t1d);
        assert!(enc < bare);
    }
}
