//! Compression strategy selection and dispatch (paper §5 and §6.2).

mod awe;
mod exhaustive;
mod full_ququart;
mod progressive;
mod ring_based;

pub(crate) use exhaustive::run_exhaustive;
pub use exhaustive::{
    compile_exhaustive, compile_exhaustive_cached, EcObjective, ExhaustiveOptions, ExhaustiveStep,
};

use crate::config::CompilerConfig;
use crate::mapping::MappingOptions;
use crate::pipeline::{compile_with_options_cached, CompilationResult, TopologyCache};
use qompress_arch::Topology;
use qompress_circuit::Circuit;

/// The compilation strategies evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Baseline: never encode a ququart (§6.2).
    QubitOnly,
    /// Extended Qubit Mapping: implicit pairing during placement (§5.2).
    Eqm,
    /// Ring-Based cycle compression (§5.3).
    RingBased,
    /// Average Weight per Edge contraction (§5.4).
    Awe,
    /// Progressive Pairing (§5.5).
    ProgressivePairing,
    /// Exhaustive greedy search (§5.1); `ordered` selects critical-path
    /// prioritization (Figure 4b) over the unordered pool (Figure 4c).
    Exhaustive {
        /// Use the critical-path priority groups.
        ordered: bool,
    },
    /// Full-ququart pairing with encode/decode — the prior-work baseline
    /// (§6.2).
    FullQuquart,
}

/// All strategies in the paper's plotting order.
pub const ALL_STRATEGIES: [Strategy; 7] = [
    Strategy::QubitOnly,
    Strategy::FullQuquart,
    Strategy::Eqm,
    Strategy::RingBased,
    Strategy::Awe,
    Strategy::ProgressivePairing,
    Strategy::Exhaustive { ordered: true },
];

impl Strategy {
    /// Short name used in reports and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::QubitOnly => "qubit-only",
            Strategy::Eqm => "eqm",
            Strategy::RingBased => "rb",
            Strategy::Awe => "awe",
            Strategy::ProgressivePairing => "pp",
            Strategy::Exhaustive { ordered: true } => "ec",
            Strategy::Exhaustive { ordered: false } => "ec-unordered",
            Strategy::FullQuquart => "fq",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Compiles `circuit` onto `topo` with the chosen strategy.
///
/// Compatibility wrapper over a one-shot [`crate::Compiler`] session (with
/// caching off — a single compile has nothing to reuse). Callers that
/// compile more than once should hold a session and use
/// [`crate::Compiler::compile`], which deduplicates per-topology
/// precomputation and memoizes repeated jobs.
///
/// ```no_run
/// use qompress::{compile, CompilerConfig, Strategy};
/// use qompress_arch::Topology;
/// use qompress_circuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(4);
/// c.push(Gate::h(0));
/// c.push(Gate::cx(0, 1));
/// let r = compile(&c, &Topology::grid(4), Strategy::Eqm, &CompilerConfig::paper());
/// println!("total EPS: {}", r.metrics.total_eps);
/// ```
pub fn compile(
    circuit: &Circuit,
    topo: &Topology,
    strategy: Strategy,
    config: &CompilerConfig,
) -> CompilationResult {
    let session = crate::session::Compiler::builder()
        .config(config.clone())
        .caching(false)
        .build();
    let result = session.compile(circuit, topo, strategy);
    std::sync::Arc::try_unwrap(result).unwrap_or_else(|arc| (*arc).clone())
}

/// [`compile`] against a pre-built [`TopologyCache`], so batches share the
/// per-topology precomputation (expanded graph, bare distance oracle)
/// across jobs instead of rebuilding it for every compilation.
pub fn compile_cached(
    circuit: &Circuit,
    cache: &TopologyCache,
    strategy: Strategy,
    config: &CompilerConfig,
) -> CompilationResult {
    let topo = cache.topology();
    let mut result = match strategy {
        Strategy::QubitOnly => {
            compile_with_options_cached(circuit, cache, config, &MappingOptions::qubit_only())
        }
        Strategy::Eqm => {
            compile_with_options_cached(circuit, cache, config, &MappingOptions::eqm())
        }
        Strategy::RingBased => {
            let pairs = ring_based::find_pairs(circuit);
            compile_with_options_cached(circuit, cache, config, &MappingOptions::with_pairs(pairs))
        }
        Strategy::Awe => {
            let pairs = awe::find_pairs(circuit);
            compile_with_options_cached(circuit, cache, config, &MappingOptions::with_pairs(pairs))
        }
        Strategy::ProgressivePairing => {
            let pairs = progressive::find_pairs_cached(circuit, cache, config);
            compile_with_options_cached(circuit, cache, config, &MappingOptions::with_pairs(pairs))
        }
        Strategy::Exhaustive { ordered } => {
            // EC is a *search*, not a single pipeline pass: it needs a
            // session for its per-candidate memoization. Callers holding a
            // session reach `run_exhaustive` through the session's own
            // strategy dispatch instead of this arm; the one-shot session
            // here serves direct `compile_cached` callers — it adopts the
            // caller's `TopologyCache` (shared expanded graph + memoized
            // oracles ride along via the `Arc`s inside the clone) so the
            // function's precomputation-sharing contract still holds.
            let session = crate::session::Compiler::builder()
                .config(config.clone())
                .build();
            session.adopt_topology_cache(std::sync::Arc::new(cache.clone()));
            let (result, _) = exhaustive::run_exhaustive(
                session.state(),
                circuit,
                topo,
                &ExhaustiveOptions {
                    ordered,
                    ..ExhaustiveOptions::default()
                },
            );
            (*result).clone()
        }
        Strategy::FullQuquart => full_ququart::compile_full_ququart(circuit, topo, config),
    };
    result.strategy = strategy.name().to_string();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::Gate;

    fn small_circuit() -> Circuit {
        let mut c = Circuit::new(5);
        c.push(Gate::h(0));
        for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)] {
            c.push(Gate::cx(a, b));
        }
        c
    }

    #[test]
    fn every_strategy_compiles_and_validates() {
        let c = small_circuit();
        let topo = Topology::grid(5);
        let config = CompilerConfig::paper();
        for strategy in ALL_STRATEGIES {
            let r = compile(&c, &topo, strategy, &config);
            let problems = r.schedule.validate(&topo);
            assert!(problems.is_empty(), "{strategy}: {problems:?}");
            assert!(r.metrics.total_eps > 0.0, "{strategy}");
            assert!(r.metrics.total_eps <= 1.0, "{strategy}");
            assert_eq!(r.strategy, strategy.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ALL_STRATEGIES.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_STRATEGIES.len());
    }

    #[test]
    fn qubit_only_never_encodes() {
        let c = small_circuit();
        let topo = Topology::grid(5);
        let r = compile(&c, &topo, Strategy::QubitOnly, &CompilerConfig::paper());
        assert!(r.pairs.is_empty());
        assert!(!r.encoded_units.iter().any(|&e| e));
        assert_eq!(r.metrics.ququart_state_ns, 0.0);
    }

    #[test]
    fn compression_strategies_are_deterministic() {
        let c = small_circuit();
        let topo = Topology::grid(5);
        let config = CompilerConfig::paper();
        for strategy in [Strategy::Eqm, Strategy::RingBased, Strategy::Awe] {
            let a = compile(&c, &topo, strategy, &config);
            let b = compile(&c, &topo, strategy, &config);
            assert_eq!(a.metrics.total_eps, b.metrics.total_eps, "{strategy}");
            assert_eq!(a.schedule.len(), b.schedule.len(), "{strategy}");
        }
    }
}
