//! Progressive Pairing (PP) compression (paper §5.5).
//!
//! Maps the circuit once (qubit-only) to get a global view, then estimates
//! for every candidate pair — in both slot orders — how the interaction-
//! weighted path success changes if the pair co-locates, without re-routing.
//! The best positive pair is committed, the circuit is *re-mapped* with the
//! pairs fixed, and the process repeats until no pair helps.

use crate::config::CompilerConfig;
use crate::cost::DistanceOracle;
use crate::mapping::{map_circuit, MappingOptions};
use crate::pipeline::TopologyCache;
use qompress_arch::Slot;
use qompress_circuit::{Circuit, InteractionGraph};

/// Minimum estimated-fidelity gain to accept another pair.
const MIN_GAIN: f64 = 1e-9;

/// Selects compression pairs for `circuit` against a shared
/// [`TopologyCache`]. The first iteration (no pairs committed yet) maps an
/// all-bare layout, so it reuses the cache's bare oracle; later iterations
/// fetch the oracle for their encoded-unit signature from the cache's
/// per-signature map ([`TopologyCache::oracle_for`]), sharing it with any
/// other job that encodes the same units.
pub fn find_pairs_cached(
    circuit: &Circuit,
    cache: &TopologyCache,
    config: &CompilerConfig,
) -> Vec<(usize, usize)> {
    let topo = cache.topology();
    let ig = InteractionGraph::build(circuit);
    let n = circuit.n_qubits();
    let mut pairs: Vec<(usize, usize)> = Vec::new();

    loop {
        let layout = map_circuit(
            circuit,
            topo,
            config,
            &MappingOptions::with_pairs(pairs.clone()),
        );
        let oracle = cache.oracle_for(&layout);
        let in_pair = |q: usize| pairs.iter().any(|&(a, b)| a == q || b == q);

        // Estimated score: Σ w(i,j) · S(path between current homes).
        let score_with = |positions: &dyn Fn(usize) -> Slot, oracle: &DistanceOracle| -> f64 {
            let mut total = 0.0;
            for ((i, j), w) in ig.weighted_edges() {
                let si = positions(i);
                let sj = positions(j);
                let s = if si.node == sj.node {
                    1.0
                } else {
                    oracle.path_success(si, sj)
                };
                total += w * s;
            }
            total
        };

        let home = |q: usize| layout.slot_of(q).expect("mapped");
        let base = score_with(&home, &oracle);

        let mut best: Option<((usize, usize), f64)> = None;
        for a in 0..n {
            if in_pair(a) {
                continue;
            }
            for b in 0..n {
                if a == b || in_pair(b) {
                    continue;
                }
                if ig.weight(a, b) == 0.0 && ig.shared_neighbors(a, b) == 0 {
                    continue; // hopeless candidates
                }
                // Order (a, b): b moves into a's unit (slot 1).
                let moved = |q: usize| -> Slot {
                    if q == b {
                        Slot::one(home(a).node)
                    } else {
                        home(q)
                    }
                };
                // The oracle does not know about the hypothetical encoding;
                // slot 1 of a bare unit has no edges, so approximate the
                // moved qubit's position by its partner's slot 0 (distance
                // within a unit is the cheap internal hop).
                let approx = |q: usize| -> Slot {
                    let s = moved(q);
                    if s == Slot::one(home(a).node) && !layout.is_encoded(home(a).node) {
                        home(a)
                    } else {
                        s
                    }
                };
                let est = score_with(&approx, &oracle);
                let gain = est - base;
                if gain <= MIN_GAIN {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bk, bg)) => {
                        gain > *bg + 1e-12 || ((gain - bg).abs() <= 1e-12 && (a, b) < *bk)
                    }
                };
                if better {
                    best = Some(((a, b), gain));
                }
            }
        }

        match best {
            Some((pair, _)) => pairs.push(pair),
            None => break,
        }
        if pairs.len() >= n / 2 {
            break;
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_arch::Topology;
    use qompress_circuit::Gate;

    fn find_pairs(c: &Circuit, topo: &Topology, config: &CompilerConfig) -> Vec<(usize, usize)> {
        find_pairs_cached(c, &TopologyCache::new(topo.clone(), config), config)
    }

    #[test]
    fn hot_pair_gets_compressed() {
        // Strong 0-1 interaction with shared neighbours: PP should pair
        // them (or another beneficial pair) and terminate.
        let mut c = Circuit::new(6);
        for _ in 0..6 {
            c.push(Gate::cx(0, 1));
        }
        for (a, b) in [(0, 2), (1, 2), (3, 4), (4, 5)] {
            c.push(Gate::cx(a, b));
        }
        let topo = Topology::grid(6);
        let pairs = find_pairs(&c, &topo, &CompilerConfig::paper());
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            assert!(seen.insert(a));
            assert!(seen.insert(b));
        }
    }

    #[test]
    fn no_interactions_no_pairs() {
        let mut c = Circuit::new(4);
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        let topo = Topology::grid(4);
        assert!(find_pairs(&c, &topo, &CompilerConfig::paper()).is_empty());
    }

    #[test]
    fn deterministic() {
        let mut c = Circuit::new(5);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)] {
            c.push(Gate::cx(a, b));
        }
        let topo = Topology::grid(5);
        let cfg = CompilerConfig::paper();
        assert_eq!(find_pairs(&c, &topo, &cfg), find_pairs(&c, &topo, &cfg));
    }

    #[test]
    fn pair_count_bounded_by_half() {
        let mut c = Circuit::new(6);
        for a in 0..6 {
            for b in (a + 1)..6 {
                c.push(Gate::cx(a, b));
            }
        }
        let topo = Topology::grid(6);
        let pairs = find_pairs(&c, &topo, &CompilerConfig::paper());
        assert!(pairs.len() <= 3);
    }
}
