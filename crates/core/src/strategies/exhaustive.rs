//! Exhaustive Compression (EC) — the paper's iterative greedy upper bound
//! (§5.1, Figure 4).
//!
//! Each round recompiles the circuit once per candidate pair (in parallel
//! on scoped threads) and commits the compression that most improves the
//! objective (gate EPS by default, see [`EcObjective`]). The *ordered*
//! variant searches the paper's priority groups first:
//! (1) operand pairs of critical-path CX gates, (2) pairs touching qubits
//! involved in inserted communication, (3) everything else. The unordered
//! variant pools all candidates.
//!
//! The search runs **through a [`Compiler`] session**: every candidate
//! evaluation is an options-level session compile, so it reuses the
//! session's per-topology precomputation ([`Compiler::topology_cache`])
//! and is memoized in the session's content-addressed result cache under
//! its `(circuit, pair-set)` key. Within one search that turns the
//! post-commit recompile of each round's winner into a cache hit; across
//! calls it lets repeated sweeps on one session (the Figure 4 bench loop)
//! skip recompiling identical candidates entirely.

use crate::config::CompilerConfig;
use crate::layout::Layout;
use crate::mapping::MappingOptions;
use crate::pipeline::CompilationResult;
use crate::session::{Compiler, SessionState};
use qompress_arch::Topology;
use qompress_circuit::{Circuit, CircuitDag, Gate};
use std::sync::Arc;

/// What the exhaustive search maximizes.
///
/// The paper's exhaustive search tracks circuit success via gate fidelity
/// (its Figure 4 traces improve even at the worst-case T1 ratio where
/// total EPS would veto every compression); the total-EPS objective is
/// available for studies at better coherence times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EcObjective {
    /// Maximize the product of gate fidelities (paper default).
    #[default]
    GateEps,
    /// Maximize gate EPS x coherence EPS.
    TotalEps,
}

/// EC options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustiveOptions {
    /// Use the critical-path priority grouping (Figure 4b) instead of the
    /// unordered pool (Figure 4c).
    pub ordered: bool,
    /// Upper bound on committed compressions.
    pub max_rounds: usize,
    /// Which metric the greedy search maximizes.
    pub objective: EcObjective,
}

impl Default for ExhaustiveOptions {
    fn default() -> Self {
        ExhaustiveOptions {
            ordered: true,
            max_rounds: 16,
            objective: EcObjective::GateEps,
        }
    }
}

/// One accepted compression step, for the Figure 4 trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveStep {
    /// The pair committed this round.
    pub pair: (usize, usize),
    /// Objective value after committing it.
    pub objective_value: f64,
    /// Gate EPS after committing it.
    pub gate_eps: f64,
    /// Total EPS after committing it.
    pub total_eps: f64,
    /// Which priority group produced it (0 = unordered pool).
    pub group: usize,
}

/// Runs the exhaustive search; returns the best compilation and the
/// per-round trace.
///
/// Compatibility wrapper over a one-shot [`Compiler`] session with caching
/// **on** — even a single search benefits, because each round's winning
/// candidate is recompiled after the commit and that recompile is a cache
/// hit. Callers sweeping more than once should hold a session and use
/// [`Compiler::compile_exhaustive`].
pub fn compile_exhaustive(
    circuit: &Circuit,
    topo: &Topology,
    config: &CompilerConfig,
    options: &ExhaustiveOptions,
) -> (CompilationResult, Vec<ExhaustiveStep>) {
    let session = Compiler::builder().config(config.clone()).build();
    let (best, steps) = run_exhaustive(session.state(), circuit, topo, options);
    (
        Arc::try_unwrap(best).unwrap_or_else(|arc| (*arc).clone()),
        steps,
    )
}

/// [`compile_exhaustive`] against a caller-held [`Compiler`] session — the
/// search recompiles the circuit once per candidate pair per round, and
/// every one of those evaluations is served from (and feeds) the session's
/// result cache and per-topology precomputation.
pub fn compile_exhaustive_cached(
    circuit: &Circuit,
    session: &Compiler,
    topo: &Topology,
    options: &ExhaustiveOptions,
) -> (Arc<CompilationResult>, Vec<ExhaustiveStep>) {
    run_exhaustive(session.state(), circuit, topo, options)
}

/// The session-threaded search shared by every public EC entry point.
/// Takes the shared [`SessionState`] (not the [`Compiler`] wrapper) so
/// the job-service worker threads — which hold only the state `Arc` — can
/// dispatch exhaustive-strategy jobs through the very same memoization.
pub(crate) fn run_exhaustive(
    session: &SessionState,
    circuit: &Circuit,
    topo: &Topology,
    options: &ExhaustiveOptions,
) -> (Arc<CompilationResult>, Vec<ExhaustiveStep>) {
    let objective = |r: &CompilationResult| match options.objective {
        EcObjective::GateEps => r.metrics.gate_eps,
        EcObjective::TotalEps => r.metrics.total_eps,
    };
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut best =
        session.compile_with_options(circuit, topo, &MappingOptions::with_pairs(pairs.clone()));
    let mut steps = Vec::new();

    for _ in 0..options.max_rounds {
        let in_pair = |q: usize| pairs.iter().any(|&(a, b)| a == q || b == q);
        let all_candidates: Vec<(usize, usize)> = {
            let n = circuit.n_qubits();
            let mut v = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if !in_pair(a) && !in_pair(b) {
                        v.push((a, b));
                    }
                }
            }
            v
        };
        if all_candidates.is_empty() {
            break;
        }

        let groups: Vec<Vec<(usize, usize)>> = if options.ordered {
            group_candidates(circuit, &best, &all_candidates)
        } else {
            vec![all_candidates]
        };

        let mut committed = false;
        for (gi, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let evaluated =
                evaluate_parallel(session, circuit, topo, &pairs, group, options.objective);
            let winner = evaluated
                .into_iter()
                .filter(|(_, eps)| *eps > objective(&best) + 1e-12)
                .max_by(|(pa, a), (pb, b)| a.partial_cmp(b).unwrap().then_with(|| pb.cmp(pa)));
            if let Some((pair, eps)) = winner {
                pairs.push(pair);
                // A cache hit: the winner was just evaluated with exactly
                // this pair set.
                best = session.compile_with_options(
                    circuit,
                    topo,
                    &MappingOptions::with_pairs(pairs.clone()),
                );
                steps.push(ExhaustiveStep {
                    pair,
                    objective_value: eps,
                    gate_eps: best.metrics.gate_eps,
                    total_eps: best.metrics.total_eps,
                    group: if options.ordered { gi + 1 } else { 0 },
                });
                committed = true;
                break;
            }
        }
        if !committed {
            break;
        }
    }
    (best, steps)
}

/// Evaluates each candidate compression in parallel through the session,
/// returning `(pair, objective value)`.
fn evaluate_parallel(
    session: &SessionState,
    circuit: &Circuit,
    topo: &Topology,
    pairs: &[(usize, usize)],
    candidates: &[(usize, usize)],
    objective: EcObjective,
) -> Vec<((usize, usize), f64)> {
    let threads = session.workers.min(candidates.len().max(1));
    let chunk = candidates.len().div_ceil(threads);
    let mut out = Vec::with_capacity(candidates.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for slice in candidates.chunks(chunk.max(1)) {
            handles.push(scope.spawn(move || {
                slice
                    .iter()
                    .map(|&pair| {
                        let mut with = pairs.to_vec();
                        with.push(pair);
                        let r = session.compile_with_options(
                            circuit,
                            topo,
                            &MappingOptions::with_pairs(with),
                        );
                        let value = match objective {
                            EcObjective::GateEps => r.metrics.gate_eps,
                            EcObjective::TotalEps => r.metrics.total_eps,
                        };
                        (pair, value)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            out.extend(h.join().expect("EC worker panicked"));
        }
    });
    out.sort_by_key(|(a, _)| *a);
    out
}

/// Builds the three priority groups of §5.1 for the ordered variant.
fn group_candidates(
    circuit: &Circuit,
    best: &CompilationResult,
    candidates: &[(usize, usize)],
) -> Vec<Vec<(usize, usize)>> {
    let dag = CircuitDag::build(circuit);
    let critical: std::collections::HashSet<usize> = dag.critical_path().into_iter().collect();
    // Group 1: operand pairs of non-communication 2q gates on the critical
    // path.
    let mut g1_pairs = std::collections::HashSet::new();
    for (idx, gate) in circuit.iter().enumerate() {
        if !critical.contains(&idx) {
            continue;
        }
        if let Gate::Cx { control, target } = *gate {
            g1_pairs.insert((control.min(target), control.max(target)));
        }
    }
    // Group 2: qubits involved in inserted communication (replay the
    // compiled schedule to see which qubits the SWAP family moved).
    let moved = qubits_moved_by_communication(best);

    let mut g1 = Vec::new();
    let mut g2 = Vec::new();
    let mut g3 = Vec::new();
    for &(a, b) in candidates {
        if g1_pairs.contains(&(a, b)) {
            g1.push((a, b));
        } else if moved.contains(&a) || moved.contains(&b) {
            g2.push((a, b));
        } else {
            g3.push((a, b));
        }
    }
    vec![g1, g2, g3]
}

/// Replays a compiled schedule to find which logical qubits were moved by
/// inserted communication ops.
fn qubits_moved_by_communication(result: &CompilationResult) -> std::collections::HashSet<usize> {
    let mut layout = Layout::new(result.initial_placements.len(), result.encoded_units.len());
    for (u, &e) in result.encoded_units.iter().enumerate() {
        if e {
            layout.set_encoded(u);
        }
    }
    for (q, &(unit, slot)) in result.initial_placements.iter().enumerate() {
        let s = if slot == 0 {
            qompress_arch::Slot::zero(unit)
        } else {
            qompress_arch::Slot::one(unit)
        };
        layout.place(q, s);
    }
    let mut moved = std::collections::HashSet::new();
    for sop in result.schedule.ops() {
        if sop.op.is_communication() {
            if let Some((x, y)) = sop.op.moved_slots() {
                for s in [x, y] {
                    if let Some(q) = layout.qubit_at(s) {
                        moved.insert(q);
                    }
                }
            }
        }
        layout.apply_op(&sop.op);
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile_with_options;

    fn hot_pair_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        for _ in 0..12 {
            c.push(Gate::cx(0, 1));
        }
        c.push(Gate::cx(1, 2));
        c.push(Gate::cx(2, 3));
        c
    }

    #[test]
    fn ec_improves_over_baseline() {
        let c = hot_pair_circuit();
        let topo = Topology::grid(4);
        let config = CompilerConfig::paper();
        let baseline = compile_with_options(&c, &topo, &config, &MappingOptions::qubit_only());
        let (best, steps) = compile_exhaustive(
            &c,
            &topo,
            &config,
            &ExhaustiveOptions {
                ordered: false,
                max_rounds: 3,
                ..ExhaustiveOptions::default()
            },
        );
        assert!(
            best.metrics.gate_eps >= baseline.metrics.gate_eps,
            "EC must not be worse than its own baseline on its objective"
        );
        // The hot pair is an obvious win: at least one step committed.
        assert!(!steps.is_empty());
        assert!(steps.iter().any(|s| s.pair == (0, 1)));
    }

    #[test]
    fn ordered_and_unordered_both_terminate() {
        let c = hot_pair_circuit();
        let topo = Topology::grid(4);
        let config = CompilerConfig::paper();
        for ordered in [true, false] {
            let (_, steps) = compile_exhaustive(
                &c,
                &topo,
                &config,
                &ExhaustiveOptions {
                    ordered,
                    max_rounds: 2,
                    ..ExhaustiveOptions::default()
                },
            );
            assert!(steps.len() <= 2);
        }
    }

    #[test]
    fn objective_is_monotone_across_steps() {
        let c = hot_pair_circuit();
        let topo = Topology::grid(4);
        let config = CompilerConfig::paper();
        let (_, steps) = compile_exhaustive(&c, &topo, &config, &ExhaustiveOptions::default());
        for w in steps.windows(2) {
            assert!(w[1].objective_value >= w[0].objective_value);
        }
    }

    #[test]
    fn total_eps_objective_rejects_coherence_losers() {
        // At the worst-case T1 ratio, the total-EPS objective is far more
        // conservative than the gate-EPS objective.
        let c = hot_pair_circuit();
        let topo = Topology::grid(4);
        let config = CompilerConfig::paper();
        let (_, gate_steps) = compile_exhaustive(&c, &topo, &config, &ExhaustiveOptions::default());
        let (_, total_steps) = compile_exhaustive(
            &c,
            &topo,
            &config,
            &ExhaustiveOptions {
                objective: EcObjective::TotalEps,
                ..ExhaustiveOptions::default()
            },
        );
        assert!(total_steps.len() <= gate_steps.len());
    }

    #[test]
    fn ordered_prefers_critical_path_group() {
        let c = hot_pair_circuit();
        let topo = Topology::grid(4);
        let config = CompilerConfig::paper();
        let (_, steps) = compile_exhaustive(
            &c,
            &topo,
            &config,
            &ExhaustiveOptions {
                ordered: true,
                max_rounds: 1,
                ..ExhaustiveOptions::default()
            },
        );
        if let Some(s) = steps.first() {
            assert_eq!(s.group, 1, "hot pair sits on the critical path");
        }
    }

    #[test]
    fn search_hits_its_own_session_cache() {
        // Each round's winner is evaluated as a candidate, committed, and
        // recompiled — the recompile must be a result-cache hit, and a
        // replay of the whole search must recompile nothing.
        let c = hot_pair_circuit();
        let topo = Topology::grid(4);
        let session = Compiler::builder().build();
        let (first, steps) =
            compile_exhaustive_cached(&c, &session, &topo, &ExhaustiveOptions::default());
        let after_first = session.cache_stats();
        assert!(
            after_first.hits >= steps.len() as u64,
            "each committed round's recompile must hit ({} hits, {} steps)",
            after_first.hits,
            steps.len()
        );
        let (replay, replay_steps) =
            compile_exhaustive_cached(&c, &session, &topo, &ExhaustiveOptions::default());
        let after_replay = session.cache_stats();
        assert_eq!(
            after_replay.misses, after_first.misses,
            "a replayed sweep must be served entirely from the cache"
        );
        assert!(after_replay.hits > after_first.hits);
        assert_eq!(format!("{:?}", *first), format!("{:?}", *replay));
        assert_eq!(steps, replay_steps);
    }

    #[test]
    fn verify_hits_replays_exhaustive_strategy_without_deadlock() {
        // Regression: a verified hit on the *outer* EC strategy key
        // recompiles the whole search, which re-enters the result cache
        // on the same thread for every candidate. The cache lock must not
        // be held across that recompilation.
        let c = hot_pair_circuit();
        let topo = Topology::grid(4);
        let session = Compiler::builder().verify_hits(true).build();
        let strategy = crate::strategies::Strategy::Exhaustive { ordered: true };
        let first = crate::strategies::compile_cached(
            &c,
            &crate::pipeline::TopologyCache::new(topo.clone(), session.config()),
            strategy,
            session.config(),
        );
        let a = session.compile(&c, &topo, strategy);
        let b = session.compile(&c, &topo, strategy); // verified outer hit
        assert_eq!(format!("{:?}", *a), format!("{:?}", *b));
        assert_eq!(format!("{first:?}"), format!("{:?}", *a));
    }

    #[test]
    fn session_method_matches_free_function() {
        let c = hot_pair_circuit();
        let topo = Topology::grid(4);
        let config = CompilerConfig::paper();
        let opts = ExhaustiveOptions::default();
        let (free, free_steps) = compile_exhaustive(&c, &topo, &config, &opts);
        let session = Compiler::with_config(&config);
        let (via_session, session_steps) = session.compile_exhaustive(&c, &topo, &opts);
        assert_eq!(format!("{free:?}"), format!("{:?}", *via_session));
        assert_eq!(free_steps, session_steps);
    }
}
