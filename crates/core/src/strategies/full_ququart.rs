//! Full Ququart pairing with encode/decode (FQ) — the prior-work baseline
//! of §6.2.
//!
//! Every qubit pair is compressed, but without partial operations any
//! interaction leaving a ququart must decode both operands, run the plain
//! two-qubit gate, and re-encode. Each pair unit keeps a statically
//! reserved adjacent ancilla to decode into; decoded qubits travel only
//! through bare/empty units (pairs never move), and return home before
//! re-encoding. This reconstruction keeps every emitted operation on
//! coupled units, at the cost structure the paper attributes to FQ: extra
//! space, ENC/DEC on every external interaction, and expensive routing.

use crate::config::CompilerConfig;
use crate::layout::Layout;
use crate::metrics::Metrics;
use crate::physical::PhysicalOp;
use crate::pipeline::CompilationResult;
use crate::scheduling::{schedule_ops, CoherenceTrace};
use qompress_arch::{Slot, SlotIndex, Topology};
use qompress_circuit::{Circuit, Gate, InteractionGraph};
use qompress_pulse::GateClass;
use std::collections::VecDeque;

/// Compiles with the FQ baseline.
///
/// # Panics
///
/// Panics when the architecture cannot host every pair with a reserved
/// adjacent ancilla (FQ fundamentally needs the extra space, §6.2).
pub fn compile_full_ququart(
    circuit: &Circuit,
    topo: &Topology,
    config: &CompilerConfig,
) -> CompilationResult {
    let n = circuit.n_qubits();
    let pairs = greedy_matching(circuit);
    let mut fq = FqState::new(circuit, topo, &pairs);
    fq.map_entities(config);
    let initial_placements = fq.layout.placements();

    for gate in circuit.iter() {
        fq.emit_gate(gate);
    }

    let schedule = schedule_ops(fq.ops, topo.n_nodes(), &config.library);
    // Worst-case coherence accounting: paired qubits live at ququart T1
    // for the whole circuit, leftovers at qubit T1 (§6.1.1).
    let total = schedule.total_duration_ns();
    let mut qubit_ns = vec![0.0; n];
    let mut ququart_ns = vec![0.0; n];
    let mut in_pair = vec![false; n];
    for &(a, b) in &pairs {
        in_pair[a] = true;
        in_pair[b] = true;
    }
    for q in 0..n {
        if in_pair[q] {
            ququart_ns[q] = total;
        } else {
            qubit_ns[q] = total;
        }
    }
    let trace = CoherenceTrace {
        qubit_ns,
        ququart_ns,
    };
    let metrics = Metrics::compute(&schedule, &trace, config);

    // Final flags for state extraction: a unit is encoded iff its slot 1 is
    // occupied at the end (pairs are always re-encoded between gates).
    let final_placements = fq.layout.placements();
    let mut encoded_units = vec![false; topo.n_nodes()];
    for &(u, s) in &final_placements {
        if s == 1 {
            encoded_units[u] = true;
        }
    }

    CompilationResult {
        strategy: String::new(),
        schedule,
        metrics,
        initial_placements,
        final_placements,
        encoded_units,
        pairs,
        logical_gates: circuit.len(),
        trace,
    }
}

/// Greedy maximum-weight matching over the interaction graph; leftover
/// qubits (odd count or isolated) stay bare.
fn greedy_matching(circuit: &Circuit) -> Vec<(usize, usize)> {
    let ig = InteractionGraph::build(circuit);
    let n = circuit.n_qubits();
    let mut edges: Vec<((usize, usize), f64)> = ig.weighted_edges().collect();
    edges.sort_by(|(ka, wa), (kb, wb)| wb.partial_cmp(wa).unwrap().then_with(|| ka.cmp(kb)));
    let mut taken = vec![false; n];
    let mut pairs = Vec::new();
    for ((a, b), _) in edges {
        if !taken[a] && !taken[b] {
            taken[a] = true;
            taken[b] = true;
            pairs.push((a, b));
        }
    }
    // Pair remaining qubits among themselves (full pairing is FQ's point).
    let rest: Vec<usize> = (0..n).filter(|&q| !taken[q]).collect();
    for chunk in rest.chunks(2) {
        if let [a, b] = *chunk {
            pairs.push((a, b));
        }
    }
    pairs
}

struct FqState<'a> {
    topo: &'a Topology,
    circuit: &'a Circuit,
    layout: Layout,
    /// Home unit of each pair, by pair index.
    pair_home: Vec<usize>,
    /// Reserved ancilla unit of each pair.
    pair_ancilla: Vec<usize>,
    /// Pair index of each qubit (or None for leftovers).
    pair_of: Vec<Option<usize>>,
    /// Reserved decode ancilla of each pair-home unit.
    ancilla_of_unit: Vec<Option<usize>>,
    pairs: Vec<(usize, usize)>,
    ops: Vec<PhysicalOp>,
}

impl<'a> FqState<'a> {
    fn new(circuit: &'a Circuit, topo: &'a Topology, pairs: &[(usize, usize)]) -> Self {
        let n = circuit.n_qubits();
        let mut layout = Layout::new(n, topo.n_nodes());
        // FQ treats every unit as a potential ququart.
        for u in 0..topo.n_nodes() {
            layout.set_encoded(u);
        }
        let mut pair_of = vec![None; n];
        for (i, &(a, b)) in pairs.iter().enumerate() {
            pair_of[a] = Some(i);
            pair_of[b] = Some(i);
        }
        FqState {
            topo,
            circuit,
            layout,
            pair_home: Vec::new(),
            pair_ancilla: Vec::new(),
            pair_of,
            ancilla_of_unit: vec![None; topo.n_nodes()],
            pairs: pairs.to_vec(),
            ops: Vec::new(),
        }
    }

    /// Places pairs (with reserved adjacent ancillas) and leftovers.
    fn map_entities(&mut self, _config: &CompilerConfig) {
        let ig = InteractionGraph::build(self.circuit);
        let n_units = self.topo.n_nodes();
        let mut free = vec![true; n_units];
        let ug = self.topo.to_ugraph();
        let center = self.topo.center();
        let center_dist = ug.bfs_distances(center);

        // Order pairs by combined weight, heaviest first.
        let mut order: Vec<usize> = (0..self.pairs.len()).collect();
        let weight = |i: usize| {
            let (a, b) = self.pairs[i];
            ig.total_weight(a) + ig.total_weight(b)
        };
        order.sort_by(|&x, &y| weight(y).partial_cmp(&weight(x)).unwrap().then(x.cmp(&y)));

        // Tile the architecture with disjoint (home, ancilla) dominos using
        // the minimum-free-degree heuristic: always match the most
        // constrained unit first, which avoids stranding corners on grids.
        let mut dominos: Vec<(usize, usize)> = Vec::with_capacity(self.pairs.len());
        {
            let free_degree = |u: usize, free: &[bool]| {
                self.topo.neighbors(u).iter().filter(|&&v| free[v]).count()
            };
            while dominos.len() < self.pairs.len() {
                let u = (0..n_units)
                    .filter(|&u| free[u] && free_degree(u, &free) >= 1)
                    .min_by_key(|&u| (free_degree(u, &free), center_dist[u], u))
                    .unwrap_or_else(|| {
                        panic!(
                            "FQ needs {} home+ancilla dominos but the \
                             architecture ran out of adjacent free units",
                            self.pairs.len()
                        )
                    });
                free[u] = false;
                let v = self
                    .topo
                    .neighbors(u)
                    .into_iter()
                    .filter(|&v| free[v])
                    .min_by_key(|&v| (free_degree(v, &free), center_dist[v], v))
                    .expect("u had a free neighbor");
                free[v] = false;
                // Home = the end closer to the center.
                if center_dist[u] <= center_dist[v] {
                    dominos.push((u, v));
                } else {
                    dominos.push((v, u));
                }
            }
            dominos.sort_by_key(|&(h, _)| (center_dist[h], h));
        }

        self.pair_home = vec![usize::MAX; self.pairs.len()];
        self.pair_ancilla = vec![usize::MAX; self.pairs.len()];
        for (&pi, &(home, ancilla)) in order.iter().zip(dominos.iter()) {
            self.pair_home[pi] = home;
            self.pair_ancilla[pi] = ancilla;
            self.ancilla_of_unit[home] = Some(ancilla);
            let (a, b) = self.pairs[pi];
            self.layout.place(a, Slot::zero(home));
            self.layout.place(b, Slot::one(home));
        }
        // Leftover bare qubits on any free unit, closest to center first.
        for q in 0..self.circuit.n_qubits() {
            if self.pair_of[q].is_none() {
                let u = (0..n_units)
                    .filter(|&u| free[u])
                    .min_by_key(|&u| (center_dist[u], u))
                    .expect("free unit for leftover qubit");
                free[u] = false;
                self.layout.place(q, Slot::zero(u));
            }
        }
    }

    fn push(&mut self, op: PhysicalOp) {
        self.layout.apply_op(&op);
        self.ops.push(op);
    }

    fn slot_of(&self, q: usize) -> Slot {
        self.layout.slot_of(q).expect("placed")
    }

    /// Is this unit currently hosting a (fully encoded) pair?
    fn unit_is_pair(&self, u: usize) -> bool {
        self.layout.occupancy(u) == (true, true)
    }

    fn emit_gate(&mut self, gate: &Gate) {
        match *gate {
            Gate::Single { kind, qubit } => {
                let s = self.slot_of(qubit);
                let class = if self.unit_is_pair(s.node) {
                    if s.slot == SlotIndex::Zero {
                        GateClass::X0
                    } else {
                        GateClass::X1
                    }
                } else {
                    GateClass::X
                };
                self.push(PhysicalOp::Single {
                    unit: s.node,
                    kind,
                    class,
                });
            }
            Gate::Cx { control, target } => self.two_qubit(control, target),
            Gate::Swap { a, b } => {
                // Logical SWAP = free relabeling (see routing.rs).
                let sa = self.slot_of(a);
                let sb = self.slot_of(b);
                self.layout.swap_occupants(sa, sb);
            }
        }
    }

    fn two_qubit(&mut self, x: usize, y: usize) {
        let sx = self.slot_of(x);
        let sy = self.slot_of(y);
        if sx.node == sy.node {
            // Internal ququart CX.
            let class = if sx.slot == SlotIndex::Zero {
                GateClass::Cx0
            } else {
                GateClass::Cx1
            };
            self.push(PhysicalOp::Internal {
                unit: sx.node,
                class,
            });
            return;
        }
        // External: decode any paired operand, route, interact, undo.
        let decoded_x = self.decode_if_paired(x);
        let decoded_y = self.decode_if_paired(y);

        let moves = self.route_bare(x, y);
        let ux = self.slot_of(x).node;
        let uy = self.slot_of(y).node;
        debug_assert!(self.topo.has_edge(ux, uy), "routing failed adjacency");
        self.push(PhysicalOp::TwoUnit {
            a: ux,
            b: uy,
            class: GateClass::Cx2,
        });

        // Return home (reverse moves with the same classes — each reverse
        // hop encounters exactly the configuration its forward hop left).
        for (a, b, class) in moves.into_iter().rev() {
            self.push(PhysicalOp::TwoUnit { a, b, class });
        }
        if let Some((home, anc)) = decoded_y {
            self.encode_pair(home, anc);
        }
        if let Some((home, anc)) = decoded_x {
            self.encode_pair(home, anc);
        }
    }

    /// Decodes the ququart currently hosting `q` into its home unit's
    /// reserved ancilla (pair homes never move; logical relabels may change
    /// *which* qubits a unit holds). Returns the `(home, ancilla)` units
    /// when a decode happened.
    fn decode_if_paired(&mut self, q: usize) -> Option<(usize, usize)> {
        let home = self.slot_of(q).node;
        if !self.unit_is_pair(home) {
            return None;
        }
        let anc = self.ancilla_of_unit[home].expect("every pair-home unit has a reserved ancilla");
        self.push(PhysicalOp::TwoUnit {
            a: home,
            b: anc,
            class: GateClass::Dec,
        });
        Some((home, anc))
    }

    /// Re-encodes a pair from its home/ancilla units.
    fn encode_pair(&mut self, home: usize, anc: usize) {
        self.push(PhysicalOp::TwoUnit {
            a: home,
            b: anc,
            class: GateClass::Enc,
        });
    }

    /// Moves qubit `x` across units until adjacent to `y`, using `SWAP2`
    /// past bare/empty units and full `SWAP4` past ququart pairs (FQ's only
    /// communication primitives, §6.2). Pairs displaced along the way are
    /// restored by the recorded return trip. Returns the executed moves.
    fn route_bare(&mut self, x: usize, y: usize) -> Vec<(usize, usize, GateClass)> {
        let target_unit = self.slot_of(y).node;
        let start = self.slot_of(x).node;
        if self.topo.has_edge(start, target_unit) {
            return Vec::new();
        }
        // BFS over every unit except y's own.
        let n = self.topo.n_nodes();
        let mut prev = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        let mut goal = None;
        'bfs: while let Some(u) = queue.pop_front() {
            if self.topo.has_edge(u, target_unit) && u != start {
                goal = Some(u);
                break 'bfs;
            }
            for v in self.topo.neighbors(u) {
                if !seen[v] && v != target_unit {
                    seen[v] = true;
                    prev[v] = u;
                    queue.push_back(v);
                }
            }
        }
        let goal = goal.unwrap_or_else(|| {
            panic!("FQ routing: no path from unit {start} to a neighbor of {target_unit}")
        });
        let mut path = vec![goal];
        let mut cur = goal;
        while cur != start {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        let mut moves = Vec::new();
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Passing a ququart needs the full four-level exchange.
            let class = if self.unit_is_pair(a) || self.unit_is_pair(b) {
                GateClass::Swap4
            } else {
                GateClass::Swap2
            };
            self.push(PhysicalOp::TwoUnit { a, b, class });
            moves.push((a, b, class));
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingOptions;
    use crate::pipeline::compile_with_options;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(6);
        c.push(Gate::h(0));
        for (a, b) in [(0, 1), (2, 3), (4, 5), (0, 2), (1, 4), (3, 5)] {
            c.push(Gate::cx(a, b));
        }
        c
    }

    #[test]
    fn matching_covers_even_circuits() {
        let c = sample_circuit();
        let pairs = greedy_matching(&c);
        assert_eq!(pairs.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for (a, b) in pairs {
            assert!(seen.insert(a));
            assert!(seen.insert(b));
        }
    }

    #[test]
    fn fq_compiles_and_validates() {
        let c = sample_circuit();
        let topo = Topology::grid(6);
        let r = compile_full_ququart(&c, &topo, &CompilerConfig::paper());
        let problems = r.schedule.validate(&topo);
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(r.pairs.len(), 3);
        // Every external interaction decodes and re-encodes.
        assert!(r.metrics.count(GateClass::Enc) >= 1);
        assert!(r.metrics.count(GateClass::Dec) >= 1);
        assert_eq!(
            r.metrics.count(GateClass::Enc),
            r.metrics.count(GateClass::Dec)
        );
    }

    #[test]
    fn fq_is_worse_than_qubit_only() {
        // The paper's consistent finding (Figure 7): FQ loses to qubit-only.
        let c = sample_circuit();
        let topo = Topology::grid(6);
        let config = CompilerConfig::paper();
        let fq = compile_full_ququart(&c, &topo, &config);
        let qo = compile_with_options(&c, &topo, &config, &MappingOptions::qubit_only());
        assert!(fq.metrics.gate_eps < qo.metrics.gate_eps);
        assert!(fq.metrics.total_eps < qo.metrics.total_eps);
    }

    #[test]
    fn internal_gates_stay_cheap() {
        // A circuit where the matched pair interacts internally only.
        let mut c = Circuit::new(2);
        for _ in 0..4 {
            c.push(Gate::cx(0, 1));
        }
        let topo = Topology::grid(4);
        let r = compile_full_ququart(&c, &topo, &CompilerConfig::paper());
        assert_eq!(r.metrics.count(GateClass::Cx0), 4);
        assert_eq!(r.metrics.count(GateClass::Enc), 0);
        assert_eq!(r.metrics.count(GateClass::Dec), 0);
    }

    #[test]
    fn paired_qubits_spend_lifetime_at_ququart_t1() {
        let c = sample_circuit();
        let topo = Topology::grid(6);
        let r = compile_full_ququart(&c, &topo, &CompilerConfig::paper());
        let d = r.metrics.duration_ns;
        for q in 0..6 {
            assert!((r.trace.ququart_ns[q] - d).abs() < 1e-9);
        }
    }

    #[test]
    fn fq_on_ring_topology() {
        let c = sample_circuit();
        let topo = Topology::ring(12);
        let r = compile_full_ququart(&c, &topo, &CompilerConfig::paper());
        assert!(r.schedule.validate(&topo).is_empty());
    }
}
