//! Average Weight per Edge (AWE) compression (paper §5.4).
//!
//! Greedily contracts the qubit pair that maximizes the interaction
//! graph's average edge weight, exploiting shared interactions to increase
//! locality; stops when no contraction improves the average.

use qompress_circuit::{Circuit, InteractionGraph};

/// Selects compression pairs for `circuit`.
pub fn find_pairs(circuit: &Circuit) -> Vec<(usize, usize)> {
    let mut ig = InteractionGraph::build(circuit);
    let n = circuit.n_qubits();
    let mut consumed = vec![false; n];
    let mut pairs = Vec::new();

    loop {
        let current = ig.average_weight_per_edge();
        let mut best: Option<((usize, usize), f64)> = None;
        for a in 0..n {
            if consumed[a] {
                continue;
            }
            for b in (a + 1)..n {
                if consumed[b] {
                    continue;
                }
                // Contracting isolated qubits together is pointless.
                if ig.degree(a) == 0 && ig.degree(b) == 0 {
                    continue;
                }
                let awe = ig.contract(a, b).average_weight_per_edge();
                let better = match &best {
                    None => awe > current + 1e-12,
                    Some((bk, bv)) => {
                        awe > *bv + 1e-12 || ((awe - bv).abs() <= 1e-12 && (a, b) < *bk)
                    }
                };
                if better {
                    best = Some(((a, b), awe));
                }
            }
        }
        match best {
            Some(((a, b), _)) => {
                let pair = if ig.total_weight(a) >= ig.total_weight(b) {
                    (a, b)
                } else {
                    (b, a)
                };
                pairs.push(pair);
                consumed[a] = true;
                consumed[b] = true;
                ig = ig.contract(a, b);
            }
            None => break,
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::Gate;

    #[test]
    fn heavy_pair_is_contracted() {
        // One dominant edge and two light ones: contracting the heavy pair
        // removes a heavy-vs-light disparity... the heavy edge disappears,
        // so AWE prefers contracting light structure around it. Just check
        // determinism and disjointness here.
        let mut c = Circuit::new(4);
        for _ in 0..5 {
            c.push(Gate::cx(0, 1));
        }
        c.push(Gate::cx(1, 2));
        c.push(Gate::cx(2, 3));
        let pairs = find_pairs(&c);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            assert!(seen.insert(a), "{pairs:?}");
            assert!(seen.insert(b), "{pairs:?}");
        }
        assert_eq!(pairs, find_pairs(&c));
    }

    #[test]
    fn shared_neighbor_contraction_raises_average() {
        // Path 0-1-2 with equal weights: contracting (0,2) merges their
        // edges to 1 into one double-weight edge -> average doubles.
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        let pairs = find_pairs(&c);
        assert!(!pairs.is_empty());
    }

    #[test]
    fn empty_interaction_graph_yields_no_pairs() {
        let mut c = Circuit::new(4);
        c.push(Gate::h(0));
        assert!(find_pairs(&c).is_empty());
    }

    #[test]
    fn single_edge_graph_stops() {
        // Contracting the only edge leaves zero edges (average zero), so
        // nothing beneficial exists.
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        assert!(find_pairs(&c).is_empty());
    }
}
