//! Ring-Based (RB) compression (paper §5.3).
//!
//! Finds the minimum cycle through each qubit of the interaction graph,
//! keeps only cycles of the globally minimal length, and inside each cycle
//! pairs the member with the fewest external interactions against the
//! cycle-mate that maximizes internal weight and shared neighbours while
//! minimizing simultaneous activity. Chosen pairs contract the graph and
//! the search repeats until no beneficial compression remains — turning
//! triangle chains (CNU, Cuccaro) into lines.

use qompress_circuit::{ActivityTable, Circuit, CircuitDag, InteractionGraph};

/// Relative weight of shared-neighbour count in the pair score.
const SHARED_NEIGHBOR_WEIGHT: f64 = 0.3;
/// Relative weight of the simultaneity penalty.
const SIMULTANEITY_WEIGHT: f64 = 0.05;

/// Selects compression pairs for `circuit`.
pub fn find_pairs(circuit: &Circuit) -> Vec<(usize, usize)> {
    let dag = CircuitDag::build(circuit);
    let activity = ActivityTable::build(circuit, &dag);
    let mut ig = InteractionGraph::build(circuit);
    let n = circuit.n_qubits();
    let mut consumed = vec![false; n];
    let mut pairs = Vec::new();

    loop {
        let ug = ig.to_ugraph();
        // Minimum cycle through every eligible qubit.
        let mut cycles: Vec<Vec<usize>> = Vec::new();
        for v in 0..n {
            if consumed[v] || ug.neighbors(v).len() < 2 {
                continue;
            }
            if let Some(cycle) = ug.min_cycle_through(v) {
                cycles.push(cycle);
            }
        }
        if cycles.is_empty() {
            break;
        }
        let min_len = cycles.iter().map(Vec::len).min().unwrap();
        cycles.retain(|c| c.len() == min_len);

        // Candidate pairs from each minimal cycle.
        let mut best: Option<((usize, usize), f64)> = None;
        for cycle in &cycles {
            let eligible: Vec<usize> = cycle.iter().copied().filter(|&q| !consumed[q]).collect();
            if eligible.len() < 2 {
                continue;
            }
            // The qubit with fewest interactions outside its cycle anchors
            // the candidates.
            let anchor = *eligible
                .iter()
                .min_by_key(|&&q| (ig.external_degree(q, cycle), q))
                .unwrap();
            for &other in &eligible {
                if other == anchor {
                    continue;
                }
                let w = ig.weight(anchor, other);
                let shared = ig.shared_neighbors(anchor, other) as f64;
                let simult = activity.simultaneous_count(circuit, &dag, anchor, other) as f64;
                let score = w + SHARED_NEIGHBOR_WEIGHT * shared - SIMULTANEITY_WEIGHT * simult;
                if score <= 0.0 {
                    continue;
                }
                let key = (anchor.min(other), anchor.max(other));
                let better = match &best {
                    None => true,
                    Some((bk, bs)) => {
                        score > *bs + 1e-12 || ((score - bs).abs() <= 1e-12 && key < *bk)
                    }
                };
                if better {
                    best = Some((key, score));
                }
            }
        }

        match best {
            Some(((a, b), _)) => {
                // Put the more externally-connected qubit at slot 0 (slot-0
                // partial gates are cheaper in Table 1).
                let pair = if ig.total_weight(a) >= ig.total_weight(b) {
                    (a, b)
                } else {
                    (b, a)
                };
                pairs.push(pair);
                consumed[a] = true;
                consumed[b] = true;
                ig = ig.contract(a.min(b), a.max(b));
            }
            None => break,
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::Gate;

    #[test]
    fn triangle_gets_compressed() {
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        c.push(Gate::cx(0, 2));
        let pairs = find_pairs(&c);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn star_has_no_cycles_no_pairs() {
        // BV-like star: RB finds nothing (paper §7).
        let mut c = Circuit::new(5);
        for i in 1..5 {
            c.push(Gate::cx(i, 0));
        }
        assert!(find_pairs(&c).is_empty());
    }

    #[test]
    fn triangle_chain_compresses_multiple_pairs() {
        // Two edge-disjoint triangles: (0,1,2) and (3,4,5).
        let mut c = Circuit::new(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            c.push(Gate::cx(a, b));
        }
        let pairs = find_pairs(&c);
        assert_eq!(pairs.len(), 2);
        // Pairs are disjoint.
        let mut seen = std::collections::HashSet::new();
        for (a, b) in pairs {
            assert!(seen.insert(a));
            assert!(seen.insert(b));
        }
    }

    #[test]
    fn cnu_interaction_flattens() {
        // A CNU-style triangle chain: pairs found on every triangle.
        let c = {
            let mut c = Circuit::new(7);
            c.push_ccx(0, 1, 4);
            c.push_ccx(2, 4, 5);
            c.push_ccx(3, 5, 6);
            c
        };
        let pairs = find_pairs(&c);
        assert!(!pairs.is_empty());
        assert!(pairs.len() <= 3);
    }

    #[test]
    fn pairs_are_deterministic() {
        let mut c = Circuit::new(4);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
            c.push(Gate::cx(a, b));
        }
        assert_eq!(find_pairs(&c), find_pairs(&c));
    }
}
