//! Schedule introspection: per-unit utilization, achieved parallelism and
//! an ASCII timeline — the serialization effects of compression (§4.2 and
//! §7.1) made visible.

use crate::physical::Schedule;

/// Aggregate parallelism statistics of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelismStats {
    /// Sum over ops of `duration × units involved` (unit-nanoseconds).
    pub busy_unit_ns: f64,
    /// `busy_unit_ns / (active units × total duration)` ∈ (0, 1].
    pub utilization: f64,
    /// Average number of simultaneously executing operations.
    pub mean_parallelism: f64,
    /// Number of units that execute at least one op.
    pub active_units: usize,
}

/// Computes utilization and parallelism for a schedule.
pub fn parallelism_stats(schedule: &Schedule) -> ParallelismStats {
    let total = schedule.total_duration_ns();
    let mut unit_busy = vec![0.0f64; schedule.n_units()];
    let mut op_ns = 0.0;
    for sop in schedule.ops() {
        let (a, b) = sop.op.units();
        unit_busy[a] += sop.duration_ns;
        if let Some(b) = b {
            unit_busy[b] += sop.duration_ns;
        }
        op_ns += sop.duration_ns;
    }
    let active_units = unit_busy.iter().filter(|&&t| t > 0.0).count();
    let busy_unit_ns: f64 = unit_busy.iter().sum();
    let denom = (active_units as f64) * total;
    ParallelismStats {
        busy_unit_ns,
        utilization: if denom > 0.0 {
            busy_unit_ns / denom
        } else {
            0.0
        },
        mean_parallelism: if total > 0.0 { op_ns / total } else { 0.0 },
        active_units,
    }
}

/// Renders an ASCII timeline: one row per active unit, `#` where the unit
/// is busy, over `width` time buckets.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn render_timeline(schedule: &Schedule, width: usize) -> String {
    assert!(width > 0, "timeline needs at least one column");
    let total = schedule.total_duration_ns();
    if total <= 0.0 || schedule.is_empty() {
        return String::from("(empty schedule)\n");
    }
    let bucket = total / width as f64;
    let mut rows = vec![vec![' '; width]; schedule.n_units()];
    let mut active = vec![false; schedule.n_units()];
    for sop in schedule.ops() {
        let start = (sop.start_ns / bucket).floor() as usize;
        let end = ((sop.end_ns() / bucket).ceil() as usize).min(width);
        let (a, b) = sop.op.units();
        for unit in [Some(a), b].into_iter().flatten() {
            active[unit] = true;
            for cell in rows[unit].iter_mut().take(end).skip(start.min(width - 1)) {
                *cell = '#';
            }
        }
    }
    let mut out = String::new();
    for (unit, row) in rows.iter().enumerate() {
        if !active[unit] {
            continue;
        }
        out.push_str(&format!("u{unit:<3}|"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "     0 ns {:>width$.0} ns\n",
        total,
        width = width - 4
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PhysicalOp;
    use crate::scheduling::schedule_ops;
    use qompress_pulse::{GateClass, GateLibrary};

    fn sample_schedule() -> Schedule {
        let lib = GateLibrary::paper();
        schedule_ops(
            vec![
                PhysicalOp::TwoUnit {
                    a: 0,
                    b: 1,
                    class: GateClass::Cx2,
                },
                PhysicalOp::TwoUnit {
                    a: 2,
                    b: 3,
                    class: GateClass::Cx2,
                },
                PhysicalOp::TwoUnit {
                    a: 1,
                    b: 2,
                    class: GateClass::Cx2,
                },
            ],
            5,
            &lib,
        )
    }

    #[test]
    fn stats_account_for_parallel_ops() {
        let s = sample_schedule();
        let stats = parallelism_stats(&s);
        assert_eq!(stats.active_units, 4);
        // First two ops run in parallel, third serializes: total = 502.
        assert!((stats.busy_unit_ns - 6.0 * 251.0).abs() < 1e-9);
        assert!(stats.mean_parallelism > 1.0);
        assert!(stats.utilization > 0.5 && stats.utilization <= 1.0);
    }

    #[test]
    fn serial_schedule_has_parallelism_one() {
        let lib = GateLibrary::paper();
        let s = schedule_ops(
            vec![
                PhysicalOp::Internal {
                    unit: 0,
                    class: GateClass::Cx0,
                },
                PhysicalOp::Internal {
                    unit: 0,
                    class: GateClass::Cx1,
                },
            ],
            1,
            &lib,
        );
        let stats = parallelism_stats(&s);
        assert!((stats.mean_parallelism - 1.0).abs() < 1e-9);
        assert!((stats.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_marks_busy_units() {
        let s = sample_schedule();
        let t = render_timeline(&s, 40);
        assert!(t.contains("u0"));
        assert!(t.contains("u3"));
        assert!(!t.contains("u4")); // idle unit hidden
        assert!(t.contains('#'));
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let s = Schedule::default();
        assert!(render_timeline(&s, 10).contains("empty"));
    }
}
