//! Job identities, lifecycle states and handles for the session job
//! service.
//!
//! A [`crate::Compiler`] session owns a persistent worker pool (see
//! `service.rs`); [`crate::Compiler::submit`] enqueues one
//! [`crate::BatchJob`] and returns a [`JobHandle`] that supports
//! [`poll`](JobHandle::poll), [`wait`](JobHandle::wait) and
//! [`cancel`](JobHandle::cancel). Handles are cheap to clone and may
//! outlive the session: when a `Compiler` is dropped, still-queued jobs
//! are marked [`JobStatus::Cancelled`] and every waiter is woken.
//!
//! Callers multiplexing many jobs (the wire-protocol front-end in
//! `qompress-service` is one) can attach a [`CompletionQueue`] at submit
//! time and pop job ids as they reach a terminal state, in completion
//! order — the "stream results as they finish" primitive.

use crate::pipeline::CompilationResult;
use crate::service::ServiceInner;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Identifier of one submitted job, unique within its session (ids start
/// at 1 and increase in submit order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the service queue.
    Queued,
    /// Claimed by a worker; the compilation is in flight.
    Running,
    /// Finished successfully; the result is available.
    Done,
    /// Cancelled while still queued (running jobs cannot be cancelled).
    Cancelled,
    /// The compilation panicked; the panic message is available.
    Failed,
}

impl JobStatus {
    /// Lower-case wire/report name (`"queued"`, `"running"`, `"done"`,
    /// `"cancelled"`, `"failed"`).
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed => "failed",
        }
    }

    /// `true` once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed
        )
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Terminal outcome of a job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The compilation finished; repeats share the cached `Arc`.
    Done(Arc<CompilationResult>),
    /// The job was cancelled before a worker claimed it.
    Cancelled,
    /// The compilation panicked with this message.
    Failed(String),
}

impl JobOutcome {
    /// The compiled result, if the job finished successfully.
    pub fn result(&self) -> Option<&Arc<CompilationResult>> {
        match self {
            JobOutcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// The terminal [`JobStatus`] this outcome corresponds to.
    pub fn status(&self) -> JobStatus {
        match self {
            JobOutcome::Done(_) => JobStatus::Done,
            JobOutcome::Cancelled => JobStatus::Cancelled,
            JobOutcome::Failed(_) => JobStatus::Failed,
        }
    }
}

/// Shared per-job state: status + outcome under one mutex, a condvar for
/// waiters, and the optional completion watcher attached at submit.
#[derive(Debug)]
pub(crate) struct JobState {
    pub(crate) inner: Mutex<JobInner>,
    pub(crate) done: Condvar,
}

#[derive(Debug)]
pub(crate) struct JobInner {
    pub(crate) status: JobStatus,
    pub(crate) result: Option<Arc<CompilationResult>>,
    pub(crate) error: Option<String>,
    pub(crate) watcher: Option<CompletionQueue>,
}

impl JobState {
    pub(crate) fn new(watcher: Option<CompletionQueue>) -> Self {
        JobState {
            inner: Mutex::new(JobInner {
                status: JobStatus::Queued,
                result: None,
                error: None,
                watcher,
            }),
            done: Condvar::new(),
        }
    }

    /// Moves the job to a terminal state, wakes every waiter, and notifies
    /// the completion watcher (outside the state lock, so a watcher pop
    /// racing this call never contends with it).
    pub(crate) fn finish(
        &self,
        id: JobId,
        status: JobStatus,
        result: Option<Arc<CompilationResult>>,
        error: Option<String>,
    ) {
        debug_assert!(status.is_terminal());
        let watcher = {
            let mut inner = self.inner.lock().expect("job state poisoned");
            inner.status = status;
            inner.result = result;
            inner.error = error;
            self.done.notify_all();
            inner.watcher.clone()
        };
        if let Some(w) = watcher {
            w.push(id);
        }
    }

    /// The one cancellation protocol, shared by [`JobHandle::cancel`] and
    /// the service shutdown drain: flip a still-queued job to cancelled
    /// under the state lock, wake waiters, count it, and notify the
    /// watcher outside the lock. Returns `false` (touching nothing) once
    /// a worker has claimed the job or it already finished.
    pub(crate) fn cancel_if_queued(&self, id: JobId, service: &ServiceInner) -> bool {
        let watcher = {
            let mut inner = self.inner.lock().expect("job state poisoned");
            if inner.status != JobStatus::Queued {
                return false;
            }
            inner.status = JobStatus::Cancelled;
            self.done.notify_all();
            inner.watcher.clone()
        };
        service.note_cancelled();
        if let Some(w) = watcher {
            w.push(id);
        }
        true
    }

    fn outcome_locked(inner: &JobInner) -> Option<JobOutcome> {
        match inner.status {
            JobStatus::Done => Some(JobOutcome::Done(Arc::clone(
                inner.result.as_ref().expect("done job must carry a result"),
            ))),
            JobStatus::Cancelled => Some(JobOutcome::Cancelled),
            JobStatus::Failed => Some(JobOutcome::Failed(
                inner
                    .error
                    .clone()
                    .unwrap_or_else(|| "job panicked".to_string()),
            )),
            JobStatus::Queued | JobStatus::Running => None,
        }
    }
}

/// A handle to one submitted job.
///
/// Cloning is cheap (the underlying state is shared); handles stay valid
/// after the session is dropped — the drop cancels whatever was still
/// queued and wakes every waiter, so [`JobHandle::wait`] never hangs on a
/// dead session.
#[derive(Debug, Clone)]
pub struct JobHandle {
    pub(crate) id: JobId,
    pub(crate) label: String,
    pub(crate) state: Arc<JobState>,
    pub(crate) service: Arc<ServiceInner>,
}

impl JobHandle {
    /// The job's session-unique id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The label copied from the submitted [`crate::BatchJob`].
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The job's current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.state.inner.lock().expect("job state poisoned").status
    }

    /// Returns the outcome if the job has reached a terminal state,
    /// without blocking.
    pub fn poll(&self) -> Option<JobOutcome> {
        let inner = self.state.inner.lock().expect("job state poisoned");
        JobState::outcome_locked(&inner)
    }

    /// Blocks until the job reaches a terminal state and returns its
    /// outcome.
    pub fn wait(&self) -> JobOutcome {
        let mut inner = self.state.inner.lock().expect("job state poisoned");
        loop {
            if let Some(outcome) = JobState::outcome_locked(&inner) {
                return outcome;
            }
            inner = self.state.done.wait(inner).expect("job state poisoned");
        }
    }

    /// Cancels the job if it is still queued. Returns `true` when the job
    /// was cancelled by this call; `false` when a worker already claimed
    /// it (or it already finished) — running jobs are never interrupted,
    /// so a cancelled job has done **no** work and touched **no** shared
    /// state (in particular, the session's result cache never sees it).
    pub fn cancel(&self) -> bool {
        self.state.cancel_if_queued(self.id, &self.service)
    }
}

/// A multi-producer completion stream: job ids are pushed as jobs reach a
/// terminal state (in completion order, not submit order) and popped by a
/// consumer multiplexing many outstanding jobs.
///
/// Attach one at submit time via [`crate::Compiler::submit_watched`].
/// Cloning shares the underlying queue. [`CompletionQueue::close`] wakes
/// blocked consumers; a closed queue still drains already-pushed ids.
#[derive(Debug, Clone, Default)]
pub struct CompletionQueue {
    inner: Arc<CqInner>,
}

#[derive(Debug, Default)]
struct CqInner {
    state: Mutex<CqState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct CqState {
    ids: VecDeque<JobId>,
    closed: bool,
}

impl CompletionQueue {
    /// An empty, open queue.
    pub fn new() -> Self {
        CompletionQueue::default()
    }

    pub(crate) fn push(&self, id: JobId) {
        let mut state = self.inner.state.lock().expect("completion queue poisoned");
        state.ids.push_back(id);
        self.inner.ready.notify_all();
    }

    /// Pops the next completed job id without blocking.
    pub fn try_pop(&self) -> Option<JobId> {
        self.inner
            .state
            .lock()
            .expect("completion queue poisoned")
            .ids
            .pop_front()
    }

    /// Blocks until a completion arrives (`Some`) or the queue is closed
    /// and drained (`None`).
    pub fn pop(&self) -> Option<JobId> {
        let mut state = self.inner.state.lock().expect("completion queue poisoned");
        loop {
            if let Some(id) = state.ids.pop_front() {
                return Some(id);
            }
            if state.closed {
                return None;
            }
            state = self
                .inner
                .ready
                .wait(state)
                .expect("completion queue poisoned");
        }
    }

    /// Like [`CompletionQueue::pop`] with an upper bound on the wait;
    /// returns `None` on timeout or on a closed, drained queue.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<JobId> {
        // Track an absolute deadline: spurious wakeups (or a sibling
        // consumer winning a pushed id) must not restart the full budget.
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("completion queue poisoned");
        loop {
            if let Some(id) = state.ids.pop_front() {
                return Some(id);
            }
            if state.closed {
                return None;
            }
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .filter(|d| !d.is_zero())?;
            let (next, _result) = self
                .inner
                .ready
                .wait_timeout(state, remaining)
                .expect("completion queue poisoned");
            state = next;
        }
    }

    /// Number of completions currently buffered.
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("completion queue poisoned")
            .ids
            .len()
    }

    /// `true` when no completions are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: blocked consumers wake, and once the buffered ids
    /// drain, `pop` returns `None`. Jobs finishing later still push —
    /// their ids are simply never consumed.
    pub fn close(&self) {
        let mut state = self.inner.state.lock().expect("completion queue poisoned");
        state.closed = true;
        self.inner.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_names_and_terminality() {
        assert_eq!(JobStatus::Queued.name(), "queued");
        assert_eq!(JobStatus::Running.name(), "running");
        assert_eq!(JobStatus::Done.name(), "done");
        assert_eq!(JobStatus::Cancelled.name(), "cancelled");
        assert_eq!(JobStatus::Failed.name(), "failed");
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
        assert!(JobStatus::Done.is_terminal());
        assert!(JobStatus::Cancelled.is_terminal());
        assert!(JobStatus::Failed.is_terminal());
        assert_eq!(format!("{}", JobStatus::Done), "done");
        assert_eq!(format!("{}", JobId(7)), "7");
    }

    #[test]
    fn completion_queue_orders_and_closes() {
        let q = CompletionQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.try_pop(), None);
        q.push(JobId(3));
        q.push(JobId(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(JobId(3)), "completion order, not id order");
        q.close();
        // Closed queues drain buffered ids before reporting exhaustion.
        assert_eq!(q.pop(), Some(JobId(1)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
        // Late pushes after close are allowed (the producer may still be
        // finishing) — they are just never required to be consumed.
        q.push(JobId(9));
        assert_eq!(q.try_pop(), Some(JobId(9)));
    }

    #[test]
    fn pop_timeout_times_out_on_open_queue() {
        let q = CompletionQueue::new();
        let t = std::time::Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
        assert!(t.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn pop_wakes_across_threads() {
        let q = CompletionQueue::new();
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(10));
        q.push(JobId(42));
        assert_eq!(h.join().unwrap(), Some(JobId(42)));
    }
}
