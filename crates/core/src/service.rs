//! The session job service: a persistent worker pool over an MPMC queue.
//!
//! Every [`crate::Compiler`] owns one [`JobService`]. Worker threads are
//! spawned on demand, up to `min(configured bound, outstanding jobs)`
//! (sessions that never submit spawn nothing; a one-job session runs one
//! worker even on a many-core box) and live until the session is
//! dropped; the drop cancels every still-queued job, wakes all waiters,
//! and joins the pool — no detached threads, no deadlock
//! (regression-tested in `tests/service_jobs.rs`).
//!
//! Workers pull [`crate::BatchJob`]s from a shared FIFO queue, compile
//! them against the session's shared state (topology registry + result
//! cache), and publish the outcome through the job's
//! [`crate::JobHandle`]. A panicking compilation marks its job
//! [`crate::JobStatus::Failed`] with the panic message and the worker
//! survives to serve the next job. Queue occupancy and lifecycle counters
//! are tracked exactly in [`ServiceMetrics`].

use crate::batch::BatchJob;
use crate::jobs::{CompletionQueue, JobHandle, JobId, JobState, JobStatus};
use crate::pipeline::TopologyCache;
use crate::session::SessionState;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Exact lifecycle counters of a session's job service.
///
/// Every submitted job is counted in exactly one of `queued`, `running`,
/// `completed`, `cancelled` or `failed`, and
/// `queued + running + completed + cancelled + failed == submitted` at
/// every quiescent point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceMetrics {
    /// Jobs ever submitted to this session.
    pub submitted: u64,
    /// Jobs waiting for a worker.
    pub queued: u64,
    /// Jobs currently being compiled.
    pub running: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs cancelled while still queued.
    pub cancelled: u64,
    /// Jobs whose compilation panicked.
    pub failed: u64,
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} submitted: {} queued / {} running / {} completed / {} cancelled / {} failed",
            self.submitted, self.queued, self.running, self.completed, self.cancelled, self.failed
        )
    }
}

/// One queued unit of work.
#[derive(Debug)]
struct QueuedJob {
    id: JobId,
    job: BatchJob,
    /// Pre-resolved `(structural fingerprint, topology cache)`, when the
    /// submitter already computed them (the batch wrapper does): the
    /// worker then neither re-hashes the topology nor consults the
    /// registry, so even a batch spanning more distinct topologies than
    /// the registry holds never rebuilds a cache inside the timed
    /// compile phase.
    tcache: Option<(u64, Arc<TopologyCache>)>,
    state: Arc<JobState>,
}

/// The FIFO queue plus the flags workers synchronize on.
#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
    paused: bool,
}

/// Terminal-state counters (queue occupancy is derived from these plus the
/// submit counter, so a snapshot is internally consistent by construction).
#[derive(Debug, Default)]
struct Counters {
    submitted: u64,
    running: u64,
    completed: u64,
    cancelled: u64,
    failed: u64,
}

/// Queue + metrics shared between the session, its workers, and every
/// outstanding [`JobHandle`].
#[derive(Debug, Default)]
pub(crate) struct ServiceInner {
    queue: Mutex<QueueState>,
    work: Condvar,
    counters: Mutex<Counters>,
    next_id: AtomicU64,
}

impl ServiceInner {
    pub(crate) fn note_cancelled(&self) {
        self.counters
            .lock()
            .expect("service counters poisoned")
            .cancelled += 1;
    }

    fn metrics(&self) -> ServiceMetrics {
        let c = self.counters.lock().expect("service counters poisoned");
        ServiceMetrics {
            submitted: c.submitted,
            queued: c
                .submitted
                .saturating_sub(c.running + c.completed + c.cancelled + c.failed),
            running: c.running,
            completed: c.completed,
            cancelled: c.cancelled,
            failed: c.failed,
        }
    }
}

/// The session-owned handle to the pool: shared queue state plus the
/// worker join handles.
#[derive(Debug, Default)]
pub(crate) struct JobService {
    inner: Arc<ServiceInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobService {
    pub(crate) fn new() -> Self {
        JobService::default()
    }

    /// Enqueues `job` and returns its handle, growing the worker pool to
    /// match outstanding demand (never past the session's worker bound).
    pub(crate) fn submit(
        &self,
        session: &Arc<SessionState>,
        job: BatchJob,
        tcache: Option<(u64, Arc<TopologyCache>)>,
        watcher: Option<CompletionQueue>,
    ) -> JobHandle {
        let id = JobId(self.inner.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let state = Arc::new(JobState::new(watcher));
        let label = job.label.clone();
        let outstanding = {
            let mut c = self
                .inner
                .counters
                .lock()
                .expect("service counters poisoned");
            c.submitted += 1;
            c.submitted - (c.completed + c.cancelled + c.failed)
        };
        {
            let mut queue = self.inner.queue.lock().expect("service queue poisoned");
            queue.jobs.push_back(QueuedJob {
                id,
                job,
                tcache,
                state: Arc::clone(&state),
            });
        }
        self.ensure_workers(session, outstanding);
        self.inner.work.notify_one();
        JobHandle {
            id,
            label,
            state,
            service: Arc::clone(&self.inner),
        }
    }

    /// Grows the pool to `min(session bound, outstanding jobs)` threads —
    /// demand-driven, so a session that only ever submits one job at a
    /// time runs one worker even when the autodetected bound is a
    /// 128-core machine, while a big batch ramps the pool up as its
    /// submits land. Workers are never retired before shutdown; the pool
    /// only grows.
    fn ensure_workers(&self, session: &Arc<SessionState>, outstanding: u64) {
        let bound = session.workers.max(1);
        let target = bound
            .min(usize::try_from(outstanding).unwrap_or(bound))
            .max(1);
        let mut workers = self.workers.lock().expect("service workers poisoned");
        while workers.len() < target {
            let session = Arc::clone(session);
            let inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name(format!("qompress-worker-{}", workers.len()))
                .spawn(move || worker_loop(session, inner))
                .expect("spawn job-service worker");
            workers.push(handle);
        }
    }

    pub(crate) fn metrics(&self) -> ServiceMetrics {
        self.inner.metrics()
    }

    /// Jobs sitting in the FIFO right now — unclaimed work, including
    /// entries cancelled while queued that no worker has skipped past
    /// yet. An exact instantaneous probe (one lock, no counter drift),
    /// cheap enough to sample on every admission decision.
    pub(crate) fn queue_depth(&self) -> usize {
        self.inner
            .queue
            .lock()
            .expect("service queue poisoned")
            .jobs
            .len()
    }

    /// Worker threads currently spawned (test-only introspection).
    #[cfg(test)]
    pub(crate) fn worker_count(&self) -> usize {
        self.workers.lock().expect("service workers poisoned").len()
    }

    /// Stops workers from claiming further jobs (in-flight compilations
    /// finish normally). Queued jobs stay queued and cancellable.
    pub(crate) fn pause(&self) {
        self.inner
            .queue
            .lock()
            .expect("service queue poisoned")
            .paused = true;
    }

    /// Resumes claiming after [`JobService::pause`].
    pub(crate) fn resume(&self) {
        {
            let mut queue = self.inner.queue.lock().expect("service queue poisoned");
            queue.paused = false;
        }
        self.inner.work.notify_all();
    }

    /// Cancels every still-queued job, wakes all workers and waiters, and
    /// joins the pool. Idempotent; called from the session's `Drop`.
    pub(crate) fn shutdown(&self) {
        let drained: Vec<QueuedJob> = {
            let mut queue = self.inner.queue.lock().expect("service queue poisoned");
            queue.shutdown = true;
            queue.jobs.drain(..).collect()
        };
        self.inner.work.notify_all();
        for rec in drained {
            // The shared cancellation protocol: only a still-queued job
            // flips (a handle may have cancelled it already — the helper
            // then touches nothing, so nothing is double-counted).
            let _ = rec.state.cancel_if_queued(rec.id, &self.inner);
        }
        let workers: Vec<_> = self
            .workers
            .lock()
            .expect("service workers poisoned")
            .drain(..)
            .collect();
        for handle in workers {
            handle.join().expect("job-service worker panicked");
        }
    }
}

/// The worker body: claim, compile (panic-isolated), publish, repeat.
fn worker_loop(session: Arc<SessionState>, inner: Arc<ServiceInner>) {
    loop {
        let rec = {
            let mut queue = inner.queue.lock().expect("service queue poisoned");
            loop {
                if queue.shutdown {
                    return;
                }
                if !queue.paused {
                    if let Some(rec) = queue.jobs.pop_front() {
                        break rec;
                    }
                }
                queue = inner.work.wait(queue).expect("service queue poisoned");
            }
        };

        // Claim: a job cancelled while queued is skipped without touching
        // any shared session state (its watcher was notified by `cancel`).
        let claimed = {
            let mut state = rec.state.inner.lock().expect("job state poisoned");
            if state.status == JobStatus::Cancelled {
                false
            } else {
                state.status = JobStatus::Running;
                true
            }
        };
        if !claimed {
            continue;
        }
        inner
            .counters
            .lock()
            .expect("service counters poisoned")
            .running += 1;

        // Panic isolation: a job whose compilation panics (circuit too
        // large for its topology, internal assertion, …) becomes a
        // `Failed` outcome instead of killing the worker. The session's
        // locks are only held inside short, panic-free critical sections
        // (`memoized` compiles outside the cache lock), so no lock is
        // poisoned by an unwinding compilation.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let resolved = rec.tcache.as_ref().map(|(fp, tc)| (*fp, tc.as_ref()));
            session.compile_queued_job(&rec.job, resolved)
        }));
        match outcome {
            Ok(result) => {
                {
                    let mut c = inner.counters.lock().expect("service counters poisoned");
                    c.running -= 1;
                    c.completed += 1;
                }
                rec.state
                    .finish(rec.id, JobStatus::Done, Some(result), None);
            }
            Err(payload) => {
                {
                    let mut c = inner.counters.lock().expect("service counters poisoned");
                    c.running -= 1;
                    c.failed += 1;
                }
                rec.state
                    .finish(rec.id, JobStatus::Failed, None, Some(panic_text(&payload)));
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobOutcome;
    use crate::session::Compiler;
    use crate::strategies::Strategy;
    use qompress_arch::Topology;
    use qompress_circuit::{Circuit, Gate};

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::h(0));
        for i in 0..n - 1 {
            c.push(Gate::cx(i, i + 1));
        }
        c
    }

    fn job(label: &str, n: usize) -> BatchJob {
        BatchJob::new(label, ghz(n), Strategy::Eqm, Topology::grid(n))
    }

    #[test]
    fn submit_wait_matches_direct_compile() {
        let session = Compiler::builder().workers(2).build();
        let handle = session.submit(job("ghz5", 5));
        assert_eq!(handle.id(), JobId(1));
        assert_eq!(handle.label(), "ghz5");
        let outcome = handle.wait();
        let result = outcome.result().expect("job must succeed").clone();
        // The service compiled through the shared session state, so the
        // direct session compile of the same job is a cache hit on the
        // very same Arc.
        let direct = session.compile(&ghz(5), &Topology::grid(5), Strategy::Eqm);
        assert!(Arc::ptr_eq(&result, &direct));
        assert!(handle.status().is_terminal());
        assert!(matches!(handle.poll(), Some(JobOutcome::Done(_))));
    }

    #[test]
    fn metrics_count_every_state_exactly() {
        let session = Compiler::builder().workers(1).build();
        assert_eq!(session.service_metrics(), ServiceMetrics::default());
        session.pause_workers();
        let a = session.submit(job("a", 4));
        let b = session.submit(job("b", 4));
        let m = session.service_metrics();
        assert_eq!((m.submitted, m.queued, m.running), (2, 2, 0));
        assert!(b.cancel());
        assert!(!b.cancel(), "cancel is not double-counted");
        let m = session.service_metrics();
        assert_eq!((m.queued, m.cancelled), (1, 1));
        session.resume_workers();
        assert!(a.wait().result().is_some());
        let m = session.service_metrics();
        assert_eq!(
            (m.submitted, m.queued, m.running, m.completed, m.cancelled),
            (2, 0, 0, 1, 1)
        );
        assert_eq!(
            m.queued + m.running + m.completed + m.cancelled + m.failed,
            m.submitted
        );
        let text = format!("{m}");
        assert!(text.contains("2 submitted"), "{text}");
        assert!(text.contains("1 cancelled"), "{text}");
    }

    #[test]
    fn queue_depth_tracks_unclaimed_work() {
        let session = Compiler::builder().workers(1).build();
        assert_eq!(session.queue_depth(), 0);
        session.pause_workers();
        let a = session.submit(job("a", 4));
        let b = session.submit(job("b", 4));
        assert_eq!(session.queue_depth(), 2);
        // A job cancelled while queued stays in the FIFO until a worker
        // skips past it, so the depth probe still counts it: depth is
        // "entries a worker must step over", the honest admission signal.
        assert!(b.cancel());
        assert_eq!(session.queue_depth(), 2);
        session.resume_workers();
        assert!(a.wait().result().is_some());
        assert!(matches!(b.wait(), JobOutcome::Cancelled));
        // Both entries drain (one compiled, one skipped) — but the skip
        // happens after `a`'s completion is published, so poll briefly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while session.queue_depth() != 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(session.queue_depth(), 0);
    }

    #[test]
    fn watched_jobs_stream_in_completion_order() {
        let session = Compiler::builder().workers(1).build();
        let watcher = CompletionQueue::new();
        let mut ids = Vec::new();
        for i in 0..3 {
            ids.push(
                session
                    .submit_watched(job(&format!("j{i}"), 4), &watcher)
                    .id(),
            );
        }
        // One worker, FIFO queue: completion order == submit order here.
        for id in ids {
            assert_eq!(watcher.pop(), Some(id));
        }
        assert!(watcher.is_empty());
    }

    #[test]
    fn failed_jobs_do_not_kill_the_pool() {
        let session = Compiler::builder().workers(1).build();
        // 6 qubits on a 2-node line cannot be placed: the mapping panics.
        let poisoned = session.submit(BatchJob::new(
            "too-big",
            ghz(6),
            Strategy::QubitOnly,
            Topology::line(2),
        ));
        match poisoned.wait() {
            JobOutcome::Failed(message) => {
                assert!(!message.is_empty());
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(poisoned.status(), JobStatus::Failed);
        // The same worker thread serves the next job.
        let ok = session.submit(job("fine", 4));
        assert!(ok.wait().result().is_some());
        let m = session.service_metrics();
        assert_eq!((m.failed, m.completed), (1, 1));
    }

    #[test]
    fn cancel_races_claim_safely() {
        // Repeatedly cancel right after submit on a running pool: each job
        // must end up exactly Done or Cancelled, and the metrics must
        // account for every submission.
        let session = Compiler::builder().workers(2).build();
        let mut handles = Vec::new();
        for i in 0..24 {
            let h = session.submit(job(&format!("race-{i}"), 4));
            h.cancel();
            handles.push(h);
        }
        for h in &handles {
            match h.wait() {
                JobOutcome::Done(_) | JobOutcome::Cancelled => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let m = session.service_metrics();
        assert_eq!(m.submitted, 24);
        assert_eq!(m.completed + m.cancelled, 24);
        assert_eq!((m.queued, m.running, m.failed), (0, 0, 0));
    }

    #[test]
    fn panic_text_extracts_common_payloads() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("literal");
        assert_eq!(panic_text(&*boxed), "literal");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_text(&*boxed), "owned");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_text(&*boxed), "job panicked");
    }
}
