//! Property tests of the OpenQASM frontend: serialize→parse round-trips
//! are exact (gate lists and `f64` angle bits), double round-trips are
//! stable, and malformed programs are rejected instead of panicking.

use proptest::prelude::*;
use qompress_qasm::{
    parse_parametric_qasm, parse_qasm, random_circuit, random_parametric_circuit,
    to_parametric_qasm, to_qasm,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_parse_round_trip_is_exact(
        n in 1usize..9,
        gates in 0usize..60,
        seed in 0u64..10_000,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let text = to_qasm(&circuit);
        let reparsed = parse_qasm(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(&reparsed, &circuit);
        // Fixed point: a second trip through text changes nothing.
        let text2 = to_qasm(&reparsed);
        prop_assert_eq!(text2, text);
    }

    #[test]
    fn out_of_range_indices_rejected(n in 1usize..6, over in 0usize..4) {
        let src = format!("OPENQASM 2.0;\nqreg q[{n}];\nx q[{}];\n", n + over);
        let err = parse_qasm(&src).unwrap_err();
        prop_assert!(err.message.contains("out of range"), "{}", err);
    }

    #[test]
    fn bad_register_names_rejected(n in 1usize..6, seed in 0u64..100) {
        // A program over register `q` whose gate operands reference `r`
        // (the declaration itself stays `q`).
        let circuit = random_circuit(n, 10, seed);
        let src = to_qasm(&circuit)
            .replace(" q[", " r[")
            .replace("qreg r[", "qreg q[");
        if circuit.is_empty() {
            // Nothing referenced the bad register; still parses.
            prop_assert!(parse_qasm(&src).is_ok());
        } else {
            let err = parse_qasm(&src).unwrap_err();
            prop_assert!(
                err.message.contains("undeclared register"),
                "{}", err
            );
        }
    }

    #[test]
    fn broadcast_equals_explicit_expansion(
        n in 1usize..9,
        picks in proptest::collection::vec(0usize..8, 1..12),
    ) {
        // A program of whole-register single-qubit gates must parse to
        // exactly the circuit of its element-wise expansion, and the
        // parsed circuit must survive a serializer round-trip (the
        // serializer re-emits it in expanded form).
        const GATES: [&str; 8] = ["x", "y", "z", "h", "s", "sdg", "t", "tdg"];
        let mut broadcast = format!("OPENQASM 2.0;\nqreg q[{n}];\n");
        let mut expanded = broadcast.clone();
        for &pick in &picks {
            let gate = GATES[pick];
            broadcast.push_str(&format!("{gate} q;\n"));
            for i in 0..n {
                expanded.push_str(&format!("{gate} q[{i}];\n"));
            }
        }
        let from_broadcast = parse_qasm(&broadcast)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let from_expanded = parse_qasm(&expanded)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(&from_broadcast, &from_expanded);
        prop_assert_eq!(from_broadcast.len(), picks.len() * n);
        let reparsed = parse_qasm(&to_qasm(&from_broadcast))
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(&reparsed, &from_broadcast);
    }

    #[test]
    fn broadcast_rotations_share_the_angle(n in 1usize..9, thirds in 1usize..12) {
        let src = format!("OPENQASM 2.0;\nqreg q[{n}];\nrz({thirds}*pi/3) q;\n");
        let c = parse_qasm(&src).map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(c.len(), n);
        let want = thirds as f64 * std::f64::consts::PI / 3.0;
        for gate in c.gates() {
            match gate {
                qompress_circuit::Gate::Single {
                    kind: qompress_circuit::SingleQubitKind::Rz(a),
                    ..
                } => prop_assert_eq!(*a, want),
                other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            }
        }
    }

    #[test]
    fn broadcast_on_two_qubit_gates_rejected(n in 2usize..7, gate in 0usize..3) {
        let name = ["cx", "cz", "swap"][gate];
        // Every operand shape mixing in a bare register must be rejected.
        for operands in [
            "q, r".to_string(),
            format!("q, r[{}]", n - 1),
            format!("q[{}], r", n - 1),
        ] {
            let src = format!(
                "OPENQASM 2.0;\nqreg q[{n}];\nqreg r[{n}];\n{name} {operands};\n"
            );
            let err = parse_qasm(&src).unwrap_err();
            prop_assert!(
                err.message.contains("whole-register broadcast"),
                "{}: {}", name, err
            );
        }
    }

    #[test]
    fn parsed_angles_are_always_finite(
        n in 1usize..9,
        gates in 0usize..60,
        seed in 0u64..10_000,
        numerator_bits in 0u64..u64::MAX,
        denominator_bits in 0u64..u64::MAX,
    ) {
        // Two fronts: every program the serializer emits parses back to
        // finite angles, and an adversarial `a/b` expression (any f64
        // bit patterns, including inf/NaN/zero) either errors or yields
        // a finite angle — never a non-finite one.
        let numerator = f64::from_bits(numerator_bits);
        let denominator = f64::from_bits(denominator_bits);
        let circuit = random_circuit(n, gates, seed);
        let reparsed = parse_qasm(&to_qasm(&circuit))
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        for gate in reparsed.gates() {
            if let qompress_circuit::Gate::Single { kind, .. } = gate {
                use qompress_circuit::SingleQubitKind as K;
                if let K::Rz(a) | K::Rx(a) | K::Ry(a) = kind {
                    prop_assert!(a.is_finite(), "round-trip produced {a}");
                }
            }
        }
        let src = format!(
            "OPENQASM 2.0;\nqreg q[1];\nrz({numerator:?}/{denominator:?}) q[0];\n"
        );
        if let Ok(c) = parse_qasm(&src) {
            match c.gates() {
                [qompress_circuit::Gate::Single {
                    kind: qompress_circuit::SingleQubitKind::Rz(a), ..
                }] => prop_assert!(
                    a.is_finite(),
                    "`{numerator:?}/{denominator:?}` parsed to non-finite {a}"
                ),
                other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            }
        }
    }

    #[test]
    fn parametric_round_trip_is_exact(
        n in 1usize..9,
        gates in 0usize..60,
        params in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let skeleton = random_parametric_circuit(n, gates, params, seed);
        let text = to_parametric_qasm(&skeleton);
        let reparsed = parse_parametric_qasm(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(&reparsed, &skeleton);
        // Fixed point, and the concrete parser rejects any skeleton with
        // at least one live parameter site.
        prop_assert_eq!(to_parametric_qasm(&reparsed), text.clone());
        if skeleton.site_count() > 0 {
            prop_assert!(parse_qasm(&text).is_err());
        } else {
            prop_assert_eq!(
                parse_qasm(&text).map_err(|e| TestCaseError::fail(format!("{e}")))?,
                skeleton.bind(&[])
            );
        }
    }

    #[test]
    fn truncated_programs_never_panic(seed in 0u64..200, cut in 1usize..120) {
        let text = to_qasm(&random_circuit(4, 12, seed));
        let cut = cut.min(text.len());
        // Cutting at an arbitrary byte < len may split a statement; the
        // parser must return Ok or Err, never panic. (Cut on a char
        // boundary — the QASM output is pure ASCII.)
        let _ = parse_qasm(&text[..cut]);
    }
}

#[test]
fn rejects_self_loop_two_qubit_gates() {
    let src = "OPENQASM 2.0;\nqreg q[3];\nswap q[2], q[2];\n";
    let err = parse_qasm(src).unwrap_err();
    assert!(err.message.contains("same qubit twice"));
}

#[test]
fn rejects_wrong_version() {
    let err = parse_qasm("OPENQASM 3.0;\nqreg q[1];\n").unwrap_err();
    assert!(err.message.contains("unsupported OPENQASM version"));
}
