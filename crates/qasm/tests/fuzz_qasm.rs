//! Adversarial fuzzing of the OpenQASM frontend: arbitrary byte soup,
//! single-byte mutations and truncations of valid programs, and the
//! qubit-cap boundary under random register splits. The parser serves
//! wire traffic, so the bar is: return `Ok` or a structured error —
//! never panic, never allocate proportional to a claimed (unvalidated)
//! register size.

use proptest::prelude::*;
use qompress_qasm::{
    parse_parametric_qasm, parse_qasm, parse_qasm_bounded, random_circuit,
    random_parametric_circuit, to_parametric_qasm, to_qasm,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn arbitrary_byte_soup_never_panics(
        bytes in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..512),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_qasm(&text);
        let _ = parse_parametric_qasm(&text);
    }

    #[test]
    fn mutated_valid_programs_error_or_reparse(
        n in 1usize..7,
        gates in 0usize..30,
        seed in 0u64..10_000,
        at in 0usize..10_000,
        with in (0u16..256).prop_map(|b| b as u8),
    ) {
        // Flip one byte anywhere in a serializer-produced program. The
        // parser must not panic; anything it still accepts is a real
        // circuit, i.e. it survives a serialize→parse round-trip exactly.
        let mut bytes = to_qasm(&random_circuit(n, gates, seed)).into_bytes();
        let at = at % bytes.len();
        bytes[at] = with;
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(parsed) = parse_qasm(&text) {
            let reparsed = parse_qasm(&to_qasm(&parsed))
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(reparsed, parsed);
        }
    }

    #[test]
    fn truncated_parametric_programs_never_panic(
        n in 1usize..6,
        gates in 0usize..20,
        params in 0usize..4,
        seed in 0u64..500,
        cut in 0usize..10_000,
    ) {
        // Parametric programs are pure ASCII, so any byte cut is a char
        // cut; both parsers must reject or accept, never panic.
        let text = to_parametric_qasm(&random_parametric_circuit(n, gates, params, seed));
        let cut = cut % (text.len() + 1);
        let _ = parse_parametric_qasm(&text[..cut]);
        let _ = parse_qasm(&text[..cut]);
    }

    #[test]
    fn register_sum_boundary_is_exact(
        parts in proptest::collection::vec(1usize..16, 1..6),
    ) {
        // However the total is split across registers, a cap of exactly
        // the sum accepts and a cap one below rejects — with the limit
        // named in the error.
        let mut src = String::from("OPENQASM 2.0;\n");
        for (i, p) in parts.iter().enumerate() {
            src.push_str(&format!("qreg r{i}[{p}];\n"));
        }
        let sum: usize = parts.iter().sum();
        prop_assert!(parse_qasm_bounded(&src, sum).is_ok());
        let err = parse_qasm_bounded(&src, sum - 1).unwrap_err();
        prop_assert!(err.message.contains("limit"), "{}", err);
    }
}
