//! # qompress-qasm
//!
//! An OpenQASM 2.0 **subset** frontend for the Qompress compiler: enough of
//! the language to ingest the standard benchmark interchange format and to
//! round-trip the compiler's own circuit IR.
//!
//! Supported statements: the `OPENQASM 2.0;` header, `include` (ignored),
//! `qreg`/`creg` declarations (classical registers are accepted and
//! ignored), `barrier` (a scheduling no-op for this compiler, accepted and
//! dropped), the single-qubit gates `x y z h s sdg t tdg rx ry rz`, and the
//! two-qubit gates `cx`, `cz` and `swap`. `cz` is lowered on input to
//! `H(t)·CX(c,t)·H(t)` since the compiler's logical gate set is
//! `{1q, CX, SWAP}` (paper §3.4). Angle expressions accept literals and
//! `pi` with `*`, `/` and unary minus (`-pi/2`, `3*pi/4`, `0.25`).
//! Single-qubit gates accept OpenQASM's whole-register broadcast
//! (`h q;` ≡ `h q[0]; … h q[n-1];`, in register order); two-qubit gates
//! reject broadcast operands.
//!
//! The serializer ([`to_qasm`]) emits only constructs the parser accepts,
//! and formats angles with Rust's shortest-round-trip float notation, so
//! `parse_qasm(&to_qasm(&c))` reproduces `c` exactly — a property pinned by
//! this crate's proptest suite. Angle expressions that evaluate to a
//! non-finite value (`inf`, `NaN`, `pi/0`) are rejected with the offending
//! line.
//!
//! For parameter-sweep traffic the crate also speaks a **parametric**
//! dialect: rotation arguments spelled `theta<id>` (`rz(theta0) q[0];`)
//! parse into [`qompress_circuit::ParametricCircuit`] skeletons via
//! [`parse_parametric_qasm`], serialize back via [`to_parametric_qasm`],
//! and round-trip exactly. This is the wire format the service's
//! `submit_sweep` op ships skeletons in.
//!
//! Both parsers cap the program's total qubit count (the sum of all
//! `qreg` sizes) at [`DEFAULT_MAX_QUBITS`], rejecting an oversized
//! declaration at its own line before anything is allocated — a 24-byte
//! `qreg q[1000000000];` must not size a billion-qubit circuit. Callers
//! admitting untrusted programs can tighten the cap with
//! [`parse_qasm_bounded`] / [`parse_parametric_qasm_bounded`].
//!
//! ```
//! use qompress_qasm::{parse_qasm, random_circuit, to_qasm};
//!
//! let circuit = random_circuit(4, 20, 7);
//! let text = to_qasm(&circuit);
//! let reparsed = parse_qasm(&text).unwrap();
//! assert_eq!(circuit, reparsed);
//! ```

#![warn(missing_docs)]

mod parse;
mod random;
mod write;

pub use parse::{
    parse_parametric_qasm, parse_parametric_qasm_bounded, parse_qasm, parse_qasm_bounded,
    DEFAULT_MAX_QUBITS,
};
pub use random::{random_circuit, random_parametric_circuit, RandomCircuitOptions};
pub use write::{to_parametric_qasm, to_qasm};

use core::fmt;

/// A parse failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QasmError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl QasmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        QasmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qasm parse error (line {}): {}", self.line, self.message)
    }
}

impl std::error::Error for QasmError {}
