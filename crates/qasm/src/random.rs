//! Seeded random circuit generation for differential and stress testing.

use qompress_circuit::{Circuit, Gate, ParametricCircuit, RotationAxis, SingleQubitKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for [`random_circuit`]'s gate mix.
#[derive(Debug, Clone, Copy)]
pub struct RandomCircuitOptions {
    /// Probability that a gate is two-qubit (CX or SWAP); ignored for
    /// single-qubit circuits. CX is nine times likelier than SWAP.
    pub two_qubit_fraction: f64,
}

impl Default for RandomCircuitOptions {
    fn default() -> Self {
        // Roughly the 2q density of the paper's benchmark suite.
        RandomCircuitOptions {
            two_qubit_fraction: 0.45,
        }
    }
}

/// Generates a deterministic pseudo-random circuit.
///
/// The same `(n_qubits, n_gates, seed)` triple always yields the same
/// circuit (the vendored `rand` shim is platform-stable), so failures in
/// downstream differential tests reproduce from the seed alone. The gate
/// mix covers every single-qubit kind (fixed and rotation), CX and SWAP.
///
/// # Panics
///
/// Panics when `n_qubits` is zero.
pub fn random_circuit(n_qubits: usize, n_gates: usize, seed: u64) -> Circuit {
    random_circuit_with(n_qubits, n_gates, seed, RandomCircuitOptions::default())
}

/// [`random_circuit`] with an explicit gate mix.
///
/// # Panics
///
/// Panics when `n_qubits` is zero.
pub fn random_circuit_with(
    n_qubits: usize,
    n_gates: usize,
    seed: u64,
    options: RandomCircuitOptions,
) -> Circuit {
    assert!(n_qubits > 0, "random circuit needs at least one qubit");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(n_qubits);
    for _ in 0..n_gates {
        let two_qubit = n_qubits >= 2 && rng.gen_bool(options.two_qubit_fraction);
        if two_qubit {
            let a = rng.gen_range(0..n_qubits);
            let b = (a + rng.gen_range(1..n_qubits)) % n_qubits;
            if rng.gen_bool(0.1) {
                circuit.push(Gate::swap(a, b));
            } else {
                circuit.push(Gate::cx(a, b));
            }
        } else {
            let q = rng.gen_range(0..n_qubits);
            let kind = match rng.gen_range(0..11) {
                0 => SingleQubitKind::X,
                1 => SingleQubitKind::Y,
                2 => SingleQubitKind::Z,
                3 => SingleQubitKind::H,
                4 => SingleQubitKind::S,
                5 => SingleQubitKind::Sdg,
                6 => SingleQubitKind::T,
                7 => SingleQubitKind::Tdg,
                8 => {
                    SingleQubitKind::Rx(rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
                }
                9 => {
                    SingleQubitKind::Ry(rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
                }
                _ => {
                    SingleQubitKind::Rz(rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
                }
            };
            circuit.push(Gate::single(kind, q));
        }
    }
    circuit
}

/// Generates a deterministic pseudo-random parametric skeleton.
///
/// The gate mix is [`random_circuit`]'s, but every rotation the generator
/// would have drawn becomes a parametric site instead, its parameter id
/// drawn uniformly from `0..n_params` (so parameters are typically shared
/// across several sites, like a QAOA layer schedule). With `n_params = 0`
/// rotations stay concrete and the skeleton binds with an empty vector.
///
/// # Panics
///
/// Panics when `n_qubits` is zero.
pub fn random_parametric_circuit(
    n_qubits: usize,
    n_gates: usize,
    n_params: usize,
    seed: u64,
) -> ParametricCircuit {
    assert!(n_qubits > 0, "random circuit needs at least one qubit");
    let options = RandomCircuitOptions::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut skeleton = ParametricCircuit::new(n_qubits);
    for _ in 0..n_gates {
        let two_qubit = n_qubits >= 2 && rng.gen_bool(options.two_qubit_fraction);
        if two_qubit {
            let a = rng.gen_range(0..n_qubits);
            let b = (a + rng.gen_range(1..n_qubits)) % n_qubits;
            if rng.gen_bool(0.1) {
                skeleton.push(Gate::swap(a, b));
            } else {
                skeleton.push(Gate::cx(a, b));
            }
        } else {
            let q = rng.gen_range(0..n_qubits);
            let kind = match rng.gen_range(0..11) {
                0 => SingleQubitKind::X,
                1 => SingleQubitKind::Y,
                2 => SingleQubitKind::Z,
                3 => SingleQubitKind::H,
                4 => SingleQubitKind::S,
                5 => SingleQubitKind::Sdg,
                6 => SingleQubitKind::T,
                7 => SingleQubitKind::Tdg,
                axis_tag => {
                    let axis = match axis_tag {
                        8 => RotationAxis::Rx,
                        9 => RotationAxis::Ry,
                        _ => RotationAxis::Rz,
                    };
                    // Consume the angle draw either way so the structural
                    // stream stays aligned with `random_circuit`'s.
                    let angle = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
                    if n_params > 0 {
                        skeleton.push_param(axis, rng.gen_range(0..n_params), q);
                    } else {
                        skeleton.push(Gate::single(axis.kind(angle), q));
                    }
                    continue;
                }
            };
            skeleton.push(Gate::single(kind, q));
        }
    }
    skeleton
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = random_circuit(5, 40, 11);
        let b = random_circuit(5, 40, 11);
        assert_eq!(a, b);
        let c = random_circuit(5, 40, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_sizes() {
        let c = random_circuit(7, 25, 3);
        assert_eq!(c.n_qubits(), 7);
        assert_eq!(c.len(), 25);
    }

    #[test]
    fn single_qubit_circuits_have_no_2q_gates() {
        let c = random_circuit(1, 30, 5);
        assert_eq!(c.two_qubit_gate_count(), 0);
    }

    #[test]
    fn mix_contains_both_arities() {
        let c = random_circuit(6, 200, 9);
        assert!(c.two_qubit_gate_count() > 20);
        assert!(c.single_qubit_gate_count() > 20);
    }

    #[test]
    fn pure_1q_mix_possible() {
        let c = random_circuit_with(
            4,
            30,
            2,
            RandomCircuitOptions {
                two_qubit_fraction: 0.0,
            },
        );
        assert_eq!(c.two_qubit_gate_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_rejected() {
        random_circuit(0, 5, 1);
    }

    #[test]
    fn parametric_generator_is_deterministic() {
        let a = random_parametric_circuit(5, 60, 4, 11);
        let b = random_parametric_circuit(5, 60, 4, 11);
        assert_eq!(a, b);
        assert_ne!(a, random_parametric_circuit(5, 60, 4, 12));
    }

    #[test]
    fn parametric_generator_draws_sites() {
        let s = random_parametric_circuit(5, 200, 3, 7);
        assert!(s.site_count() > 5, "sites: {}", s.site_count());
        assert!(s.n_params() <= 3);
    }

    #[test]
    fn zero_params_matches_random_circuit_structure() {
        let s = random_parametric_circuit(5, 60, 0, 9);
        assert_eq!(s.n_params(), 0);
        assert_eq!(s.bind(&[]), random_circuit(5, 60, 9));
    }
}
