//! The OpenQASM-2.0-subset parser.

use crate::QasmError;
use qompress_circuit::{
    Circuit, Gate, ParamId, ParametricCircuit, ParametricGate, RotationAxis, SingleQubitKind,
};

/// Upper bound on formal parameter ids (`theta<id>`): keeps a hostile
/// program from forcing a gigantic bind vector via `rz(theta999999999)`.
const MAX_PARAM_ID: ParamId = 1 << 16;

/// Default upper bound on a program's total qubit count (the sum of all
/// `qreg` sizes). A single 24-byte line — `qreg q[1000000000];` — would
/// otherwise size a billion-qubit circuit before any gate is parsed;
/// this cap rejects the declaration at the line it appears on, before
/// anything is allocated. Callers admitting untrusted programs should
/// tighten it further via [`parse_qasm_bounded`] /
/// [`parse_parametric_qasm_bounded`].
pub const DEFAULT_MAX_QUBITS: usize = 1 << 16;

/// One `;`-terminated statement with the line it started on.
struct Statement {
    text: String,
    line: usize,
}

/// A declared quantum register: offset into the flattened qubit space.
struct QReg {
    name: String,
    offset: usize,
    size: usize,
}

/// Parses an OpenQASM 2.0 subset program into a [`Circuit`].
///
/// Quantum registers are flattened into one qubit space in declaration
/// order (`qreg a[2]; qreg b[1];` gives qubits `a[0]=0, a[1]=1, b[0]=2`).
/// See the crate docs for the accepted statement set.
///
/// # Errors
///
/// Returns a [`QasmError`] with the offending line for malformed syntax,
/// unknown or unsupported statements, references to undeclared registers,
/// out-of-range qubit indices, duplicate registers, wrong gate arity, bad
/// angle expressions, and two-qubit gates addressing one qubit twice.
pub fn parse_qasm(source: &str) -> Result<Circuit, QasmError> {
    parse_qasm_bounded(source, DEFAULT_MAX_QUBITS)
}

/// [`parse_qasm`] with an explicit `max_qubits` cap on the program's
/// total qubit count (never looser than [`DEFAULT_MAX_QUBITS`] is by
/// default). The wire service parses untrusted programs through this
/// with its configured limit.
///
/// # Errors
///
/// Everything [`parse_qasm`] rejects, plus any `qreg` declaration that
/// pushes the running qubit total past `max_qubits` — reported with that
/// declaration's line number, before any circuit storage is sized.
pub fn parse_qasm_bounded(source: &str, max_qubits: usize) -> Result<Circuit, QasmError> {
    // `allow_params = false` guarantees a zero-parameter skeleton, so the
    // empty bind is total and just moves the gates into a `Circuit`.
    Ok(parse_program(source, false, max_qubits)?.bind(&[]))
}

/// Parses an OpenQASM 2.0 subset program that may carry formal rotation
/// parameters (`rz(theta0) q[0];`) into a [`ParametricCircuit`] skeleton.
///
/// A formal parameter is spelled `theta<id>` with a decimal id (`theta0`,
/// `theta17`); every other angle expression is evaluated to a concrete
/// value exactly as in [`parse_qasm`]. The same id may appear at several
/// rotation sites, which then share one bound angle.
///
/// # Errors
///
/// Everything [`parse_qasm`] rejects, plus parameter ids at or above
/// `2^16` (an anti-DoS bound on the bind-vector length).
pub fn parse_parametric_qasm(source: &str) -> Result<ParametricCircuit, QasmError> {
    parse_parametric_qasm_bounded(source, DEFAULT_MAX_QUBITS)
}

/// [`parse_parametric_qasm`] with an explicit `max_qubits` cap on the
/// program's total qubit count — the parametric twin of
/// [`parse_qasm_bounded`].
///
/// # Errors
///
/// Everything [`parse_parametric_qasm`] rejects, plus any `qreg`
/// declaration that pushes the running qubit total past `max_qubits`,
/// reported with that declaration's line number.
pub fn parse_parametric_qasm_bounded(
    source: &str,
    max_qubits: usize,
) -> Result<ParametricCircuit, QasmError> {
    parse_program(source, true, max_qubits)
}

/// The shared parse loop behind [`parse_qasm`] and
/// [`parse_parametric_qasm`]; `allow_params` gates whether `theta<id>`
/// spellings are accepted as formal parameters.
fn parse_program(
    source: &str,
    allow_params: bool,
    max_qubits: usize,
) -> Result<ParametricCircuit, QasmError> {
    let statements = split_statements(source)?;
    let mut qregs: Vec<QReg> = Vec::new();
    let mut n_qubits = 0usize;
    // Gates are collected before the circuit is sized: declarations may
    // appear between gates (each gate sees the registers declared so far,
    // per QASM's declare-before-use rule), so the final qubit count is
    // only known after the whole program is read.
    let mut gates: Vec<(ParametricGate, usize)> = Vec::new();
    let mut saw_header = false;

    for stmt in &statements {
        let text = stmt.text.as_str();
        let line = stmt.line;
        let (keyword, rest) = split_keyword(text);
        if !saw_header {
            if keyword != "OPENQASM" {
                return Err(QasmError::new(line, "expected `OPENQASM 2.0;` header"));
            }
            if rest.trim() != "2.0" {
                return Err(QasmError::new(
                    line,
                    format!("unsupported OPENQASM version `{}`", rest.trim()),
                ));
            }
            saw_header = true;
            continue;
        }
        match keyword {
            "OPENQASM" => {
                return Err(QasmError::new(line, "duplicate OPENQASM header"));
            }
            "include" => {} // headers carry no semantics for this subset
            "creg" => {}    // classical registers are ignored
            "barrier" => {} // scheduling hint; the compiler re-schedules anyway
            "qreg" => {
                let (name, size) = parse_declaration(rest, line)?;
                if qregs.iter().any(|r| r.name == name) {
                    return Err(QasmError::new(line, format!("duplicate register `{name}`")));
                }
                // Checked *before* the running total grows (and with
                // overflow-safe arithmetic), so a hostile `qreg
                // q[1000000000];` is rejected here — nothing downstream
                // ever sees the huge count, let alone allocates for it.
                let total = n_qubits.checked_add(size).filter(|&t| t <= max_qubits);
                let Some(total) = total else {
                    return Err(QasmError::new(
                        line,
                        format!(
                            "register `{name}` of size {size} pushes the program past \
                             the limit of {max_qubits} qubits"
                        ),
                    ));
                };
                qregs.push(QReg {
                    name,
                    offset: n_qubits,
                    size,
                });
                n_qubits = total;
            }
            "measure" | "reset" | "gate" | "if" | "opaque" => {
                return Err(QasmError::new(
                    line,
                    format!("unsupported statement `{keyword}` (subset parser)"),
                ));
            }
            "" => {
                return Err(QasmError::new(line, "empty statement"));
            }
            _ => {
                for gate in parse_gate(keyword, rest, &qregs, line, allow_params)? {
                    gates.push((gate, line));
                }
            }
        }
    }
    if !saw_header {
        return Err(QasmError::new(1, "expected `OPENQASM 2.0;` header"));
    }

    let mut skeleton = ParametricCircuit::new(n_qubits);
    for (gate, _line) in gates {
        // Operands were validated against the register table above, so the
        // pushes cannot panic.
        match gate {
            ParametricGate::Fixed(g) => skeleton.push(g),
            ParametricGate::Rotation { axis, param, qubit } => {
                skeleton.push_param(axis, param, qubit)
            }
        }
    }
    Ok(skeleton)
}

/// Strips comments and splits the source into `;`-terminated statements.
fn split_statements(source: &str) -> Result<Vec<Statement>, QasmError> {
    let mut statements = Vec::new();
    let mut current = String::new();
    let mut start_line = 1usize;
    for (lineno, raw) in source.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("");
        for ch in line.chars() {
            if ch == ';' {
                let text = current.trim().to_string();
                if !text.is_empty() {
                    statements.push(Statement {
                        text,
                        line: start_line,
                    });
                }
                current.clear();
            } else {
                if current.trim().is_empty() && !ch.is_whitespace() {
                    start_line = lineno + 1;
                }
                current.push(ch);
            }
        }
        current.push(' ');
    }
    if !current.trim().is_empty() {
        return Err(QasmError::new(
            start_line,
            format!("statement not terminated by `;`: `{}`", current.trim()),
        ));
    }
    Ok(statements)
}

/// Splits a statement into its leading keyword and the remainder.
fn split_keyword(text: &str) -> (&str, &str) {
    let end = text
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .unwrap_or(text.len());
    (&text[..end], &text[end..])
}

/// Parses `name[size]` from a qreg/creg declaration.
fn parse_declaration(rest: &str, line: usize) -> Result<(String, usize), QasmError> {
    let rest = rest.trim();
    let (name, idx) = split_indexed(rest, line)?;
    if name.is_empty() {
        return Err(QasmError::new(line, "register declaration needs a name"));
    }
    if idx == 0 {
        return Err(QasmError::new(line, "register size must be positive"));
    }
    Ok((name.to_string(), idx))
}

/// Parses `name[index]`, rejecting anything else.
fn split_indexed(text: &str, line: usize) -> Result<(&str, usize), QasmError> {
    let text = text.trim();
    let open = text
        .find('[')
        .ok_or_else(|| QasmError::new(line, format!("expected `name[index]`, got `{text}`")))?;
    let close = text
        .rfind(']')
        .filter(|&c| c == text.len() - 1 && c > open)
        .ok_or_else(|| QasmError::new(line, format!("unbalanced brackets in `{text}`")))?;
    let name = text[..open].trim();
    if !is_identifier(name) {
        return Err(QasmError::new(line, format!("bad identifier `{name}`")));
    }
    let idx: usize = text[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| QasmError::new(line, format!("bad index in `{text}`")))?;
    Ok((name, idx))
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_lowercase() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One resolved gate operand: a single qubit (`q[3]`) or a whole-register
/// broadcast (`q`), which OpenQASM applies element-wise.
enum Operand {
    One(usize),
    /// Flattened qubit range `offset..offset + size` of the register.
    All {
        offset: usize,
        size: usize,
    },
}

impl Operand {
    /// The flattened qubit indices this operand covers, in register order.
    fn qubits(&self) -> std::ops::Range<usize> {
        match *self {
            Operand::One(q) => q..q + 1,
            Operand::All { offset, size } => offset..offset + size,
        }
    }
}

/// Resolves `name[index]` to a flattened qubit index, or a bare declared
/// register name to a broadcast over its qubits.
fn resolve_operand(text: &str, qregs: &[QReg], line: usize) -> Result<Operand, QasmError> {
    let text = text.trim();
    let lookup = |name: &str| -> Result<&QReg, QasmError> {
        qregs
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| QasmError::new(line, format!("undeclared register `{name}`")))
    };
    if !text.contains('[') {
        if !is_identifier(text) {
            return Err(QasmError::new(
                line,
                format!("expected `name[index]` or a register name, got `{text}`"),
            ));
        }
        let reg = lookup(text)?;
        return Ok(Operand::All {
            offset: reg.offset,
            size: reg.size,
        });
    }
    let (name, idx) = split_indexed(text, line)?;
    let reg = lookup(name)?;
    if idx >= reg.size {
        return Err(QasmError::new(
            line,
            format!("index {idx} out of range for `{name}[{}]`", reg.size),
        ));
    }
    Ok(Operand::One(reg.offset + idx))
}

/// Parses one gate application, possibly lowering to several gates.
///
/// Concrete gates come back as [`ParametricGate::Fixed`]; with
/// `allow_params` set, `theta<id>` rotation arguments become
/// [`ParametricGate::Rotation`] sites.
fn parse_gate(
    name: &str,
    rest: &str,
    qregs: &[QReg],
    line: usize,
    allow_params: bool,
) -> Result<Vec<ParametricGate>, QasmError> {
    let rest = rest.trim();
    // Optional parenthesized parameter list.
    let (params, operands_text) = if let Some(stripped) = rest.strip_prefix('(') {
        let close = stripped
            .find(')')
            .ok_or_else(|| QasmError::new(line, "unclosed parameter list"))?;
        (Some(stripped[..close].trim()), stripped[close + 1..].trim())
    } else {
        (None, rest)
    };
    let operands: Vec<Operand> = operands_text
        .split(',')
        .map(|op| resolve_operand(op, qregs, line))
        .collect::<Result<_, _>>()?;

    let arity = |want: usize| -> Result<(), QasmError> {
        if operands.len() == want {
            Ok(())
        } else {
            Err(QasmError::new(
                line,
                format!("`{name}` takes {want} operand(s), got {}", operands.len()),
            ))
        }
    };
    let no_params = |gates: Vec<Gate>| -> Result<Vec<ParametricGate>, QasmError> {
        if params.is_some() {
            Err(QasmError::new(
                line,
                format!("`{name}` takes no parameters"),
            ))
        } else {
            Ok(gates.into_iter().map(ParametricGate::Fixed).collect())
        }
    };
    // Two-qubit gates take exactly one qubit per operand: whole-register
    // broadcast is a single-qubit-gate convenience in this subset.
    let two_distinct = || -> Result<(usize, usize), QasmError> {
        arity(2)?;
        let (a, b) = match (&operands[0], &operands[1]) {
            (Operand::One(a), Operand::One(b)) => (*a, *b),
            _ => {
                return Err(QasmError::new(
                    line,
                    format!(
                        "`{name}` does not support whole-register broadcast \
                         (single-qubit gates only)"
                    ),
                ))
            }
        };
        if a == b {
            Err(QasmError::new(
                line,
                format!("`{name}` addresses the same qubit twice"),
            ))
        } else {
            Ok((a, b))
        }
    };
    // Single-qubit gates broadcast: `h q;` applies `h` to every qubit of
    // `q` in register order.
    let fixed_1q = |kind: SingleQubitKind| -> Result<Vec<ParametricGate>, QasmError> {
        arity(1)?;
        no_params(
            operands[0]
                .qubits()
                .map(|q| Gate::single(kind, q))
                .collect(),
        )
    };
    let rotation_1q = |axis: RotationAxis| -> Result<Vec<ParametricGate>, QasmError> {
        arity(1)?;
        let text = params
            .ok_or_else(|| QasmError::new(line, format!("`{name}` needs an angle parameter")))?;
        if let Some(param) = parse_formal_param(text) {
            if !allow_params {
                return Err(QasmError::new(
                    line,
                    format!(
                        "formal parameter `{}` is only accepted by the \
                         parametric parser",
                        text.trim()
                    ),
                ));
            }
            if param >= MAX_PARAM_ID {
                return Err(QasmError::new(
                    line,
                    format!("parameter id {param} exceeds the limit of {MAX_PARAM_ID}"),
                ));
            }
            // Rotations broadcast like every single-qubit gate; broadcast
            // sites share the formal parameter (and thus the bound angle).
            return Ok(operands[0]
                .qubits()
                .map(|qubit| ParametricGate::Rotation { axis, param, qubit })
                .collect());
        }
        let angle = parse_angle(text, line)?;
        Ok(operands[0]
            .qubits()
            .map(|q| ParametricGate::Fixed(Gate::single(axis.kind(angle), q)))
            .collect())
    };
    match name {
        "x" => fixed_1q(SingleQubitKind::X),
        "y" => fixed_1q(SingleQubitKind::Y),
        "z" => fixed_1q(SingleQubitKind::Z),
        "h" => fixed_1q(SingleQubitKind::H),
        "s" => fixed_1q(SingleQubitKind::S),
        "sdg" => fixed_1q(SingleQubitKind::Sdg),
        "t" => fixed_1q(SingleQubitKind::T),
        "tdg" => fixed_1q(SingleQubitKind::Tdg),
        "rx" => rotation_1q(RotationAxis::Rx),
        "ry" => rotation_1q(RotationAxis::Ry),
        "rz" => rotation_1q(RotationAxis::Rz),
        "cx" | "CX" => {
            let (c, t) = two_distinct()?;
            no_params(vec![Gate::cx(c, t)])
        }
        "cz" => {
            let (c, t) = two_distinct()?;
            // CZ = (I⊗H)·CX·(I⊗H): lowered into the compiler's gate set.
            no_params(vec![Gate::h(t), Gate::cx(c, t), Gate::h(t)])
        }
        "swap" => {
            let (a, b) = two_distinct()?;
            no_params(vec![Gate::swap(a, b)])
        }
        _ => Err(QasmError::new(line, format!("unknown gate `{name}`"))),
    }
}

/// Recognizes a formal parameter spelling `theta<decimal id>`.
///
/// Anything else (including `theta` with no digits or with a sign) is not
/// a formal parameter and falls through to concrete angle evaluation.
fn parse_formal_param(text: &str) -> Option<ParamId> {
    let digits = text.trim().strip_prefix("theta")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Evaluates an angle expression: `['-'] factor (('*'|'/') factor)*` where
/// a factor is a float literal or `pi`.
fn parse_angle(text: &str, line: usize) -> Result<f64, QasmError> {
    let text = text.trim();
    let bad = || QasmError::new(line, format!("bad angle expression `{text}`"));
    let (negated, body) = match text.strip_prefix('-') {
        Some(b) => (true, b.trim()),
        None => (false, text),
    };
    if body.is_empty() {
        return Err(bad());
    }
    let mut value = 1.0f64;
    let mut op = '*';
    let mut rest = body;
    loop {
        let end = rest.find(['*', '/']).unwrap_or(rest.len());
        let factor_text = rest[..end].trim();
        let factor = if factor_text == "pi" {
            std::f64::consts::PI
        } else {
            factor_text.parse::<f64>().map_err(|_| bad())?
        };
        match op {
            '*' => value *= factor,
            '/' => value /= factor,
            _ => unreachable!(),
        }
        if end == rest.len() {
            break;
        }
        op = rest.as_bytes()[end] as char;
        rest = &rest[end + 1..];
        if rest.trim().is_empty() {
            return Err(bad());
        }
    }
    let value = if negated { -value } else { value };
    // `f64::parse` happily accepts `inf`/`NaN` literals, and division by
    // zero (`pi/0`) overflows to infinity. A non-finite angle would poison
    // fingerprints and routing costs downstream, so reject it here with
    // the offending line.
    if !value.is_finite() {
        return Err(QasmError::new(
            line,
            format!("angle expression `{text}` is not finite"),
        ));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    fn parse(body: &str) -> Result<Circuit, QasmError> {
        parse_qasm(&format!("{HEADER}{body}"))
    }

    #[test]
    fn minimal_program() {
        let c = parse("qreg q[3];\nh q[0];\ncx q[0], q[1];\nswap q[1], q[2];\n").unwrap();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.gates(), &[Gate::h(0), Gate::cx(0, 1), Gate::swap(1, 2)]);
    }

    #[test]
    fn multiple_registers_flatten_in_order() {
        let c = parse("qreg a[2];\nqreg b[2];\ncx a[1], b[0];\n").unwrap();
        assert_eq!(c.n_qubits(), 4);
        assert_eq!(c.gates(), &[Gate::cx(1, 2)]);
    }

    #[test]
    fn cz_lowers_to_h_cx_h() {
        let c = parse("qreg q[2];\ncz q[0], q[1];\n").unwrap();
        assert_eq!(c.gates(), &[Gate::h(1), Gate::cx(0, 1), Gate::h(1)]);
    }

    #[test]
    fn rotations_and_angle_expressions() {
        let c =
            parse("qreg q[1];\nrz(pi/2) q[0];\nrx(-pi) q[0];\nry(3*pi/4) q[0];\nrz(0.25) q[0];\n")
                .unwrap();
        let angles: Vec<f64> = c
            .gates()
            .iter()
            .map(|g| match g {
                Gate::Single { kind, .. } => match kind {
                    SingleQubitKind::Rz(a) | SingleQubitKind::Rx(a) | SingleQubitKind::Ry(a) => *a,
                    _ => panic!("unexpected kind"),
                },
                _ => panic!("unexpected gate"),
            })
            .collect();
        let pi = std::f64::consts::PI;
        assert_eq!(angles, vec![pi / 2.0, -pi, 3.0 * pi / 4.0, 0.25]);
    }

    #[test]
    fn barriers_comments_and_creg_are_ignored() {
        let c = parse(
            "qreg q[2];\ncreg c[2];\n// comment\nh q[0]; barrier q[0], q[1];\ncx q[0], q[1];\n",
        )
        .unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn broadcast_expands_single_qubit_gates() {
        let c = parse("qreg q[3];\nh q;\n").unwrap();
        assert_eq!(c.gates(), &[Gate::h(0), Gate::h(1), Gate::h(2)]);
        // Broadcast respects register offsets and declaration order.
        let c = parse("qreg a[2];\nqreg b[2];\nx b;\n").unwrap();
        assert_eq!(c.gates(), &[Gate::x(2), Gate::x(3)]);
        // Rotations broadcast with one shared angle.
        let c = parse("qreg q[2];\nrz(pi/2) q;\n").unwrap();
        let pi = std::f64::consts::PI;
        assert_eq!(c.gates(), &[Gate::rz(pi / 2.0, 0), Gate::rz(pi / 2.0, 1)]);
    }

    #[test]
    fn broadcast_rejected_for_two_qubit_gates() {
        for stmt in ["cx q, r;", "cx q[0], r;", "swap q, r;", "cz r, q[1];"] {
            let err = parse(&format!("qreg q[2];\nqreg r[2];\n{stmt}\n")).unwrap_err();
            assert!(
                err.message.contains("whole-register broadcast"),
                "{stmt}: {}",
                err.message
            );
        }
    }

    #[test]
    fn broadcast_of_undeclared_register_rejected() {
        let err = parse("qreg q[2];\nh r;\n").unwrap_err();
        assert!(err.message.contains("undeclared register `r`"));
        let err = parse("qreg q[2];\nh 3;\n").unwrap_err();
        assert!(err.message.contains("register name"), "{}", err.message);
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse_qasm("qreg q[1];\n").unwrap_err();
        assert!(err.message.contains("OPENQASM"));
    }

    #[test]
    fn undeclared_register_rejected() {
        let err = parse("qreg q[2];\nh r[0];\n").unwrap_err();
        assert!(err.message.contains("undeclared register `r`"));
        assert_eq!(err.line, 4);
    }

    #[test]
    fn out_of_range_index_rejected() {
        let err = parse("qreg q[2];\nx q[2];\n").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn duplicate_operand_rejected() {
        let err = parse("qreg q[2];\ncx q[1], q[1];\n").unwrap_err();
        assert!(err.message.contains("same qubit twice"));
    }

    #[test]
    fn unknown_gate_rejected() {
        let err = parse("qreg q[2];\nccx q[0], q[1], q[0];\n").unwrap_err();
        assert!(err.message.contains("unknown gate"));
    }

    #[test]
    fn unsupported_statement_rejected() {
        let err = parse("qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];\n").unwrap_err();
        assert!(err.message.contains("unsupported statement"));
    }

    #[test]
    fn missing_semicolon_rejected() {
        let err = parse("qreg q[1];\nh q[0]\n").unwrap_err();
        assert!(err.message.contains("not terminated"));
    }

    #[test]
    fn wrong_arity_rejected() {
        let err = parse("qreg q[2];\ncx q[0];\n").unwrap_err();
        assert!(err.message.contains("takes 2 operand(s)"));
    }

    #[test]
    fn bad_angle_rejected() {
        let err = parse("qreg q[1];\nrz(two) q[0];\n").unwrap_err();
        assert!(err.message.contains("bad angle"));
        let err = parse("qreg q[1];\nrz() q[0];\n").unwrap_err();
        assert!(err.message.contains("bad angle"));
    }

    #[test]
    fn non_finite_angle_rejected() {
        for expr in ["inf", "-inf", "NaN", "nan", "pi/0", "1e308*1e308", "0/0"] {
            let err = parse(&format!("qreg q[1];\nrz({expr}) q[0];\n")).unwrap_err();
            assert!(
                err.message.contains("not finite"),
                "{expr}: {}",
                err.message
            );
            assert_eq!(err.line, 4, "{expr}");
        }
    }

    #[test]
    fn formal_params_rejected_by_concrete_parser() {
        let err = parse("qreg q[1];\nrz(theta0) q[0];\n").unwrap_err();
        assert!(err.message.contains("parametric parser"), "{}", err.message);
    }

    #[test]
    fn parametric_program_parses_to_skeleton() {
        let src = format!(
            "{HEADER}qreg q[3];\nh q[0];\nrz(theta0) q[0];\ncx q[0], q[1];\n\
             rx(theta1) q[1];\nrz(pi/2) q[2];\nrz(theta0) q[2];\n"
        );
        let s = parse_parametric_qasm(&src).unwrap();
        assert_eq!(s.n_qubits(), 3);
        assert_eq!(s.n_params(), 2);
        assert_eq!(s.site_count(), 3);
        let pi = std::f64::consts::PI;
        let c = s.bind(&[0.25, -0.5]);
        assert_eq!(
            c.gates(),
            &[
                Gate::h(0),
                Gate::rz(0.25, 0),
                Gate::cx(0, 1),
                Gate::single(SingleQubitKind::Rx(-0.5), 1),
                Gate::rz(pi / 2.0, 2),
                Gate::rz(0.25, 2),
            ]
        );
    }

    #[test]
    fn parametric_rotations_broadcast_sharing_the_param() {
        let src = format!("{HEADER}qreg q[2];\nry(theta3) q;\n");
        let s = parse_parametric_qasm(&src).unwrap();
        assert_eq!(s.n_params(), 4);
        assert_eq!(s.site_count(), 2);
        let c = s.bind(&[0.0, 0.0, 0.0, 1.5]);
        assert_eq!(
            c.gates(),
            &[
                Gate::single(SingleQubitKind::Ry(1.5), 0),
                Gate::single(SingleQubitKind::Ry(1.5), 1),
            ]
        );
    }

    #[test]
    fn parametric_parser_still_accepts_concrete_programs() {
        let src = format!("{HEADER}qreg q[2];\nh q[0];\ncx q[0], q[1];\nrz(0.5) q[0];\n");
        let s = parse_parametric_qasm(&src).unwrap();
        assert_eq!(s.n_params(), 0);
        assert_eq!(s.bind(&[]), parse_qasm(&src).unwrap());
    }

    #[test]
    fn oversized_param_id_rejected() {
        let src = format!("{HEADER}qreg q[1];\nrz(theta9999999) q[0];\n");
        let err = parse_parametric_qasm(&src).unwrap_err();
        assert!(err.message.contains("exceeds the limit"), "{}", err.message);
    }

    #[test]
    fn theta_like_identifiers_are_not_params() {
        // `thetaX`, bare `theta`, and signed spellings are ordinary (bad)
        // angle expressions, not formal parameters.
        for expr in ["theta", "thetaX", "-theta0", "theta0x"] {
            let src = format!("{HEADER}qreg q[1];\nrz({expr}) q[0];\n");
            let err = parse_parametric_qasm(&src).unwrap_err();
            assert!(err.message.contains("bad angle"), "{expr}: {}", err.message);
        }
    }

    #[test]
    fn billion_qubit_qreg_rejected_with_line() {
        let err = parse("qreg ok[2];\nqreg q[1000000000];\n").unwrap_err();
        assert!(err.message.contains("limit"), "{}", err.message);
        assert_eq!(err.line, 4, "the oversized declaration's own line");
        // The parametric parser enforces the same default cap.
        let err = parse_parametric_qasm("OPENQASM 2.0;\nqreg q[1000000000];\n").unwrap_err();
        assert!(err.message.contains("limit"), "{}", err.message);
    }

    #[test]
    fn qubit_cap_boundary_is_exact() {
        let at = format!("{HEADER}qreg q[{DEFAULT_MAX_QUBITS}];\n");
        assert_eq!(
            parse_qasm(&at).unwrap().n_qubits(),
            DEFAULT_MAX_QUBITS,
            "exactly at the cap is accepted"
        );
        let over = format!("{HEADER}qreg q[{}];\n", DEFAULT_MAX_QUBITS + 1);
        assert!(parse_qasm(&over).is_err(), "one past the cap is rejected");
        // Tighter explicit bounds behave the same way.
        let at8 = format!("{HEADER}qreg q[8];\n");
        assert!(parse_qasm_bounded(&at8, 8).is_ok());
        assert!(parse_qasm_bounded(&at8, 7).is_err());
        assert!(parse_parametric_qasm_bounded(&at8, 8).is_ok());
        assert!(parse_parametric_qasm_bounded(&at8, 7).is_err());
    }

    #[test]
    fn qubit_cap_applies_to_the_register_sum() {
        // Each register is fine alone; the sum crosses the bound at the
        // second declaration, which is the line reported.
        let src = format!("{HEADER}qreg a[5];\nqreg b[4];\n");
        let err = parse_qasm_bounded(&src, 8).unwrap_err();
        assert!(err.message.contains("`b`"), "{}", err.message);
        assert_eq!(err.line, 4);
        assert_eq!(parse_qasm_bounded(&src, 9).unwrap().n_qubits(), 9);
        // Two huge registers must not overflow the running total.
        let huge = format!("{HEADER}qreg a[{0}];\nqreg b[{0}];\n", usize::MAX / 2 + 1);
        assert!(parse_qasm_bounded(&huge, usize::MAX).is_err());
    }

    #[test]
    fn error_display_includes_line() {
        let err = parse("qreg q[1];\nbadgate q[0];\n").unwrap_err();
        let text = format!("{err}");
        assert!(text.contains("line 4"), "{text}");
    }
}
