//! The OpenQASM-2.0-subset parser.

use crate::QasmError;
use qompress_circuit::{Circuit, Gate, SingleQubitKind};

/// One `;`-terminated statement with the line it started on.
struct Statement {
    text: String,
    line: usize,
}

/// A declared quantum register: offset into the flattened qubit space.
struct QReg {
    name: String,
    offset: usize,
    size: usize,
}

/// Parses an OpenQASM 2.0 subset program into a [`Circuit`].
///
/// Quantum registers are flattened into one qubit space in declaration
/// order (`qreg a[2]; qreg b[1];` gives qubits `a[0]=0, a[1]=1, b[0]=2`).
/// See the crate docs for the accepted statement set.
///
/// # Errors
///
/// Returns a [`QasmError`] with the offending line for malformed syntax,
/// unknown or unsupported statements, references to undeclared registers,
/// out-of-range qubit indices, duplicate registers, wrong gate arity, bad
/// angle expressions, and two-qubit gates addressing one qubit twice.
pub fn parse_qasm(source: &str) -> Result<Circuit, QasmError> {
    let statements = split_statements(source)?;
    let mut qregs: Vec<QReg> = Vec::new();
    let mut n_qubits = 0usize;
    // Gates are collected before the circuit is sized: declarations may
    // appear between gates (each gate sees the registers declared so far,
    // per QASM's declare-before-use rule), so the final qubit count is
    // only known after the whole program is read.
    let mut gates: Vec<(Gate, usize)> = Vec::new();
    let mut saw_header = false;

    for stmt in &statements {
        let text = stmt.text.as_str();
        let line = stmt.line;
        let (keyword, rest) = split_keyword(text);
        if !saw_header {
            if keyword != "OPENQASM" {
                return Err(QasmError::new(line, "expected `OPENQASM 2.0;` header"));
            }
            if rest.trim() != "2.0" {
                return Err(QasmError::new(
                    line,
                    format!("unsupported OPENQASM version `{}`", rest.trim()),
                ));
            }
            saw_header = true;
            continue;
        }
        match keyword {
            "OPENQASM" => {
                return Err(QasmError::new(line, "duplicate OPENQASM header"));
            }
            "include" => {} // headers carry no semantics for this subset
            "creg" => {}    // classical registers are ignored
            "barrier" => {} // scheduling hint; the compiler re-schedules anyway
            "qreg" => {
                let (name, size) = parse_declaration(rest, line)?;
                if qregs.iter().any(|r| r.name == name) {
                    return Err(QasmError::new(line, format!("duplicate register `{name}`")));
                }
                qregs.push(QReg {
                    name,
                    offset: n_qubits,
                    size,
                });
                n_qubits += size;
            }
            "measure" | "reset" | "gate" | "if" | "opaque" => {
                return Err(QasmError::new(
                    line,
                    format!("unsupported statement `{keyword}` (subset parser)"),
                ));
            }
            "" => {
                return Err(QasmError::new(line, "empty statement"));
            }
            _ => {
                for gate in parse_gate(keyword, rest, &qregs, line)? {
                    gates.push((gate, line));
                }
            }
        }
    }
    if !saw_header {
        return Err(QasmError::new(1, "expected `OPENQASM 2.0;` header"));
    }

    let mut circuit = Circuit::new(n_qubits);
    for (gate, _line) in gates {
        // Operands were validated against the register table above, so the
        // push cannot panic.
        circuit.push(gate);
    }
    Ok(circuit)
}

/// Strips comments and splits the source into `;`-terminated statements.
fn split_statements(source: &str) -> Result<Vec<Statement>, QasmError> {
    let mut statements = Vec::new();
    let mut current = String::new();
    let mut start_line = 1usize;
    for (lineno, raw) in source.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("");
        for ch in line.chars() {
            if ch == ';' {
                let text = current.trim().to_string();
                if !text.is_empty() {
                    statements.push(Statement {
                        text,
                        line: start_line,
                    });
                }
                current.clear();
            } else {
                if current.trim().is_empty() && !ch.is_whitespace() {
                    start_line = lineno + 1;
                }
                current.push(ch);
            }
        }
        current.push(' ');
    }
    if !current.trim().is_empty() {
        return Err(QasmError::new(
            start_line,
            format!("statement not terminated by `;`: `{}`", current.trim()),
        ));
    }
    Ok(statements)
}

/// Splits a statement into its leading keyword and the remainder.
fn split_keyword(text: &str) -> (&str, &str) {
    let end = text
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .unwrap_or(text.len());
    (&text[..end], &text[end..])
}

/// Parses `name[size]` from a qreg/creg declaration.
fn parse_declaration(rest: &str, line: usize) -> Result<(String, usize), QasmError> {
    let rest = rest.trim();
    let (name, idx) = split_indexed(rest, line)?;
    if name.is_empty() {
        return Err(QasmError::new(line, "register declaration needs a name"));
    }
    if idx == 0 {
        return Err(QasmError::new(line, "register size must be positive"));
    }
    Ok((name.to_string(), idx))
}

/// Parses `name[index]`, rejecting anything else.
fn split_indexed(text: &str, line: usize) -> Result<(&str, usize), QasmError> {
    let text = text.trim();
    let open = text
        .find('[')
        .ok_or_else(|| QasmError::new(line, format!("expected `name[index]`, got `{text}`")))?;
    let close = text
        .rfind(']')
        .filter(|&c| c == text.len() - 1 && c > open)
        .ok_or_else(|| QasmError::new(line, format!("unbalanced brackets in `{text}`")))?;
    let name = text[..open].trim();
    if !is_identifier(name) {
        return Err(QasmError::new(line, format!("bad identifier `{name}`")));
    }
    let idx: usize = text[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| QasmError::new(line, format!("bad index in `{text}`")))?;
    Ok((name, idx))
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_lowercase() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One resolved gate operand: a single qubit (`q[3]`) or a whole-register
/// broadcast (`q`), which OpenQASM applies element-wise.
enum Operand {
    One(usize),
    /// Flattened qubit range `offset..offset + size` of the register.
    All {
        offset: usize,
        size: usize,
    },
}

impl Operand {
    /// The flattened qubit indices this operand covers, in register order.
    fn qubits(&self) -> std::ops::Range<usize> {
        match *self {
            Operand::One(q) => q..q + 1,
            Operand::All { offset, size } => offset..offset + size,
        }
    }
}

/// Resolves `name[index]` to a flattened qubit index, or a bare declared
/// register name to a broadcast over its qubits.
fn resolve_operand(text: &str, qregs: &[QReg], line: usize) -> Result<Operand, QasmError> {
    let text = text.trim();
    let lookup = |name: &str| -> Result<&QReg, QasmError> {
        qregs
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| QasmError::new(line, format!("undeclared register `{name}`")))
    };
    if !text.contains('[') {
        if !is_identifier(text) {
            return Err(QasmError::new(
                line,
                format!("expected `name[index]` or a register name, got `{text}`"),
            ));
        }
        let reg = lookup(text)?;
        return Ok(Operand::All {
            offset: reg.offset,
            size: reg.size,
        });
    }
    let (name, idx) = split_indexed(text, line)?;
    let reg = lookup(name)?;
    if idx >= reg.size {
        return Err(QasmError::new(
            line,
            format!("index {idx} out of range for `{name}[{}]`", reg.size),
        ));
    }
    Ok(Operand::One(reg.offset + idx))
}

/// Parses one gate application, possibly lowering to several [`Gate`]s.
fn parse_gate(name: &str, rest: &str, qregs: &[QReg], line: usize) -> Result<Vec<Gate>, QasmError> {
    let rest = rest.trim();
    // Optional parenthesized parameter list.
    let (params, operands_text) = if let Some(stripped) = rest.strip_prefix('(') {
        let close = stripped
            .find(')')
            .ok_or_else(|| QasmError::new(line, "unclosed parameter list"))?;
        (Some(stripped[..close].trim()), stripped[close + 1..].trim())
    } else {
        (None, rest)
    };
    let operands: Vec<Operand> = operands_text
        .split(',')
        .map(|op| resolve_operand(op, qregs, line))
        .collect::<Result<_, _>>()?;

    let arity = |want: usize| -> Result<(), QasmError> {
        if operands.len() == want {
            Ok(())
        } else {
            Err(QasmError::new(
                line,
                format!("`{name}` takes {want} operand(s), got {}", operands.len()),
            ))
        }
    };
    let no_params = |gates: Vec<Gate>| -> Result<Vec<Gate>, QasmError> {
        if params.is_some() {
            Err(QasmError::new(
                line,
                format!("`{name}` takes no parameters"),
            ))
        } else {
            Ok(gates)
        }
    };
    // Two-qubit gates take exactly one qubit per operand: whole-register
    // broadcast is a single-qubit-gate convenience in this subset.
    let two_distinct = || -> Result<(usize, usize), QasmError> {
        arity(2)?;
        let (a, b) = match (&operands[0], &operands[1]) {
            (Operand::One(a), Operand::One(b)) => (*a, *b),
            _ => {
                return Err(QasmError::new(
                    line,
                    format!(
                        "`{name}` does not support whole-register broadcast \
                         (single-qubit gates only)"
                    ),
                ))
            }
        };
        if a == b {
            Err(QasmError::new(
                line,
                format!("`{name}` addresses the same qubit twice"),
            ))
        } else {
            Ok((a, b))
        }
    };
    let one_param = || -> Result<f64, QasmError> {
        match params {
            Some(p) => parse_angle(p, line),
            None => Err(QasmError::new(
                line,
                format!("`{name}` needs an angle parameter"),
            )),
        }
    };

    // Single-qubit gates broadcast: `h q;` applies `h` to every qubit of
    // `q` in register order.
    let fixed_1q = |kind: SingleQubitKind| -> Result<Vec<Gate>, QasmError> {
        arity(1)?;
        no_params(
            operands[0]
                .qubits()
                .map(|q| Gate::single(kind, q))
                .collect(),
        )
    };
    let rotation_1q = |make: fn(f64) -> SingleQubitKind| -> Result<Vec<Gate>, QasmError> {
        arity(1)?;
        let angle = one_param()?;
        Ok(operands[0]
            .qubits()
            .map(|q| Gate::single(make(angle), q))
            .collect())
    };
    match name {
        "x" => fixed_1q(SingleQubitKind::X),
        "y" => fixed_1q(SingleQubitKind::Y),
        "z" => fixed_1q(SingleQubitKind::Z),
        "h" => fixed_1q(SingleQubitKind::H),
        "s" => fixed_1q(SingleQubitKind::S),
        "sdg" => fixed_1q(SingleQubitKind::Sdg),
        "t" => fixed_1q(SingleQubitKind::T),
        "tdg" => fixed_1q(SingleQubitKind::Tdg),
        "rx" => rotation_1q(SingleQubitKind::Rx),
        "ry" => rotation_1q(SingleQubitKind::Ry),
        "rz" => rotation_1q(SingleQubitKind::Rz),
        "cx" | "CX" => {
            let (c, t) = two_distinct()?;
            no_params(vec![Gate::cx(c, t)])
        }
        "cz" => {
            let (c, t) = two_distinct()?;
            // CZ = (I⊗H)·CX·(I⊗H): lowered into the compiler's gate set.
            no_params(vec![Gate::h(t), Gate::cx(c, t), Gate::h(t)])
        }
        "swap" => {
            let (a, b) = two_distinct()?;
            no_params(vec![Gate::swap(a, b)])
        }
        _ => Err(QasmError::new(line, format!("unknown gate `{name}`"))),
    }
}

/// Evaluates an angle expression: `['-'] factor (('*'|'/') factor)*` where
/// a factor is a float literal or `pi`.
fn parse_angle(text: &str, line: usize) -> Result<f64, QasmError> {
    let text = text.trim();
    let bad = || QasmError::new(line, format!("bad angle expression `{text}`"));
    let (negated, body) = match text.strip_prefix('-') {
        Some(b) => (true, b.trim()),
        None => (false, text),
    };
    if body.is_empty() {
        return Err(bad());
    }
    let mut value = 1.0f64;
    let mut op = '*';
    let mut rest = body;
    loop {
        let end = rest.find(['*', '/']).unwrap_or(rest.len());
        let factor_text = rest[..end].trim();
        let factor = if factor_text == "pi" {
            std::f64::consts::PI
        } else {
            factor_text.parse::<f64>().map_err(|_| bad())?
        };
        match op {
            '*' => value *= factor,
            '/' => value /= factor,
            _ => unreachable!(),
        }
        if end == rest.len() {
            break;
        }
        op = rest.as_bytes()[end] as char;
        rest = &rest[end + 1..];
        if rest.trim().is_empty() {
            return Err(bad());
        }
    }
    Ok(if negated { -value } else { value })
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    fn parse(body: &str) -> Result<Circuit, QasmError> {
        parse_qasm(&format!("{HEADER}{body}"))
    }

    #[test]
    fn minimal_program() {
        let c = parse("qreg q[3];\nh q[0];\ncx q[0], q[1];\nswap q[1], q[2];\n").unwrap();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.gates(), &[Gate::h(0), Gate::cx(0, 1), Gate::swap(1, 2)]);
    }

    #[test]
    fn multiple_registers_flatten_in_order() {
        let c = parse("qreg a[2];\nqreg b[2];\ncx a[1], b[0];\n").unwrap();
        assert_eq!(c.n_qubits(), 4);
        assert_eq!(c.gates(), &[Gate::cx(1, 2)]);
    }

    #[test]
    fn cz_lowers_to_h_cx_h() {
        let c = parse("qreg q[2];\ncz q[0], q[1];\n").unwrap();
        assert_eq!(c.gates(), &[Gate::h(1), Gate::cx(0, 1), Gate::h(1)]);
    }

    #[test]
    fn rotations_and_angle_expressions() {
        let c =
            parse("qreg q[1];\nrz(pi/2) q[0];\nrx(-pi) q[0];\nry(3*pi/4) q[0];\nrz(0.25) q[0];\n")
                .unwrap();
        let angles: Vec<f64> = c
            .gates()
            .iter()
            .map(|g| match g {
                Gate::Single { kind, .. } => match kind {
                    SingleQubitKind::Rz(a) | SingleQubitKind::Rx(a) | SingleQubitKind::Ry(a) => *a,
                    _ => panic!("unexpected kind"),
                },
                _ => panic!("unexpected gate"),
            })
            .collect();
        let pi = std::f64::consts::PI;
        assert_eq!(angles, vec![pi / 2.0, -pi, 3.0 * pi / 4.0, 0.25]);
    }

    #[test]
    fn barriers_comments_and_creg_are_ignored() {
        let c = parse(
            "qreg q[2];\ncreg c[2];\n// comment\nh q[0]; barrier q[0], q[1];\ncx q[0], q[1];\n",
        )
        .unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn broadcast_expands_single_qubit_gates() {
        let c = parse("qreg q[3];\nh q;\n").unwrap();
        assert_eq!(c.gates(), &[Gate::h(0), Gate::h(1), Gate::h(2)]);
        // Broadcast respects register offsets and declaration order.
        let c = parse("qreg a[2];\nqreg b[2];\nx b;\n").unwrap();
        assert_eq!(c.gates(), &[Gate::x(2), Gate::x(3)]);
        // Rotations broadcast with one shared angle.
        let c = parse("qreg q[2];\nrz(pi/2) q;\n").unwrap();
        let pi = std::f64::consts::PI;
        assert_eq!(c.gates(), &[Gate::rz(pi / 2.0, 0), Gate::rz(pi / 2.0, 1)]);
    }

    #[test]
    fn broadcast_rejected_for_two_qubit_gates() {
        for stmt in ["cx q, r;", "cx q[0], r;", "swap q, r;", "cz r, q[1];"] {
            let err = parse(&format!("qreg q[2];\nqreg r[2];\n{stmt}\n")).unwrap_err();
            assert!(
                err.message.contains("whole-register broadcast"),
                "{stmt}: {}",
                err.message
            );
        }
    }

    #[test]
    fn broadcast_of_undeclared_register_rejected() {
        let err = parse("qreg q[2];\nh r;\n").unwrap_err();
        assert!(err.message.contains("undeclared register `r`"));
        let err = parse("qreg q[2];\nh 3;\n").unwrap_err();
        assert!(err.message.contains("register name"), "{}", err.message);
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse_qasm("qreg q[1];\n").unwrap_err();
        assert!(err.message.contains("OPENQASM"));
    }

    #[test]
    fn undeclared_register_rejected() {
        let err = parse("qreg q[2];\nh r[0];\n").unwrap_err();
        assert!(err.message.contains("undeclared register `r`"));
        assert_eq!(err.line, 4);
    }

    #[test]
    fn out_of_range_index_rejected() {
        let err = parse("qreg q[2];\nx q[2];\n").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn duplicate_operand_rejected() {
        let err = parse("qreg q[2];\ncx q[1], q[1];\n").unwrap_err();
        assert!(err.message.contains("same qubit twice"));
    }

    #[test]
    fn unknown_gate_rejected() {
        let err = parse("qreg q[2];\nccx q[0], q[1], q[0];\n").unwrap_err();
        assert!(err.message.contains("unknown gate"));
    }

    #[test]
    fn unsupported_statement_rejected() {
        let err = parse("qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];\n").unwrap_err();
        assert!(err.message.contains("unsupported statement"));
    }

    #[test]
    fn missing_semicolon_rejected() {
        let err = parse("qreg q[1];\nh q[0]\n").unwrap_err();
        assert!(err.message.contains("not terminated"));
    }

    #[test]
    fn wrong_arity_rejected() {
        let err = parse("qreg q[2];\ncx q[0];\n").unwrap_err();
        assert!(err.message.contains("takes 2 operand(s)"));
    }

    #[test]
    fn bad_angle_rejected() {
        let err = parse("qreg q[1];\nrz(two) q[0];\n").unwrap_err();
        assert!(err.message.contains("bad angle"));
        let err = parse("qreg q[1];\nrz() q[0];\n").unwrap_err();
        assert!(err.message.contains("bad angle"));
    }

    #[test]
    fn error_display_includes_line() {
        let err = parse("qreg q[1];\nbadgate q[0];\n").unwrap_err();
        let text = format!("{err}");
        assert!(text.contains("line 4"), "{text}");
    }
}
