//! Circuit → OpenQASM 2.0 serialization.

use qompress_circuit::{Circuit, Gate, ParametricCircuit, ParametricGate, SingleQubitKind};
use std::fmt::Write as _;

/// Serializes a circuit as an OpenQASM 2.0 program over one register `q`.
///
/// Only constructs the subset parser accepts are emitted, and angles use
/// Rust's shortest-round-trip float formatting, so
/// `parse_qasm(&to_qasm(&c)) == c` exactly (including `f64` bits).
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    for gate in circuit.iter() {
        write_gate(&mut out, gate);
    }
    out
}

/// Emits one concrete gate as a statement line.
fn write_gate(out: &mut String, gate: &Gate) {
    match *gate {
        Gate::Single { kind, qubit } => {
            let _ = match kind {
                SingleQubitKind::X => writeln!(out, "x q[{qubit}];"),
                SingleQubitKind::Y => writeln!(out, "y q[{qubit}];"),
                SingleQubitKind::Z => writeln!(out, "z q[{qubit}];"),
                SingleQubitKind::H => writeln!(out, "h q[{qubit}];"),
                SingleQubitKind::S => writeln!(out, "s q[{qubit}];"),
                SingleQubitKind::Sdg => writeln!(out, "sdg q[{qubit}];"),
                SingleQubitKind::T => writeln!(out, "t q[{qubit}];"),
                SingleQubitKind::Tdg => writeln!(out, "tdg q[{qubit}];"),
                // `{:?}` prints the shortest decimal that parses back to
                // the same f64 — the exact-round-trip requirement.
                SingleQubitKind::Rx(a) => writeln!(out, "rx({a:?}) q[{qubit}];"),
                SingleQubitKind::Ry(a) => writeln!(out, "ry({a:?}) q[{qubit}];"),
                SingleQubitKind::Rz(a) => writeln!(out, "rz({a:?}) q[{qubit}];"),
            };
        }
        Gate::Cx { control, target } => {
            let _ = writeln!(out, "cx q[{control}], q[{target}];");
        }
        Gate::Swap { a, b } => {
            let _ = writeln!(out, "swap q[{a}], q[{b}];");
        }
    }
}

/// Serializes a parametric skeleton as an OpenQASM 2.0 program over one
/// register `q`, spelling rotation sites as `rz(theta0) q[3];`.
///
/// Mirrors [`to_qasm`]: concrete gates (including literal-angle rotations)
/// serialize identically, so
/// `parse_parametric_qasm(&to_parametric_qasm(&s)) == s` exactly — the
/// wire format `submit_sweep` ships skeletons in.
pub fn to_parametric_qasm(skeleton: &ParametricCircuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", skeleton.n_qubits());
    for gate in skeleton.gates() {
        match *gate {
            ParametricGate::Fixed(ref g) => write_gate(&mut out, g),
            ParametricGate::Rotation { axis, param, qubit } => {
                let _ = writeln!(out, "{}(theta{param}) q[{qubit}];", axis.name());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_qasm;

    #[test]
    fn serializes_all_gate_forms() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::single(SingleQubitKind::Sdg, 1));
        c.push(Gate::rz(-0.75, 2));
        c.push(Gate::cx(0, 2));
        c.push(Gate::swap(1, 2));
        let text = to_qasm(&c);
        assert!(text.starts_with("OPENQASM 2.0;\n"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("sdg q[1];"));
        assert!(text.contains("rz(-0.75) q[2];"));
        assert!(text.contains("cx q[0], q[2];"));
        assert!(text.contains("swap q[1], q[2];"));
    }

    #[test]
    fn empty_circuit_serializes_header_only() {
        let text = to_qasm(&Circuit::new(2));
        let reparsed = parse_qasm(&text).unwrap();
        assert_eq!(reparsed.n_qubits(), 2);
        assert!(reparsed.is_empty());
    }

    #[test]
    fn parametric_skeleton_round_trips() {
        use qompress_circuit::RotationAxis;
        let mut s = ParametricCircuit::new(3);
        s.push(Gate::h(0));
        s.push_param(RotationAxis::Rz, 0, 0);
        s.push(Gate::cx(0, 1));
        s.push(Gate::rz(-0.75, 2));
        s.push_param(RotationAxis::Rx, 2, 1);
        let text = to_parametric_qasm(&s);
        assert!(text.contains("rz(theta0) q[0];"), "{text}");
        assert!(text.contains("rx(theta2) q[1];"), "{text}");
        assert!(text.contains("rz(-0.75) q[2];"), "{text}");
        assert_eq!(crate::parse_parametric_qasm(&text).unwrap(), s);
    }

    #[test]
    fn concrete_skeleton_serializes_like_its_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::rz(0.5, 1));
        c.push(Gate::swap(0, 1));
        let s = ParametricCircuit::from(&c);
        assert_eq!(to_parametric_qasm(&s), to_qasm(&c));
    }

    #[test]
    fn awkward_angles_round_trip_exactly() {
        let mut c = Circuit::new(1);
        for a in [
            std::f64::consts::PI,
            -std::f64::consts::FRAC_PI_3,
            1.0e-12,
            0.1 + 0.2, // famously not 0.3
            f64::MIN_POSITIVE,
        ] {
            c.push(Gate::rz(a, 0));
            c.push(Gate::single(SingleQubitKind::Rx(a), 0));
            c.push(Gate::single(SingleQubitKind::Ry(a), 0));
        }
        assert_eq!(parse_qasm(&to_qasm(&c)).unwrap(), c);
    }
}
