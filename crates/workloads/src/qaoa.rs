//! QAOA-style circuits over arbitrary interaction graphs (paper §6.3).
//!
//! "For each edge, in a random order, we perform a CX, a Z gate, and
//! another CX gate" — the standard `exp(-iγ Z⊗Z)` block with the rotation
//! folded into a Z-class gate.

use qompress_circuit::graph::UGraph;
use qompress_circuit::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a single-round QAOA circuit for `graph`, visiting edges in a
/// seeded random order.
pub fn qaoa(graph: &UGraph, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = graph.edges();
    for i in (1..edges.len()).rev() {
        let j = rng.gen_range(0..=i);
        edges.swap(i, j);
    }
    let mut c = Circuit::new(graph.len());
    // Mixer preparation.
    for q in 0..graph.len() {
        c.push(Gate::h(q));
    }
    for (u, v) in edges {
        c.push(Gate::cx(u, v));
        c.push(Gate::z(v));
        c.push(Gate::cx(u, v));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs;
    use qompress_circuit::InteractionGraph;

    #[test]
    fn gate_count_is_three_per_edge_plus_mixer() {
        let g = graphs::torus(3, 3);
        let c = qaoa(&g, 1);
        assert_eq!(c.len(), g.len() + 3 * g.edge_count());
        assert_eq!(c.two_qubit_gate_count(), 2 * g.edge_count());
    }

    #[test]
    fn interaction_graph_matches_input_graph() {
        let g = graphs::cylinder(2, 4);
        let c = qaoa(&g, 5);
        let ig = InteractionGraph::build(&c);
        for (a, b) in g.edges() {
            assert!(ig.weight(a, b) > 0.0, "missing interaction {a}-{b}");
        }
        assert_eq!(ig.edge_count(), g.edge_count());
    }

    #[test]
    fn edge_order_is_seeded() {
        let g = graphs::random_graph(10, 0.5, 3);
        assert_eq!(qaoa(&g, 7).gates(), qaoa(&g, 7).gates());
        assert_ne!(qaoa(&g, 7).gates(), qaoa(&g, 8).gates());
    }
}
