//! # qompress-workloads
//!
//! The benchmark circuits of the paper's evaluation (§6.3): the Cuccaro
//! ripple-carry adder, the generalized Toffoli (CNU), bucket-brigade QRAM,
//! Bernstein–Vazirani, and QAOA circuits over random/cylinder/torus/
//! binary-welded-tree interaction graphs.
//!
//! All generators lower to the compiler's `{1q, CX, SWAP}` gate set and are
//! deterministic in their seeds; each has a `*_sized` form producing a
//! circuit of an exact qubit count for the paper's size sweeps.
//!
//! ```
//! use qompress_workloads::{Benchmark, build};
//!
//! let c = build(Benchmark::Cuccaro, 12, 7);
//! assert_eq!(c.n_qubits(), 12);
//! assert!(c.two_qubit_gate_count() > 0);
//! ```

#![warn(missing_docs)]

mod bv;
mod cuccaro;
pub mod graphs;
mod qaoa;
mod qram;
mod toffoli;

pub use bv::{bernstein_vazirani, bv_sized};
pub use cuccaro::{cuccaro_adder, cuccaro_sized, AdderLayout};
pub use qaoa::qaoa;
pub use qram::{qram, qram_sized, QramLayout};
pub use toffoli::{cnu, cnu_sized};

// The OpenQASM frontend: arbitrary external circuits enter the workload
// vocabulary next to the built-in generators.
pub use qompress_qasm::{parse_qasm, random_circuit, to_qasm, QasmError};

use qompress_circuit::Circuit;

/// A seeded pseudo-random circuit with exactly `size` qubits, following
/// the `*_sized` convention of the built-in families: ~4 gates per qubit
/// at the benchmark suite's typical two-qubit density.
pub fn random_sized(size: usize, seed: u64) -> Circuit {
    random_circuit(size, 4 * size, seed)
}

/// The benchmark family identifiers used across the evaluation harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Benchmark {
    /// Cuccaro ripple-carry adder \[15\].
    Cuccaro,
    /// Generalized Toffoli / CNU \[6\].
    Cnu,
    /// Bucket-brigade QRAM \[21\].
    Qram,
    /// Bernstein–Vazirani \[7\].
    Bv,
    /// QAOA on a random graph with 30% edge density \[16\].
    QaoaRandom,
    /// QAOA on a cylinder graph (Figure 6a).
    QaoaCylinder,
    /// QAOA on a torus graph (Figure 6b).
    QaoaTorus,
    /// QAOA on a binary welded tree (Figure 6c).
    QaoaBwt,
}

/// All benchmarks, in the paper's Figure 7 ordering.
pub const ALL_BENCHMARKS: [Benchmark; 8] = [
    Benchmark::Cuccaro,
    Benchmark::Cnu,
    Benchmark::Qram,
    Benchmark::Bv,
    Benchmark::QaoaRandom,
    Benchmark::QaoaCylinder,
    Benchmark::QaoaTorus,
    Benchmark::QaoaBwt,
];

impl Benchmark {
    /// Short name used in reports and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Cuccaro => "cuccaro",
            Benchmark::Cnu => "cnu",
            Benchmark::Qram => "qram",
            Benchmark::Bv => "bv",
            Benchmark::QaoaRandom => "qaoa-random",
            Benchmark::QaoaCylinder => "qaoa-cylinder",
            Benchmark::QaoaTorus => "qaoa-torus",
            Benchmark::QaoaBwt => "qaoa-bwt",
        }
    }

    /// Smallest total qubit count this family supports.
    pub fn min_size(self) -> usize {
        match self {
            Benchmark::Cuccaro => 4,
            Benchmark::Cnu => 3,
            Benchmark::Qram => 4,
            Benchmark::Bv => 2,
            Benchmark::QaoaRandom => 3,
            Benchmark::QaoaCylinder => 3,
            Benchmark::QaoaTorus => 9,
            Benchmark::QaoaBwt => 6,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Builds a benchmark circuit with exactly `size` qubits (graph-based
/// families may use fewer active qubits when their structure cannot fill
/// `size` exactly; the circuit is padded with idle qubits).
///
/// # Panics
///
/// Panics if `size < kind.min_size()`.
pub fn build(kind: Benchmark, size: usize, seed: u64) -> Circuit {
    assert!(
        size >= kind.min_size(),
        "{kind} needs at least {} qubits",
        kind.min_size()
    );
    match kind {
        Benchmark::Cuccaro => cuccaro_sized(size),
        Benchmark::Cnu => cnu_sized(size),
        Benchmark::Qram => qram_sized(size),
        Benchmark::Bv => bv_sized(size, seed),
        Benchmark::QaoaRandom => pad(qaoa(&graphs::random_graph(size, 0.3, seed), seed), size),
        Benchmark::QaoaCylinder => pad(qaoa(&graphs::cylinder_for(size), seed), size),
        Benchmark::QaoaTorus => pad(qaoa(&graphs::torus_for(size), seed), size),
        Benchmark::QaoaBwt => pad(
            qaoa(&graphs::binary_welded_tree_for(size, seed), seed),
            size,
        ),
    }
}

fn pad(inner: Circuit, size: usize) -> Circuit {
    if inner.n_qubits() == size {
        return inner;
    }
    assert!(
        inner.n_qubits() <= size,
        "generator exceeded requested size"
    );
    let mut c = Circuit::new(size);
    c.extend_from(&inner);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_at_25() {
        for kind in ALL_BENCHMARKS {
            let c = build(kind, 25, 11);
            assert_eq!(c.n_qubits(), 25, "{kind}");
            assert!(c.two_qubit_gate_count() > 0, "{kind}");
        }
    }

    #[test]
    fn sizes_are_exact_across_sweep() {
        for kind in ALL_BENCHMARKS {
            for size in [10usize, 20, 30, 40] {
                let c = build(kind, size, 3);
                assert_eq!(c.n_qubits(), size, "{kind} at {size}");
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for kind in ALL_BENCHMARKS {
            let a = build(kind, 16, 9);
            let b = build(kind, 16, 9);
            assert_eq!(a.gates(), b.gates(), "{kind}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ALL_BENCHMARKS.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_BENCHMARKS.len());
    }

    #[test]
    #[should_panic(expected = "needs at least")]
    fn build_rejects_tiny_sizes() {
        build(Benchmark::QaoaTorus, 5, 1);
    }
}
