//! Generalized Toffoli (CNU) circuits [6] (paper §6.3, Figure 5a/b).
//!
//! Uses the ancilla V-chain: `CCX(c0, c1, a0)`, `CCX(c2, a0, a1)`, …,
//! finishing on the target, then uncomputing. Each decomposed CCX forms a
//! triangle in the interaction graph, giving the regular cycle structure
//! the Ring-Based strategy flattens into a line.

use qompress_circuit::Circuit;

/// Builds an `n_controls`-controlled X with the ancilla V-chain.
///
/// Qubit layout: controls `0..n`, ancillas `n..n+max(n-2,0)`, target last.
/// Total qubits: `2·n_controls − 1` for `n_controls ≥ 2`.
///
/// # Panics
///
/// Panics if `n_controls == 0`.
pub fn cnu(n_controls: usize) -> Circuit {
    assert!(n_controls >= 1, "need at least one control");
    match n_controls {
        1 => {
            let mut c = Circuit::new(2);
            c.push(qompress_circuit::Gate::cx(0, 1));
            c
        }
        2 => {
            let mut c = Circuit::new(3);
            c.push_ccx(0, 1, 2);
            c
        }
        n => {
            let n_anc = n - 2;
            let total = n + n_anc + 1;
            let target = total - 1;
            let anc = |i: usize| n + i;
            let mut c = Circuit::new(total);
            // Compute chain.
            c.push_ccx(0, 1, anc(0));
            for i in 0..n_anc.saturating_sub(1) {
                c.push_ccx(2 + i, anc(i), anc(i + 1));
            }
            // Final Toffoli onto the target.
            c.push_ccx(n - 1, anc(n_anc - 1), target);
            // Uncompute chain.
            for i in (0..n_anc.saturating_sub(1)).rev() {
                c.push_ccx(2 + i, anc(i), anc(i + 1));
            }
            c.push_ccx(0, 1, anc(0));
            c
        }
    }
}

/// Builds a CNU using at most `total` qubits, padding with idle qubits to
/// exactly `total`. For `total = 2k − 1` the fit is exact.
///
/// # Panics
///
/// Panics if `total < 3`.
pub fn cnu_sized(total: usize) -> Circuit {
    assert!(total >= 3, "CNU needs at least 3 qubits");
    let n_controls = total.div_ceil(2);
    let inner = cnu(n_controls);
    let mut c = Circuit::new(total);
    c.extend_from(&inner);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::InteractionGraph;

    #[test]
    fn qubit_counts() {
        assert_eq!(cnu(1).n_qubits(), 2);
        assert_eq!(cnu(2).n_qubits(), 3);
        assert_eq!(cnu(3).n_qubits(), 5);
        assert_eq!(cnu(5).n_qubits(), 9);
        assert_eq!(cnu(8).n_qubits(), 15);
    }

    #[test]
    fn ccx_count_in_chain() {
        // n controls (n >= 3): 2(n-2) + 1 Toffolis, 6 CX each.
        for n in 3..7 {
            let c = cnu(n);
            let expect_ccx = 2 * (n - 2) + 1;
            assert_eq!(c.two_qubit_gate_count(), 6 * expect_ccx);
        }
    }

    #[test]
    fn interaction_graph_is_triangle_chain() {
        let c = cnu(4); // controls 0-3, anc 4-5, target 6
        let ig = InteractionGraph::build(&c);
        let ug = ig.to_ugraph();
        // First triangle: (0, 1, 4).
        assert!(ug.has_edge(0, 1) && ug.has_edge(1, 4) && ug.has_edge(0, 4));
        // Second: (2, 4, 5).
        assert!(ug.has_edge(2, 4) && ug.has_edge(4, 5) && ug.has_edge(2, 5));
        // Final: (3, 5, 6).
        assert!(ug.has_edge(3, 5) && ug.has_edge(5, 6) && ug.has_edge(3, 6));
        // Every qubit lies on a 3-cycle.
        for q in 0..c.n_qubits() {
            let cyc = ug.min_cycle_through(q).expect("triangle chain");
            assert_eq!(cyc.len(), 3, "qubit {q}");
        }
    }

    #[test]
    fn sized_matches_request() {
        for total in [5usize, 9, 15, 21, 25] {
            let c = cnu_sized(total);
            assert_eq!(c.n_qubits(), total);
            // Used qubits = 2·⌈(total+1)/2⌉ − 1.
            let controls = total.div_ceil(2);
            assert_eq!(c.used_qubits().len(), 2 * controls - 1);
        }
    }
}
