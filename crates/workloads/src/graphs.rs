//! Interaction-structure graphs for the QAOA benchmarks (paper §6.3,
//! Figure 6): random graphs with 30% edge density, cylinders, tori and
//! binary welded trees.

use qompress_circuit::graph::UGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi-style random graph over `n` nodes with the given edge
/// density (paper uses 30%). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn random_graph(n: usize, density: f64, seed: u64) -> UGraph {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = UGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen::<f64>() < density {
                g.add_edge(a, b);
            }
        }
    }
    g
}

/// A `rows x cols` cylinder: grid wrapped around in the column direction
/// (each row is a ring), Figure 6(a).
///
/// # Panics
///
/// Panics if `rows == 0` or `cols < 3`.
pub fn cylinder(rows: usize, cols: usize) -> UGraph {
    assert!(rows >= 1 && cols >= 3, "cylinder needs rows>=1, cols>=3");
    let mut g = UGraph::new(rows * cols);
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(at(r, c), at(r, (c + 1) % cols));
            if r + 1 < rows {
                g.add_edge(at(r, c), at(r + 1, c));
            }
        }
    }
    g
}

/// A `rows x cols` torus: wraps in both directions, Figure 6(b).
///
/// # Panics
///
/// Panics if either dimension is below 3.
pub fn torus(rows: usize, cols: usize) -> UGraph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dims >= 3");
    let mut g = UGraph::new(rows * cols);
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(at(r, c), at(r, (c + 1) % cols));
            g.add_edge(at(r, c), at((r + 1) % rows, c));
        }
    }
    g
}

/// A binary welded tree, Figure 6(c): two complete binary trees of the given
/// height whose leaf layers are joined by two perfect matchings forming a
/// single cycle through all leaves.
///
/// Total nodes: `2·(2^(height+1) − 1)`.
///
/// # Panics
///
/// Panics if `height == 0`.
pub fn binary_welded_tree(height: usize, seed: u64) -> UGraph {
    assert!(height >= 1, "welded tree needs height >= 1");
    let tree_nodes = (1usize << (height + 1)) - 1;
    let n_leaves = 1usize << height;
    let mut g = UGraph::new(2 * tree_nodes);
    // Tree A occupies [0, tree_nodes), tree B the rest; both heap-indexed.
    for base in [0, tree_nodes] {
        for v in 0..tree_nodes {
            let left = 2 * v + 1;
            let right = 2 * v + 2;
            if left < tree_nodes {
                g.add_edge(base + v, base + left);
            }
            if right < tree_nodes {
                g.add_edge(base + v, base + right);
            }
        }
    }
    // Leaves are the last n_leaves heap slots of each tree.
    let leaf_a: Vec<usize> = (0..n_leaves).map(|i| tree_nodes - n_leaves + i).collect();
    let mut leaf_b: Vec<usize> = (0..n_leaves)
        .map(|i| 2 * tree_nodes - n_leaves + i)
        .collect();
    // Weld: a_i -> b_{σ(i)} and a_i -> b_{σ(i)+1 mod}, with σ a seeded
    // shuffle; the pair of matchings forms one alternating cycle.
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..leaf_b.len()).rev() {
        let j = rng.gen_range(0..=i);
        leaf_b.swap(i, j);
    }
    for i in 0..n_leaves {
        g.add_edge(leaf_a[i], leaf_b[i]);
        g.add_edge(leaf_a[i], leaf_b[(i + 1) % n_leaves]);
    }
    g
}

/// Picks cylinder dimensions for roughly `n` nodes: rows = ⌊n/4⌋ capped to
/// keep cols ≥ 4, cols sized to fill.
pub fn cylinder_for(n: usize) -> UGraph {
    let cols = 4.max((n as f64).sqrt().round() as usize).max(3);
    let rows = (n / cols).max(1);
    cylinder(rows, cols)
}

/// Picks torus dimensions for roughly `n` nodes.
pub fn torus_for(n: usize) -> UGraph {
    let cols = 3.max((n as f64).sqrt().round() as usize);
    let rows = (n / cols).max(3);
    torus(rows, cols)
}

/// Picks a welded-tree height for at most `n` nodes (falls back to height 1).
pub fn binary_welded_tree_for(n: usize, seed: u64) -> UGraph {
    let mut height = 1;
    while 2 * ((1usize << (height + 2)) - 1) <= n {
        height += 1;
    }
    binary_welded_tree(height, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic() {
        let a = random_graph(12, 0.3, 42);
        let b = random_graph(12, 0.3, 42);
        assert_eq!(a.edges(), b.edges());
        let c = random_graph(12, 0.3, 43);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn random_density_extremes() {
        assert_eq!(random_graph(8, 0.0, 1).edge_count(), 0);
        assert_eq!(random_graph(8, 1.0, 1).edge_count(), 28);
    }

    #[test]
    fn cylinder_edge_count() {
        // rows*cols ring edges per row: rows*cols; vertical: (rows-1)*cols.
        let g = cylinder(3, 5);
        assert_eq!(g.len(), 15);
        assert_eq!(g.edge_count(), 3 * 5 + 2 * 5);
    }

    #[test]
    fn cylinder_rows_are_rings() {
        let g = cylinder(2, 4);
        assert!(g.has_edge(0, 3)); // wraparound in row 0
        assert!(g.has_edge(4, 7)); // wraparound in row 1
        assert!(!g.has_edge(0, 7));
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(3, 4);
        for v in 0..12 {
            assert_eq!(g.neighbors(v).len(), 4, "node {v}");
        }
        assert_eq!(g.edge_count(), 2 * 12);
    }

    #[test]
    fn welded_tree_structure() {
        let h = 2;
        let g = binary_welded_tree(h, 9);
        let tree_nodes = (1 << (h + 1)) - 1; // 7
        assert_eq!(g.len(), 14);
        // Roots have degree 2; internal nodes 3; leaves 2 tree edges... leaf
        // degree = 1 (parent) + 2 (weld) = 3.
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.neighbors(tree_nodes).len(), 2);
        for leaf in 3..7 {
            assert_eq!(g.neighbors(leaf).len(), 3, "leaf {leaf}");
        }
        // Connected.
        assert!(g.bfs_distances(0).iter().all(|&d| d != usize::MAX));
    }

    #[test]
    fn sized_helpers_stay_near_target() {
        for n in [10usize, 16, 25, 30, 40] {
            let c = cylinder_for(n);
            assert!(
                c.len() <= n + 6 && c.len() >= n / 2,
                "cylinder_for({n}) -> {}",
                c.len()
            );
            let t = torus_for(n.max(9));
            assert!(t.len() >= 9);
        }
        let w = binary_welded_tree_for(40, 3);
        assert!(w.len() <= 40);
    }
}
