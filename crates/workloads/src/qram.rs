//! Bucket-brigade-style QRAM query circuits (paper §6.3, after Gokhale et
//! al. [21]).
//!
//! An address register steers a bus qubit down a binary router tree with
//! controlled-SWAPs, then back up. Decomposed Fredkins give triples of
//! interacting qubits whose triangles *share edges* across tree levels —
//! the structure that makes Ring-Based compression struggle on QRAM
//! (paper §7).

use qompress_circuit::Circuit;

/// Qubit layout of a [`qram`] circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QramLayout {
    /// Number of address bits (tree height).
    pub address_bits: usize,
}

impl QramLayout {
    /// Address qubit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= address_bits`.
    pub fn address(&self, i: usize) -> usize {
        assert!(i < self.address_bits);
        i
    }

    /// Router-tree node `v` (heap indexing, `v < 2^k − 1`).
    pub fn router(&self, v: usize) -> usize {
        assert!(v < self.n_routers());
        self.address_bits + v
    }

    /// Number of router nodes (`2^k − 1`).
    pub fn n_routers(&self) -> usize {
        (1 << self.address_bits) - 1
    }

    /// The bus qubit.
    pub fn bus(&self) -> usize {
        self.address_bits + self.n_routers()
    }

    /// Total qubits: `k + (2^k − 1) + 1`.
    pub fn n_qubits(&self) -> usize {
        self.bus() + 1
    }
}

/// Builds a bucket-brigade QRAM query over `address_bits` address qubits.
///
/// Per tree level `l`: the address bit is fanned out to the routers of that
/// level with CXs, then each router conditionally routes by a CSWAP between
/// its own slot and its two children's slots; the bus finally interacts with
/// the deepest layer and the circuit uncomputes.
///
/// # Panics
///
/// Panics if `address_bits == 0` or `address_bits > 6` (tree growth).
pub fn qram(address_bits: usize) -> Circuit {
    assert!(
        (1..=6).contains(&address_bits),
        "address_bits must be in 1..=6"
    );
    let layout = QramLayout { address_bits };
    let mut c = Circuit::new(layout.n_qubits());
    build_query(&mut c, &layout);
    c
}

fn build_query(c: &mut Circuit, l: &QramLayout) {
    use qompress_circuit::Gate;
    let k = l.address_bits;
    // Load: bus into the root router.
    c.push(Gate::cx(l.bus(), l.router(0)));
    // Route downward level by level.
    for level in 0..k {
        let first = (1 << level) - 1;
        let count = 1 << level;
        for v in first..first + count {
            // Fan the address bit into this router's control.
            c.push(Gate::cx(l.address(level), l.router(v)));
            let left = 2 * v + 1;
            let right = 2 * v + 2;
            if right < l.n_routers() {
                // Route the payload toward one child, controlled by the router.
                c.push_cswap(l.router(v), l.router(left), l.router(right));
            } else {
                // Deepest level: interact with the bus instead of children.
                c.push_ccx(l.router(v), l.address(level), l.bus());
            }
        }
    }
    // Uncompute (reverse routing), restoring the routers.
    for level in (0..k).rev() {
        let first = (1 << level) - 1;
        let count = 1 << level;
        for v in (first..first + count).rev() {
            let left = 2 * v + 1;
            let right = 2 * v + 2;
            if right < l.n_routers() {
                c.push_cswap(l.router(v), l.router(left), l.router(right));
            }
            c.push(Gate::cx(l.address(level), l.router(v)));
        }
    }
    c.push(Gate::cx(l.bus(), l.router(0)));
}

/// Builds a QRAM using at most `total` qubits, padded to exactly `total`.
///
/// # Panics
///
/// Panics if `total < 4` (1 address bit needs 4 qubits).
pub fn qram_sized(total: usize) -> Circuit {
    assert!(total >= 4, "QRAM needs at least 4 qubits");
    let mut k = 1;
    while k < 6 {
        let next = QramLayout {
            address_bits: k + 1,
        };
        if next.n_qubits() > total {
            break;
        }
        k += 1;
    }
    let inner = qram(k);
    let mut c = Circuit::new(total);
    c.extend_from(&inner);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::InteractionGraph;

    #[test]
    fn layout_counts() {
        let l = QramLayout { address_bits: 3 };
        assert_eq!(l.n_routers(), 7);
        assert_eq!(l.n_qubits(), 3 + 7 + 1);
        assert_eq!(l.address(0), 0);
        assert_eq!(l.router(0), 3);
        assert_eq!(l.bus(), 10);
    }

    #[test]
    fn qram_builds_for_each_size() {
        for k in 1..=4 {
            let c = qram(k);
            let l = QramLayout { address_bits: k };
            assert_eq!(c.n_qubits(), l.n_qubits());
            assert!(c.two_qubit_gate_count() > 0);
        }
    }

    #[test]
    fn interaction_graph_has_shared_edge_cycles() {
        let c = qram(3);
        let ig = InteractionGraph::build(&c);
        let ug = ig.to_ugraph();
        // Many qubits lie on short cycles...
        let on_cycles = (0..c.n_qubits())
            .filter(|&q| ug.min_cycle_through(q).is_some())
            .count();
        assert!(on_cycles >= c.n_qubits() / 2);
        // ...and at least one edge is shared by the triangles of two
        // different routers (routers touch parent and both children).
        let l = QramLayout { address_bits: 3 };
        assert!(ug.has_edge(l.router(0), l.router(1)));
        assert!(ug.has_edge(l.router(1), l.router(3)));
    }

    #[test]
    fn sized_picks_largest_fitting_tree() {
        assert_eq!(qram_sized(4).used_qubits().len(), 3); // k=1 uses 3 qubits
        assert_eq!(qram_sized(6).used_qubits().len(), 6); // k=2 fits exactly
        assert_eq!(qram_sized(11).used_qubits().len(), 11); // k=3
        assert_eq!(qram_sized(19).used_qubits().len(), 11); // k=3 still (k=4 needs 20)
        assert_eq!(qram_sized(20).used_qubits().len(), 20); // k=4
        assert_eq!(qram_sized(25).n_qubits(), 25);
    }
}
