//! The Cuccaro ripple-carry adder [15] (paper §6.3, Figure 5c/d).
//!
//! Computes `b := a + b` on two `n`-bit registers with one carry-in ancilla
//! and one carry-out qubit (`2n + 2` qubits total) using the MAJ/UMA ladder.
//! Toffolis are lowered to the standard 6-CX decomposition, which produces
//! the triangle-rich interaction structure the Ring-Based strategy exploits.

use qompress_circuit::{Circuit, Gate};

/// Qubit layout of a [`cuccaro_adder`] circuit.
///
/// Interleaved as `c, b0, a0, b1, a1, …, b(n-1), a(n-1), z` so that the MAJ
/// ladder touches adjacent indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderLayout {
    /// Number of bits per input register.
    pub bits: usize,
}

impl AdderLayout {
    /// The carry-in ancilla.
    pub fn carry_in(&self) -> usize {
        0
    }

    /// Qubit holding `b_i` (the sum register).
    ///
    /// # Panics
    ///
    /// Panics if `i >= bits`.
    pub fn b(&self, i: usize) -> usize {
        assert!(i < self.bits);
        1 + 2 * i
    }

    /// Qubit holding `a_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bits`.
    pub fn a(&self, i: usize) -> usize {
        assert!(i < self.bits);
        2 + 2 * i
    }

    /// The carry-out qubit.
    pub fn carry_out(&self) -> usize {
        1 + 2 * self.bits
    }

    /// Total qubit count (`2·bits + 2`).
    pub fn n_qubits(&self) -> usize {
        2 * self.bits + 2
    }
}

fn maj(c: &mut Circuit, x: usize, y: usize, z: usize) {
    // MAJ(x, y, z): CX(z,y); CX(z,x); CCX(x,y,z).
    c.push(Gate::cx(z, y));
    c.push(Gate::cx(z, x));
    c.push_ccx(x, y, z);
}

fn uma(c: &mut Circuit, x: usize, y: usize, z: usize) {
    // UMA(x, y, z): CCX(x,y,z); CX(z,x); CX(x,y).
    c.push_ccx(x, y, z);
    c.push(Gate::cx(z, x));
    c.push(Gate::cx(x, y));
}

/// Builds the `bits`-bit Cuccaro ripple-carry adder.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn cuccaro_adder(bits: usize) -> Circuit {
    assert!(bits >= 1, "adder needs at least one bit");
    let layout = AdderLayout { bits };
    let mut c = Circuit::new(layout.n_qubits());
    // MAJ ladder.
    maj(&mut c, layout.carry_in(), layout.b(0), layout.a(0));
    for i in 1..bits {
        maj(&mut c, layout.a(i - 1), layout.b(i), layout.a(i));
    }
    // Carry out.
    c.push(Gate::cx(layout.a(bits - 1), layout.carry_out()));
    // UMA ladder (reverse).
    for i in (1..bits).rev() {
        uma(&mut c, layout.a(i - 1), layout.b(i), layout.a(i));
    }
    uma(&mut c, layout.carry_in(), layout.b(0), layout.a(0));
    c
}

/// Builds an adder using at most `total` qubits (bits = `(total − 2) / 2`),
/// returning a circuit padded with idle qubits up to exactly `total`.
///
/// # Panics
///
/// Panics if `total < 4` (a 1-bit adder needs 4 qubits).
pub fn cuccaro_sized(total: usize) -> Circuit {
    assert!(total >= 4, "cuccaro needs at least 4 qubits");
    let bits = (total - 2) / 2;
    let inner = cuccaro_adder(bits);
    let mut c = Circuit::new(total);
    c.extend_from(&inner);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::InteractionGraph;

    #[test]
    fn layout_indices() {
        let l = AdderLayout { bits: 3 };
        assert_eq!(l.carry_in(), 0);
        assert_eq!(l.b(0), 1);
        assert_eq!(l.a(0), 2);
        assert_eq!(l.b(2), 5);
        assert_eq!(l.a(2), 6);
        assert_eq!(l.carry_out(), 7);
        assert_eq!(l.n_qubits(), 8);
    }

    #[test]
    fn adder_qubit_count() {
        for bits in 1..6 {
            let c = cuccaro_adder(bits);
            assert_eq!(c.n_qubits(), 2 * bits + 2);
        }
    }

    #[test]
    fn gate_count_formula() {
        // Per MAJ/UMA: 2 CX + CCX(6 CX) = 8 two-qubit gates; n MAJ + n UMA +
        // 1 carry CX.
        let bits = 4;
        let c = cuccaro_adder(bits);
        assert_eq!(c.two_qubit_gate_count(), 16 * bits + 1);
    }

    #[test]
    fn interaction_graph_has_triangles() {
        // MAJ/UMA blocks interact triples of qubits pairwise (Figure 5d).
        let c = cuccaro_adder(3);
        let ig = InteractionGraph::build(&c);
        let l = AdderLayout { bits: 3 };
        let (x, y, z) = (l.carry_in(), l.b(0), l.a(0));
        assert!(ig.weight(x, y) > 0.0);
        assert!(ig.weight(y, z) > 0.0);
        assert!(ig.weight(x, z) > 0.0);
        // Triangle is detectable as a 3-cycle.
        let ug = ig.to_ugraph();
        let cycle = ug
            .min_cycle_through(x)
            .expect("carry-in lies on a triangle");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn sized_variant_pads_idle_qubits() {
        let c = cuccaro_sized(11);
        assert_eq!(c.n_qubits(), 11);
        // 4-bit adder inside (10 qubits used).
        assert_eq!(c.used_qubits().len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn sized_rejects_tiny() {
        cuccaro_sized(3);
    }
}
