//! Bernstein–Vazirani circuits [7] (paper §6.3).
//!
//! The interaction graph is a star around the phase-kickback target — no
//! cycles, which is exactly why the Ring-Based strategy finds nothing to
//! compress on BV (paper §7).

use qompress_circuit::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a BV circuit recovering the given secret bitstring.
///
/// Layout: data qubits `0..n`, target (oracle ancilla) at index `n`.
pub fn bernstein_vazirani(secret: &[bool]) -> Circuit {
    let n = secret.len();
    let target = n;
    let mut c = Circuit::new(n + 1);
    for q in 0..n {
        c.push(Gate::h(q));
    }
    // |−⟩ on the target.
    c.push(Gate::x(target));
    c.push(Gate::h(target));
    for (q, &bit) in secret.iter().enumerate() {
        if bit {
            c.push(Gate::cx(q, target));
        }
    }
    for q in 0..n {
        c.push(Gate::h(q));
    }
    c
}

/// Builds a BV instance over `total` qubits (secret length `total − 1`)
/// with a random ~half-weight secret, deterministic in `seed`.
///
/// # Panics
///
/// Panics if `total < 2`.
pub fn bv_sized(total: usize, seed: u64) -> Circuit {
    assert!(total >= 2, "BV needs at least 2 qubits");
    let n = total - 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut secret: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
    // Guarantee at least one interaction so the circuit is non-trivial.
    if !secret.iter().any(|&b| b) {
        secret[0] = true;
    }
    bernstein_vazirani(&secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qompress_circuit::InteractionGraph;

    #[test]
    fn cx_count_equals_secret_weight() {
        let secret = vec![true, false, true, true];
        let c = bernstein_vazirani(&secret);
        assert_eq!(c.two_qubit_gate_count(), 3);
        assert_eq!(c.n_qubits(), 5);
    }

    #[test]
    fn interaction_graph_is_a_star_without_cycles() {
        let c = bv_sized(10, 3);
        let ig = InteractionGraph::build(&c);
        let ug = ig.to_ugraph();
        let target = 9;
        for ((a, b), _) in ig.weighted_edges() {
            assert!(a == target || b == target, "all edges touch the target");
        }
        // No qubit lies on a cycle.
        for q in 0..c.n_qubits() {
            assert!(ug.min_cycle_through(q).is_none());
        }
    }

    #[test]
    fn sized_is_deterministic_and_nontrivial() {
        let a = bv_sized(12, 5);
        let b = bv_sized(12, 5);
        assert_eq!(a.gates(), b.gates());
        assert!(a.two_qubit_gate_count() >= 1);
    }
}
