//! Functional correctness of the benchmark generators, checked with the
//! logical state-vector simulator: the adder adds, the generalized Toffoli
//! computes the AND of its controls, and Bernstein-Vazirani recovers its
//! secret in one query.

use qompress_sim::simulate_logical;
use qompress_workloads::{bernstein_vazirani, cnu, cuccaro_adder, AdderLayout};

#[test]
fn cuccaro_adds_every_two_bit_input() {
    let bits = 2;
    let circuit = cuccaro_adder(bits);
    let layout = AdderLayout { bits };
    for a in 0..(1usize << bits) {
        for b in 0..(1usize << bits) {
            let mut init = vec![0usize; circuit.n_qubits()];
            for i in 0..bits {
                init[layout.a(i)] = (a >> i) & 1;
                init[layout.b(i)] = (b >> i) & 1;
            }
            let state = simulate_logical(&circuit, &init);
            let sum = a + b;
            let mut want = init.clone();
            for i in 0..bits {
                want[layout.b(i)] = (sum >> i) & 1;
            }
            want[layout.carry_out()] = (sum >> bits) & 1;
            assert!(
                (state.probability(&want) - 1.0).abs() < 1e-9,
                "{a} + {b} gave the wrong sum register"
            );
        }
    }
}

#[test]
fn cuccaro_three_bits_spot_checks() {
    let bits = 3;
    let circuit = cuccaro_adder(bits);
    let layout = AdderLayout { bits };
    for (a, b) in [(5usize, 3usize), (7, 7), (4, 1), (0, 6)] {
        let mut init = vec![0usize; circuit.n_qubits()];
        for i in 0..bits {
            init[layout.a(i)] = (a >> i) & 1;
            init[layout.b(i)] = (b >> i) & 1;
        }
        let state = simulate_logical(&circuit, &init);
        let sum = a + b;
        let mut want = init.clone();
        for i in 0..bits {
            want[layout.b(i)] = (sum >> i) & 1;
        }
        want[layout.carry_out()] = (sum >> bits) & 1;
        assert!(
            (state.probability(&want) - 1.0).abs() < 1e-9,
            "{a} + {b} = {sum} failed"
        );
    }
}

#[test]
fn cnu_flips_target_only_when_all_controls_set() {
    for n_controls in [1usize, 2, 3, 4] {
        let circuit = cnu(n_controls);
        let n = circuit.n_qubits();
        let target = n - 1;
        // Try every control pattern; ancillas start (and must end) at 0.
        for pattern in 0..(1usize << n_controls) {
            let mut init = vec![0usize; n];
            for (c, bit) in init.iter_mut().enumerate().take(n_controls) {
                *bit = (pattern >> c) & 1;
            }
            let state = simulate_logical(&circuit, &init);
            let mut want = init.clone();
            if pattern == (1 << n_controls) - 1 {
                want[target] = 1;
            }
            assert!(
                (state.probability(&want) - 1.0).abs() < 1e-9,
                "cnu({n_controls}) pattern {pattern:b}: wrong result \
                 (ancilla not uncomputed or target wrong)"
            );
        }
    }
}

#[test]
fn bv_measures_the_secret_deterministically() {
    for secret in [
        vec![true, false, true],
        vec![false, false, true, true],
        vec![true, true, true, true, false],
    ] {
        let circuit = bernstein_vazirani(&secret);
        let state = simulate_logical(&circuit, &vec![0; circuit.n_qubits()]);
        // The data register must hold the secret with probability 1
        // (target qubit ends in |-⟩: both its outcomes share the secret).
        let mut p = 0.0;
        for t in 0..2 {
            let mut basis: Vec<usize> = secret.iter().map(|&b| b as usize).collect();
            basis.push(t);
            p += state.probability(&basis);
        }
        assert!(
            (p - 1.0).abs() < 1e-9,
            "BV failed to recover secret {secret:?}: p = {p}"
        );
    }
}

#[test]
fn qram_uncomputes_its_routers() {
    use qompress_workloads::{qram, QramLayout};
    let k = 2;
    let circuit = qram(k);
    let layout = QramLayout { address_bits: k };
    // For every address, routers must return to |0⟩ at the end.
    for addr in 0..(1usize << k) {
        let mut init = vec![0usize; circuit.n_qubits()];
        for bit in 0..k {
            init[layout.address(bit)] = (addr >> bit) & 1;
        }
        let state = simulate_logical(&circuit, &init);
        for v in 0..layout.n_routers() {
            let p1 = state.marginal_probability(layout.router(v), 1);
            assert!(
                p1 < 1e-9,
                "address {addr:b}: router {v} left dirty (p1 = {p1})"
            );
        }
        // Address register preserved.
        for bit in 0..k {
            let want = (addr >> bit) & 1;
            let p = state.marginal_probability(layout.address(bit), want);
            assert!((p - 1.0).abs() < 1e-9, "address bit {bit} disturbed");
        }
    }
}
