//! Property-based tests of the QAOA interaction-graph generators.

use proptest::prelude::*;
use qompress_workloads::graphs;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_graph_density_bounds(n in 2usize..30, seed in 0u64..500) {
        let g = graphs::random_graph(n, 0.3, seed);
        let max_edges = n * (n - 1) / 2;
        prop_assert!(g.edge_count() <= max_edges);
        // Determinism.
        let h = graphs::random_graph(n, 0.3, seed);
        prop_assert_eq!(g.edges(), h.edges());
    }

    #[test]
    fn cylinder_structure(rows in 1usize..6, cols in 3usize..8) {
        let g = graphs::cylinder(rows, cols);
        prop_assert_eq!(g.len(), rows * cols);
        // Ring edges per row + vertical edges between rows.
        prop_assert_eq!(g.edge_count(), rows * cols + (rows - 1) * cols);
        // Each node has degree 2 (ring) + up to 2 vertical.
        for v in 0..g.len() {
            let d = g.neighbors(v).len();
            prop_assert!((2..=4).contains(&d));
        }
    }

    #[test]
    fn torus_is_4_regular(rows in 3usize..7, cols in 3usize..7) {
        let g = graphs::torus(rows, cols);
        for v in 0..g.len() {
            prop_assert_eq!(g.neighbors(v).len(), 4);
        }
        prop_assert_eq!(g.edge_count(), 2 * rows * cols);
    }

    #[test]
    fn welded_tree_is_connected_and_sized(height in 1usize..5, seed in 0u64..100) {
        let g = graphs::binary_welded_tree(height, seed);
        let tree = (1usize << (height + 1)) - 1;
        prop_assert_eq!(g.len(), 2 * tree);
        let d = g.bfs_distances(0);
        prop_assert!(d.iter().all(|&x| x != usize::MAX), "must be connected");
        // Weld adds exactly 2 edges per leaf of tree A.
        let leaves = 1usize << height;
        prop_assert_eq!(g.edge_count(), 2 * (tree - 1) + 2 * leaves);
    }

    #[test]
    fn qaoa_respects_graph(n in 4usize..16, seed in 0u64..100) {
        let g = graphs::random_graph(n, 0.4, seed);
        let c = qompress_workloads::qaoa(&g, seed);
        prop_assert_eq!(c.n_qubits(), n);
        prop_assert_eq!(c.two_qubit_gate_count(), 2 * g.edge_count());
        // Every CX pair must be a graph edge.
        for gate in c.iter() {
            if let Some((a, b)) = gate.qubit_pair() {
                prop_assert!(g.has_edge(a, b), "cx({a},{b}) not a graph edge");
            }
        }
    }
}
