//! # qompress-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! Qompress paper's evaluation. Each `benches/*.rs` target (run via
//! `cargo bench`) prints the series the paper plots and writes a CSV under
//! `results/`. Shared machinery — the size sweeps, strategy sets, CSV
//! writer and relative-EPS helpers — lives here.
//!
//! Environment knobs: `QOMPRESS_QUICK=1` shrinks the sweeps for smoke
//! runs; `QOMPRESS_FULL=1` extends the expensive exhaustive-compression
//! sizes.

#![warn(missing_docs)]

use qompress::{compile, CompilationResult, CompilerConfig, Strategy};
use qompress_arch::Topology;
use qompress_circuit::Circuit;
use qompress_workloads::{build, Benchmark};
use std::io::Write as _;
use std::path::PathBuf;

/// The benchmark sizes swept by the figure harnesses.
pub fn sweep_sizes() -> Vec<usize> {
    if std::env::var_os("QOMPRESS_QUICK").is_some() {
        vec![5, 10, 15]
    } else {
        vec![5, 10, 15, 20, 25, 30, 35, 40]
    }
}

/// Sizes at which the exhaustive-compression line is evaluated (the paper's
/// EC line also "stops short for computational reasons", Figure 10).
pub fn ec_sizes() -> Vec<usize> {
    if std::env::var_os("QOMPRESS_QUICK").is_some() {
        vec![5, 10]
    } else if std::env::var_os("QOMPRESS_FULL").is_some() {
        vec![5, 10, 15, 20, 25]
    } else {
        vec![5, 10, 15, 20]
    }
}

/// The non-EC strategies plotted in Figures 7 and 10.
pub const LINE_STRATEGIES: [Strategy; 6] = [
    Strategy::QubitOnly,
    Strategy::FullQuquart,
    Strategy::Eqm,
    Strategy::RingBased,
    Strategy::Awe,
    Strategy::ProgressivePairing,
];

/// Clamps a requested size to a family's minimum and returns the circuit.
pub fn bench_circuit(bench: Benchmark, size: usize, seed: u64) -> Circuit {
    let size = size.max(bench.min_size());
    build(bench, size, seed)
}

/// Compiles one point of a sweep on the "just large enough" grid (§6.1).
pub fn compile_point(
    bench: Benchmark,
    size: usize,
    strategy: Strategy,
    config: &CompilerConfig,
) -> CompilationResult {
    let size = size.max(bench.min_size());
    let circuit = bench_circuit(bench, size, 7);
    let topo = Topology::grid(size);
    compile(&circuit, &topo, strategy, config)
}

/// A CSV file under `results/`, also echoed to stdout as aligned columns.
pub struct ResultSink {
    file: std::fs::File,
    columns: usize,
}

impl ResultSink {
    /// Creates `results/<name>.csv` with the given header.
    ///
    /// # Panics
    ///
    /// Panics when the results directory cannot be created or written.
    pub fn create(name: &str, header: &[&str]) -> Self {
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(format!("{name}.csv"));
        let mut file = std::fs::File::create(&path).expect("create csv");
        writeln!(file, "{}", header.join(",")).expect("write header");
        println!("# writing {}", path.display());
        println!("{}", header.join("\t"));
        ResultSink {
            file,
            columns: header.len(),
        }
    }

    /// Appends one row (stringified values).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch or I/O failure.
    pub fn row(&mut self, values: &[String]) {
        assert_eq!(values.len(), self.columns, "column mismatch");
        writeln!(self.file, "{}", values.join(",")).expect("write row");
        println!("{}", values.join("\t"));
    }
}

/// Root `results/` directory (workspace-relative).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results sit two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.join("results")
}

/// Formats a float with fixed precision for CSV/table output.
pub fn fmt(x: f64) -> String {
    format!("{x:.6}")
}

/// `strategy EPS / qubit-only EPS` — the relative improvement the paper
/// plots. Returns 1.0 when the baseline is zero.
pub fn relative(value: f64, baseline: f64) -> f64 {
    if baseline > 0.0 {
        value / baseline
    } else {
        1.0
    }
}

/// Simple order statistics for the Figure 13 range plots.
///
/// # Panics
///
/// Panics on empty input.
pub fn min_median_max(values: &mut [f64]) -> (f64, f64, f64) {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = values[0];
    let max = values[values.len() - 1];
    let median = if values.len() % 2 == 1 {
        values[values.len() / 2]
    } else {
        0.5 * (values[values.len() / 2 - 1] + values[values.len() / 2])
    };
    (min, median, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_sorted_and_nonempty() {
        let s = sweep_sizes();
        assert!(!s.is_empty());
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn relative_handles_zero_baseline() {
        assert_eq!(relative(0.5, 0.0), 1.0);
        assert!((relative(0.4, 0.8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn order_statistics() {
        let mut v = vec![3.0, 1.0, 2.0];
        assert_eq!(min_median_max(&mut v), (1.0, 2.0, 3.0));
        let mut w = vec![4.0, 1.0, 2.0, 3.0];
        assert_eq!(min_median_max(&mut w), (1.0, 2.5, 4.0));
    }

    #[test]
    fn compile_point_respects_min_size() {
        let r = compile_point(
            Benchmark::QaoaTorus,
            5, // below min size 9: clamped
            Strategy::QubitOnly,
            &CompilerConfig::paper(),
        );
        assert!(r.metrics.total_eps > 0.0);
    }
}
