//! Command-line front end: compile a benchmark circuit with any strategy
//! on any of the paper's architectures and print the evaluation report.
//!
//! ```text
//! qompress-cli --benchmark cuccaro --size 12 --strategy eqm --topology grid
//! qompress-cli --benchmark qaoa-torus --size 25 --strategy rb --gates
//! qompress-cli --list
//! ```

use qompress::{compile, CompilerConfig, Strategy};
use qompress_arch::Topology;
use qompress_workloads::{build, Benchmark, ALL_BENCHMARKS};

struct Args {
    benchmark: Benchmark,
    size: usize,
    strategy: Strategy,
    topology: String,
    seed: u64,
    t1_ratio: f64,
    show_gates: bool,
    show_timeline: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: qompress-cli [--benchmark NAME] [--size N] [--strategy NAME]\n\
         \x20                  [--topology grid|heavy-hex|ring] [--seed N]\n\
         \x20                  [--t1-ratio X] [--gates] [--timeline] [--list]\n\n\
         benchmarks: {}\n\
         strategies: qubit-only, eqm, rb, awe, pp, ec, ec-unordered, fq",
        ALL_BENCHMARKS
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_strategy(s: &str) -> Option<Strategy> {
    Some(match s {
        "qubit-only" => Strategy::QubitOnly,
        "eqm" => Strategy::Eqm,
        "rb" => Strategy::RingBased,
        "awe" => Strategy::Awe,
        "pp" => Strategy::ProgressivePairing,
        "ec" => Strategy::Exhaustive { ordered: true },
        "ec-unordered" => Strategy::Exhaustive { ordered: false },
        "fq" => Strategy::FullQuquart,
        _ => return None,
    })
}

fn parse_benchmark(s: &str) -> Option<Benchmark> {
    ALL_BENCHMARKS.iter().copied().find(|b| b.name() == s)
}

fn parse_args() -> Args {
    let mut args = Args {
        benchmark: Benchmark::Cuccaro,
        size: 12,
        strategy: Strategy::Eqm,
        topology: "grid".into(),
        seed: 7,
        t1_ratio: 3.0,
        show_gates: false,
        show_timeline: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--benchmark" | "-b" => {
                let v = value(&mut i);
                args.benchmark = parse_benchmark(&v).unwrap_or_else(|| usage());
            }
            "--size" | "-n" => {
                args.size = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--strategy" | "-s" => {
                let v = value(&mut i);
                args.strategy = parse_strategy(&v).unwrap_or_else(|| usage());
            }
            "--topology" | "-t" => args.topology = value(&mut i),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--t1-ratio" => {
                args.t1_ratio = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--gates" | "-g" => args.show_gates = true,
            "--timeline" => args.show_timeline = true,
            "--list" => {
                for b in ALL_BENCHMARKS {
                    println!("{} (min size {})", b.name(), b.min_size());
                }
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let size = args.size.max(args.benchmark.min_size());
    let circuit = build(args.benchmark, size, args.seed);
    let topology = match args.topology.as_str() {
        "grid" => Topology::grid(size),
        "heavy-hex" => Topology::heavy_hex_65(),
        "ring" => Topology::ring(size.max(3)),
        _ => usage(),
    };
    let config = CompilerConfig::paper().with_t1_ratio(args.t1_ratio);

    println!(
        "benchmark {} @ {} qubits ({} gates, {} two-qubit) on {}",
        args.benchmark.name(),
        circuit.n_qubits(),
        circuit.len(),
        circuit.two_qubit_gate_count(),
        topology,
    );

    let result = compile(&circuit, &topology, args.strategy, &config);
    let problems = result.schedule.validate(&topology);
    assert!(problems.is_empty(), "internal error: {problems:?}");
    print!("{result}");
    println!("  active units: {}", result.active_units());
    println!(
        "  residency: {:.0} ns qubit-state, {:.0} ns ququart-state",
        result.metrics.qubit_state_ns, result.metrics.ququart_state_ns
    );
    if !result.pairs.is_empty() {
        println!("  pairs: {:?}", result.pairs);
    }

    if args.show_gates {
        println!("\ngate mix:");
        for (class, count) in &result.metrics.gate_counts {
            println!("  {:<8} {count}", class.paper_name());
        }
    }

    if args.show_timeline {
        let stats = qompress::parallelism_stats(&result.schedule);
        println!(
            "\nutilization {:.2}, mean parallelism {:.2}, {} active units",
            stats.utilization, stats.mean_parallelism, stats.active_units
        );
        print!("{}", qompress::render_timeline(&result.schedule, 72));
    }
}
