//! Figure 4: exhaustive-search traces on a cylinder-graph QAOA circuit,
//! comparing the critical-path-ordered selection (4b) with the unordered
//! pool (4c).
//!
//! Paper shape: both reach similar success-rate gains through different
//! compression sequences.

use qompress::{compile_exhaustive, CompilerConfig, ExhaustiveOptions, Strategy};
use qompress_arch::Topology;
use qompress_bench::{bench_circuit, fmt, ResultSink};
use qompress_workloads::Benchmark;

fn main() {
    let size = 16;
    let circuit = bench_circuit(Benchmark::QaoaCylinder, size, 7);
    let topo = Topology::grid(size);
    let config = CompilerConfig::paper();

    let baseline = qompress::compile(&circuit, &topo, Strategy::QubitOnly, &config);
    let mut sink = ResultSink::create(
        "fig04_exhaustive",
        &[
            "variant",
            "step",
            "pair",
            "group",
            "gate_eps",
            "total_eps",
            "relative_gate",
        ],
    );
    sink.row(&[
        "baseline".into(),
        "0".into(),
        "-".into(),
        "-".into(),
        fmt(baseline.metrics.gate_eps),
        fmt(baseline.metrics.total_eps),
        fmt(1.0),
    ]);

    for (label, ordered) in [("critical-path", true), ("unordered", false)] {
        let (best, steps) = compile_exhaustive(
            &circuit,
            &topo,
            &config,
            &ExhaustiveOptions {
                ordered,
                max_rounds: 8,
                ..Default::default()
            },
        );
        for (i, step) in steps.iter().enumerate() {
            sink.row(&[
                label.into(),
                (i + 1).to_string(),
                format!("{}+{}", step.pair.0, step.pair.1),
                step.group.to_string(),
                fmt(step.gate_eps),
                fmt(step.total_eps),
                fmt(step.gate_eps / baseline.metrics.gate_eps),
            ]);
        }
        println!(
            "# {label}: {} compressions, final gate EPS {:.4} ({:.2}x qubit-only)",
            steps.len(),
            best.metrics.gate_eps,
            best.metrics.gate_eps / baseline.metrics.gate_eps
        );
    }
}
