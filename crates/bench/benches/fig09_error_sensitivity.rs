//! Figure 9: gate EPS as bare-qubit gate error improves while ququart gate
//! error stays fixed, for the Cuccaro adder and cylinder QAOA.
//!
//! Paper shape: strategies keep their relative order but see diminishing
//! returns; a crossover factor exists where qubit-only compilation
//! overtakes ququart compilation.

use qompress::{CompilerConfig, Strategy};
use qompress_bench::{compile_point, fmt, relative, ResultSink};
use qompress_workloads::Benchmark;

fn main() {
    let base = CompilerConfig::paper();
    let factors = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    let strategies = [Strategy::Eqm, Strategy::RingBased, Strategy::Awe];
    let size = 12;
    let mut sink = ResultSink::create(
        "fig09_error_sensitivity",
        &[
            "benchmark",
            "improvement_factor",
            "strategy",
            "gate_eps",
            "relative_to_qubit_only",
        ],
    );

    for bench in [Benchmark::Cuccaro, Benchmark::QaoaCylinder] {
        let mut crossover: Option<f64> = None;
        for &factor in &factors {
            let config = base.with_library(base.library.with_qubit_error_improved(factor));
            let baseline = compile_point(bench, size, Strategy::QubitOnly, &config);
            let mut best_rel = 0.0f64;
            for strategy in strategies {
                let r = compile_point(bench, size, strategy, &config);
                let rel = relative(r.metrics.gate_eps, baseline.metrics.gate_eps);
                best_rel = best_rel.max(rel);
                sink.row(&[
                    bench.name().into(),
                    factor.to_string(),
                    strategy.name().into(),
                    fmt(r.metrics.gate_eps),
                    fmt(rel),
                ]);
            }
            if best_rel <= 1.0 && crossover.is_none() {
                crossover = Some(factor);
            }
        }
        match crossover {
            Some(f) => println!(
                "# {}: qubit-only overtakes ququart compilation at ~{f}x better qubit error",
                bench.name()
            ),
            None => println!(
                "# {}: ququart compilation still ahead at {}x better qubit error",
                bench.name(),
                factors.last().unwrap()
            ),
        }
    }
}
