//! Figure 7: Expected *gate* probability of success for every benchmark,
//! per strategy, relative to qubit-only compilation on the same
//! just-large-enough grid.
//!
//! Paper shape to reproduce: FQ consistently below 1.0; EQM/RB > 1.5x on
//! CNU and Cuccaro; ~up to 1.2x on graph benchmarks; EQM the most
//! consistent performer.

use qompress::{CompilerConfig, Strategy};
use qompress_bench::{
    compile_point, ec_sizes, fmt, relative, sweep_sizes, ResultSink, LINE_STRATEGIES,
};
use qompress_workloads::ALL_BENCHMARKS;

fn main() {
    let config = CompilerConfig::paper();
    let mut sink = ResultSink::create(
        "fig07_gate_eps",
        &[
            "benchmark",
            "size",
            "strategy",
            "gate_eps",
            "relative_to_qubit_only",
        ],
    );
    for bench in ALL_BENCHMARKS {
        for &size in &sweep_sizes() {
            let baseline = compile_point(bench, size, Strategy::QubitOnly, &config);
            for strategy in LINE_STRATEGIES {
                let r = if strategy == Strategy::QubitOnly {
                    baseline.clone()
                } else {
                    compile_point(bench, size, strategy, &config)
                };
                sink.row(&[
                    bench.name().into(),
                    size.to_string(),
                    strategy.name().into(),
                    fmt(r.metrics.gate_eps),
                    fmt(relative(r.metrics.gate_eps, baseline.metrics.gate_eps)),
                ]);
            }
            if ec_sizes().contains(&size) {
                let ec =
                    compile_point(bench, size, Strategy::Exhaustive { ordered: true }, &config);
                sink.row(&[
                    bench.name().into(),
                    size.to_string(),
                    "ec".into(),
                    fmt(ec.metrics.gate_eps),
                    fmt(relative(ec.metrics.gate_eps, baseline.metrics.gate_eps)),
                ]);
            }
        }
    }
}
