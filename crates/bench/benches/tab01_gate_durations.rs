//! Table 1: shortest pulse durations per gate class.
//!
//! The paper ran Juqbox on HPC hardware to full convergence (0.999/0.99
//! fidelity targets); this harness runs our GRAPE substrate at a reduced
//! iteration budget on a laptop-scale subset of the gate set and reports
//! the achieved fidelity and duration next to the paper's published
//! numbers. `QOMPRESS_FULL=1` enlarges the budget and the gate subset.

use qompress_bench::{fmt, ResultSink};
use qompress_pulse::{
    find_min_duration, DeviceModel, DurationSearchConfig, GateClass, GateLibrary, GateTarget,
    GrapeConfig,
};

struct Job {
    class: GateClass,
    device: DeviceModel,
    t_init: f64,
    target_fidelity: f64,
}

fn main() {
    let full = std::env::var_os("QOMPRESS_FULL").is_some();
    let quick = std::env::var_os("QOMPRESS_QUICK").is_some();
    let lib = GateLibrary::paper();

    // Laptop-scale subset: single-qudit gates on guarded devices plus the
    // bare-bare CX2/SWAP2 pair on a 3-level pair device. FULL adds one
    // mixed-radix partial gate.
    let mut jobs = vec![
        Job {
            class: GateClass::X,
            device: DeviceModel::paper_single(3),
            t_init: 60.0,
            target_fidelity: 0.999,
        },
        Job {
            class: GateClass::X1,
            device: DeviceModel::paper_single(5),
            t_init: 120.0,
            target_fidelity: 0.93,
        },
        Job {
            class: GateClass::SwapIn,
            device: DeviceModel::paper_single(5),
            t_init: 150.0,
            target_fidelity: 0.93,
        },
    ];
    if !quick {
        jobs.push(Job {
            class: GateClass::Cx2,
            device: DeviceModel::paper_pair(3),
            t_init: 400.0,
            target_fidelity: 0.95,
        });
    }
    if full {
        jobs.push(Job {
            class: GateClass::CxE0Bare,
            device: DeviceModel::paper_pair(5),
            t_init: 800.0,
            target_fidelity: 0.9,
        });
    }

    let budget_iters = if quick {
        200
    } else if full {
        3000
    } else {
        1200
    };

    let mut sink = ResultSink::create(
        "tab01_gate_durations",
        &[
            "gate",
            "paper_duration_ns",
            "found_duration_ns",
            "achieved_fidelity",
            "fidelity_target",
            "converged",
        ],
    );

    for job in jobs {
        let target = GateTarget::for_class(job.class, &job.device);
        // About one segment per nanosecond: the pulse must carry frequency
        // content at multiples of the 330 MHz anharmonicity to address
        // higher-level transitions (the role of Juqbox's carrier waves).
        let segments = (job.t_init.ceil() as usize).clamp(40, 600);
        let cfg = DurationSearchConfig {
            shrink: 0.8,
            max_rounds: if quick { 3 } else { 5 },
            grape: GrapeConfig {
                segments,
                max_iters: budget_iters,
                learning_rate: 0.05,
                leakage_weight: 0.2,
                target_fidelity: job.target_fidelity,
                seed: 17,
            },
        };
        let res = find_min_duration(&job.device, &target, job.t_init, &cfg);
        let found = res
            .duration_ns
            .map_or("-".to_string(), |d| format!("{d:.0}"));
        sink.row(&[
            job.class.paper_name().into(),
            format!("{:.0}", lib.duration(job.class)),
            found,
            fmt(res.best.fidelity),
            fmt(job.target_fidelity),
            res.duration_ns.is_some().to_string(),
        ]);
    }

    // The full paper library (the canonical Table 1 the compiler uses).
    println!("\n# canonical Table 1 (paper durations, ns / fidelity):");
    for (class, spec) in lib.iter() {
        println!(
            "#   {:<8} {:>6.0} ns  F = {:.3}",
            class.paper_name(),
            spec.duration_ns,
            spec.fidelity
        );
    }
}
