//! Figure 11: coherence EPS for Cuccaro and torus QAOA with 10x better T1
//! for both qubits and ququarts.
//!
//! Paper shape: the margin between qubit-only and compressed circuits
//! narrows substantially at 10x T1, but coherence still favors qubit-only
//! at the worst-case 1:3 ratio.

use qompress::{CompilerConfig, Strategy};
use qompress_bench::{compile_point, fmt, relative, sweep_sizes, ResultSink};
use qompress_workloads::Benchmark;

fn main() {
    let config = CompilerConfig::paper();
    let t1q_10 = 10.0 * config.t1_qubit_ns();
    let t1d_10 = 10.0 * config.t1_ququart_ns();
    let strategies = [
        Strategy::QubitOnly,
        Strategy::FullQuquart,
        Strategy::Eqm,
        Strategy::RingBased,
    ];
    let mut sink = ResultSink::create(
        "fig11_t1_10x",
        &[
            "benchmark",
            "size",
            "strategy",
            "coherence_eps_base_t1",
            "coherence_eps_10x_t1",
            "relative_10x",
        ],
    );
    for bench in [Benchmark::Cuccaro, Benchmark::QaoaTorus] {
        for &size in &sweep_sizes() {
            let baseline = compile_point(bench, size, Strategy::QubitOnly, &config);
            let base_10x = baseline.metrics.with_t1(t1q_10, t1d_10);
            for strategy in strategies {
                let r = if strategy == Strategy::QubitOnly {
                    baseline.clone()
                } else {
                    compile_point(bench, size, strategy, &config)
                };
                let swept = r.metrics.with_t1(t1q_10, t1d_10);
                sink.row(&[
                    bench.name().into(),
                    size.to_string(),
                    strategy.name().into(),
                    fmt(r.metrics.coherence_eps),
                    fmt(swept.coherence_eps),
                    fmt(relative(swept.coherence_eps, base_10x.coherence_eps)),
                ]);
            }
        }
    }
}
