//! Criterion benchmarks of the compiler's classical performance: mapping,
//! routing and full strategy pipelines (the paper discusses the classical
//! scalability of EC vs the cheaper strategies, §5).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qompress::{
    compile, compile_with_options, run_batch, BatchJob, BatchRequest, Compiler, CompilerConfig,
    MappingOptions, Strategy,
};
use qompress_arch::Topology;
use qompress_workloads::{build, random_circuit, Benchmark};

fn bench_full_pipeline(c: &mut Criterion) {
    let config = CompilerConfig::paper();
    let mut group = c.benchmark_group("compile_cuccaro");
    for size in [10usize, 20, 30] {
        let circuit = build(Benchmark::Cuccaro, size, 7);
        let topo = Topology::grid(size);
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
            group.bench_with_input(BenchmarkId::new(strategy.name(), size), &size, |b, _| {
                b.iter(|| compile(&circuit, &topo, strategy, &config));
            });
        }
    }
    group.finish();
}

fn bench_mapping_only(c: &mut Criterion) {
    let config = CompilerConfig::paper();
    let mut group = c.benchmark_group("mapping");
    for size in [16usize, 32] {
        let circuit = build(Benchmark::QaoaTorus, size, 7);
        let topo = Topology::grid(size);
        group.bench_with_input(BenchmarkId::new("eqm", size), &size, |b, _| {
            b.iter(|| qompress::map_circuit(&circuit, &topo, &config, &MappingOptions::eqm()));
        });
    }
    group.finish();
}

fn bench_strategy_search(c: &mut Criterion) {
    let config = CompilerConfig::paper();
    let circuit = build(Benchmark::Cuccaro, 12, 7);
    let topo = Topology::grid(12);
    let mut group = c.benchmark_group("strategy_search");
    group.sample_size(10);
    group.bench_function("pp", |b| {
        b.iter(|| compile(&circuit, &topo, Strategy::ProgressivePairing, &config));
    });
    group.bench_function("ec_one_round", |b| {
        b.iter(|| {
            qompress::compile_exhaustive(
                &circuit,
                &topo,
                &config,
                &qompress::ExhaustiveOptions {
                    ordered: true,
                    max_rounds: 1,
                    ..Default::default()
                },
            )
        });
    });
    group.bench_function("qubit_only_pipeline", |b| {
        b.iter(|| compile_with_options(&circuit, &topo, &config, &MappingOptions::qubit_only()));
    });
    group.finish();
}

/// Batch-engine throughput: the same ≥8-job sweep at 1/2/4/8 workers. On a
/// multi-core host the wall-clock time should fall as workers rise (the
/// jobs are independent and the per-topology caches are shared); on a
/// single-core host the worker sweep measures the engine's overhead.
fn bench_batch_throughput(c: &mut Criterion) {
    let topo = Topology::grid(16);
    let mut jobs = Vec::new();
    for (name, circuit) in [
        ("cuccaro16", build(Benchmark::Cuccaro, 16, 7)),
        ("qaoa-cyl16", build(Benchmark::QaoaCylinder, 16, 7)),
        ("random16", random_circuit(16, 64, 7)),
    ] {
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
            jobs.push(BatchJob::new(
                format!("{name}-{}", strategy.name()),
                circuit.clone(),
                strategy,
                topo.clone(),
            ));
        }
    }
    assert!(jobs.len() >= 8, "throughput sweep needs at least 8 jobs");

    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| run_batch(&BatchRequest::new(jobs.clone(), workers)));
            },
        );
    }
    group.finish();
}

/// Cached-vs-uncached recompilation of the same job: the session's
/// content-addressed result cache must turn a repeat into a lookup that
/// skips mapping, routing and scheduling entirely, so `cached_recompile`
/// should run orders of magnitude faster than `uncached_recompile`.
fn bench_result_cache(c: &mut Criterion) {
    let circuit = build(Benchmark::Cuccaro, 16, 7);
    let topo = Topology::grid(16);
    let mut group = c.benchmark_group("result_cache");
    group.sample_size(10);

    let uncached = Compiler::builder().caching(false).build();
    // Warm the topology registry so both variants measure (re)compilation,
    // not first-touch graph construction.
    let _ = uncached.compile(&circuit, &topo, Strategy::Eqm);
    group.bench_function("uncached_recompile", |b| {
        b.iter(|| uncached.compile(black_box(&circuit), &topo, Strategy::Eqm));
    });

    let cached = Compiler::builder().build();
    let _ = cached.compile(&circuit, &topo, Strategy::Eqm);
    group.bench_function("cached_recompile", |b| {
        b.iter(|| cached.compile(black_box(&circuit), &topo, Strategy::Eqm));
    });
    group.finish();
}

/// Routing-hot-path adjacency probe: `Topology::has_edge` over every node
/// pair of the 65-qubit heavy-hex device (the router queries it for every
/// candidate two-unit op). The adjacency-set representation makes each
/// probe `O(1)` instead of a scan of the 72-edge list.
fn bench_has_edge(c: &mut Criterion) {
    let topo = Topology::heavy_hex_65();
    let n = topo.n_nodes();
    let mut group = c.benchmark_group("topology_adjacency");
    group.bench_function("has_edge_65x65", |b| {
        b.iter(|| {
            let mut coupled = 0usize;
            for a in 0..n {
                for v in 0..n {
                    if topo.has_edge(black_box(a), black_box(v)) {
                        coupled += 1;
                    }
                }
            }
            coupled
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_pipeline,
    bench_mapping_only,
    bench_strategy_search,
    bench_batch_throughput,
    bench_result_cache,
    bench_has_edge
);
criterion_main!(benches);
