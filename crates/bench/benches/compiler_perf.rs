//! Criterion benchmarks of the compiler's classical performance: mapping,
//! routing and full strategy pipelines (the paper discusses the classical
//! scalability of EC vs the cheaper strategies, §5).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qompress::{
    compile, compile_with_options, map_circuit, route_cached, run_batch, BatchJob, BatchRequest,
    Compiler, CompilerConfig, ExhaustiveOptions, MappingOptions, Strategy,
};
use qompress_arch::Topology;
use qompress_circuit::CircuitDag;
use qompress_workloads::{build, random_circuit, Benchmark};

fn bench_full_pipeline(c: &mut Criterion) {
    let config = CompilerConfig::paper();
    let mut group = c.benchmark_group("compile_cuccaro");
    for size in [10usize, 20, 30] {
        let circuit = build(Benchmark::Cuccaro, size, 7);
        let topo = Topology::grid(size);
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
            group.bench_with_input(BenchmarkId::new(strategy.name(), size), &size, |b, _| {
                b.iter(|| compile(&circuit, &topo, strategy, &config));
            });
        }
    }
    group.finish();
}

fn bench_mapping_only(c: &mut Criterion) {
    let config = CompilerConfig::paper();
    let mut group = c.benchmark_group("mapping");
    for size in [16usize, 32] {
        let circuit = build(Benchmark::QaoaTorus, size, 7);
        let topo = Topology::grid(size);
        group.bench_with_input(BenchmarkId::new("eqm", size), &size, |b, _| {
            b.iter(|| qompress::map_circuit(&circuit, &topo, &config, &MappingOptions::eqm()));
        });
    }
    group.finish();
}

fn bench_strategy_search(c: &mut Criterion) {
    let config = CompilerConfig::paper();
    let circuit = build(Benchmark::Cuccaro, 12, 7);
    let topo = Topology::grid(12);
    let mut group = c.benchmark_group("strategy_search");
    group.sample_size(10);
    group.bench_function("pp", |b| {
        b.iter(|| compile(&circuit, &topo, Strategy::ProgressivePairing, &config));
    });
    group.bench_function("ec_one_round", |b| {
        b.iter(|| {
            qompress::compile_exhaustive(
                &circuit,
                &topo,
                &config,
                &qompress::ExhaustiveOptions {
                    ordered: true,
                    max_rounds: 1,
                    ..Default::default()
                },
            )
        });
    });
    group.bench_function("qubit_only_pipeline", |b| {
        b.iter(|| compile_with_options(&circuit, &topo, &config, &MappingOptions::qubit_only()));
    });
    group.finish();
}

/// Batch-engine throughput: the same ≥8-job sweep at 1/2/4/8 workers. On a
/// multi-core host the wall-clock time should fall as workers rise (the
/// jobs are independent and the per-topology caches are shared); on a
/// single-core host the worker sweep measures the engine's overhead.
fn bench_batch_throughput(c: &mut Criterion) {
    let topo = Topology::grid(16);
    let mut jobs = Vec::new();
    for (name, circuit) in [
        ("cuccaro16", build(Benchmark::Cuccaro, 16, 7)),
        ("qaoa-cyl16", build(Benchmark::QaoaCylinder, 16, 7)),
        ("random16", random_circuit(16, 64, 7)),
    ] {
        for strategy in [Strategy::QubitOnly, Strategy::Eqm, Strategy::RingBased] {
            jobs.push(BatchJob::new(
                format!("{name}-{}", strategy.name()),
                circuit.clone(),
                strategy,
                topo.clone(),
            ));
        }
    }
    assert!(jobs.len() >= 8, "throughput sweep needs at least 8 jobs");

    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| run_batch(&BatchRequest::new(jobs.clone(), workers)));
            },
        );
    }
    group.finish();
}

/// Per-job overhead of the session job service: submit-then-wait through
/// the persistent worker pool and its MPMC queue versus calling the
/// pipeline on the session directly. The delta is the queue handoff +
/// handle wakeup cost a streaming client pays per job; `submit_wait_hit`
/// isolates it fully by serving the job from the result cache.
fn bench_job_service(c: &mut Criterion) {
    let circuit = build(Benchmark::Cuccaro, 16, 7);
    let topo = Topology::grid(16);
    let mut group = c.benchmark_group("job_service");
    group.sample_size(10);

    let direct = Compiler::builder().workers(1).caching(false).build();
    let _ = direct.compile(&circuit, &topo, Strategy::Eqm); // warm registry
    group.bench_function("direct_compile", |b| {
        b.iter(|| direct.compile(black_box(&circuit), &topo, Strategy::Eqm));
    });

    let pooled = Compiler::builder().workers(1).caching(false).build();
    let template = BatchJob::new("bench", circuit.clone(), Strategy::Eqm, topo.clone());
    let _ = pooled.submit(template.clone()).wait(); // warm registry + pool
    group.bench_function("submit_wait", |b| {
        b.iter(|| pooled.submit(black_box(template.clone())).wait());
    });

    let cached = Compiler::builder().workers(1).build();
    let _ = cached.submit(template.clone()).wait();
    group.bench_function("submit_wait_hit", |b| {
        b.iter(|| cached.submit(black_box(template.clone())).wait());
    });
    group.finish();
}

/// Cached-vs-uncached recompilation of the same job: the session's
/// content-addressed result cache must turn a repeat into a lookup that
/// skips mapping, routing and scheduling entirely, so `cached_recompile`
/// should run orders of magnitude faster than `uncached_recompile`.
fn bench_result_cache(c: &mut Criterion) {
    let circuit = build(Benchmark::Cuccaro, 16, 7);
    let topo = Topology::grid(16);
    let mut group = c.benchmark_group("result_cache");
    group.sample_size(10);

    let uncached = Compiler::builder().caching(false).build();
    // Warm the topology registry so both variants measure (re)compilation,
    // not first-touch graph construction.
    let _ = uncached.compile(&circuit, &topo, Strategy::Eqm);
    group.bench_function("uncached_recompile", |b| {
        b.iter(|| uncached.compile(black_box(&circuit), &topo, Strategy::Eqm));
    });

    let cached = Compiler::builder().build();
    let _ = cached.compile(&circuit, &topo, Strategy::Eqm);
    group.bench_function("cached_recompile", |b| {
        b.iter(|| cached.compile(black_box(&circuit), &topo, Strategy::Eqm));
    });
    group.finish();
}

/// Route-phase-only timings (mapping excluded) on communication-heavy
/// circuits over line/grid/ring, plus a one-round exhaustive search
/// through a session. This is the hot loop the incremental router
/// targets: lookahead via the pending-gate list instead of an O(gates)
/// rescan, scratch-buffer scoring, and memoized fallback paths. The
/// `routing_perf` example emits the same shape as JSON for the CI bench
/// trajectory.
fn bench_routing_perf(c: &mut Criterion) {
    let config = CompilerConfig::paper();
    let session = Compiler::builder().config(config.clone()).build();
    let mut group = c.benchmark_group("routing_perf");
    group.sample_size(20);
    let size = 16usize;
    let circuits = [
        ("cuccaro16", build(Benchmark::Cuccaro, size, 7)),
        ("qram16", build(Benchmark::Qram, size, 7)),
        ("qasm-random16", random_circuit(size, 6 * size, 7)),
    ];
    for (name, circuit) in &circuits {
        let dag = CircuitDag::build(circuit);
        for topo in [
            Topology::line(size),
            Topology::grid(size),
            Topology::ring(size),
        ] {
            let tcache = session.topology_cache(&topo);
            let base = map_circuit(circuit, &topo, &config, &MappingOptions::qubit_only());
            // Warm the shared oracle rows so iterations time routing, not
            // first-touch Dijkstra.
            let mut warm = base.clone();
            let _ = route_cached(circuit, &dag, &mut warm, &tcache, &config);
            group.bench_function(BenchmarkId::new(*name, topo.name()), |b| {
                b.iter(|| {
                    let mut layout = base.clone();
                    route_cached(black_box(circuit), &dag, &mut layout, &tcache, &config)
                });
            });
        }
    }
    // One exhaustive round on a fresh session per iteration (a reused
    // session would serve every candidate from its result cache and time
    // the cache instead of the search).
    let ec_circuit = build(Benchmark::Cuccaro, 8, 7);
    let ec_topo = Topology::grid(8);
    group.sample_size(10);
    group.bench_function("ec_round_session", |b| {
        b.iter(|| {
            let fresh = Compiler::builder().config(config.clone()).build();
            fresh.compile_exhaustive(
                &ec_circuit,
                &ec_topo,
                &ExhaustiveOptions {
                    ordered: true,
                    max_rounds: 1,
                    ..ExhaustiveOptions::default()
                },
            )
        });
    });
    group.finish();
}

/// Utility-scale routing: the same 16-qubit workloads routed on a
/// 1121-unit heavy-hex member and a 1024-unit grid, where the session's
/// distance oracle runs in landmark mode (K farthest-point-sampled rows
/// plus a bounded exact hot-row LRU) instead of materialising all-pairs
/// rows. Warm iterations time the route phase against the shared
/// landmark estimates.
fn bench_large_device_routing(c: &mut Criterion) {
    let config = CompilerConfig::paper();
    let session = Compiler::builder().config(config.clone()).build();
    let mut group = c.benchmark_group("large_device_routing");
    group.sample_size(10);
    let circuit = build(Benchmark::Cuccaro, 16, 7);
    let dag = CircuitDag::build(&circuit);
    for topo in [Topology::heavy_hex(21), Topology::grid(1024)] {
        let tcache = session.topology_cache(&topo);
        let base = map_circuit(&circuit, &topo, &config, &MappingOptions::qubit_only());
        let mut warm = base.clone();
        let _ = route_cached(&circuit, &dag, &mut warm, &tcache, &config);
        group.bench_function(BenchmarkId::new("cuccaro16", topo.name()), |b| {
            b.iter(|| {
                let mut layout = base.clone();
                route_cached(black_box(&circuit), &dag, &mut layout, &tcache, &config)
            });
        });
    }
    group.finish();
}

/// Routing-hot-path adjacency probe: `Topology::has_edge` over every node
/// pair of the 65-qubit heavy-hex device (the router queries it for every
/// candidate two-unit op). The adjacency-set representation makes each
/// probe `O(1)` instead of a scan of the 72-edge list.
fn bench_has_edge(c: &mut Criterion) {
    let topo = Topology::heavy_hex_65();
    let n = topo.n_nodes();
    let mut group = c.benchmark_group("topology_adjacency");
    group.bench_function("has_edge_65x65", |b| {
        b.iter(|| {
            let mut coupled = 0usize;
            for a in 0..n {
                for v in 0..n {
                    if topo.has_edge(black_box(a), black_box(v)) {
                        coupled += 1;
                    }
                }
            }
            coupled
        });
    });
    group.finish();
}

/// Parametric skeleton serving: what one angle set costs on the warm
/// path versus recompiling the bound circuit from scratch. `bind_only`
/// is the pure skeleton→circuit materialisation, `bind_stamp` the full
/// serving cost (bind is implicit in the stamp — it validates and
/// writes the angles into a clone of the cached template), and
/// `full_compile` the mapping/routing/scheduling pipeline the stamp
/// path skips. `sweep_warm_32` measures a whole 32-binding
/// `compile_sweep` served from the skeleton cache.
fn bench_parametric_bind(c: &mut Criterion) {
    let skeleton = qompress_qasm::random_parametric_circuit(12, 260, 4, 7);
    let topo = Topology::grid(12);
    let session = Compiler::new();
    let artifact = session.compile_skeleton(&skeleton, &topo, Strategy::Eqm);
    let angles = vec![0.17, 1.3, -2.4, 0.9];
    let bindings: Vec<Vec<f64>> = (0..32)
        .map(|i| angles.iter().map(|a| a + 0.05 * i as f64).collect())
        .collect();
    let uncached = Compiler::builder().caching(false).build();
    let _ = uncached.compile(&skeleton.bind(&angles), &topo, Strategy::Eqm); // warm registry

    let mut group = c.benchmark_group("parametric_bind");
    group.bench_function("bind_only", |b| {
        b.iter(|| skeleton.bind(black_box(&angles)));
    });
    group.bench_function("bind_stamp", |b| {
        b.iter(|| artifact.stamp(black_box(&angles)));
    });
    group.bench_function("full_compile", |b| {
        b.iter(|| uncached.compile(&skeleton.bind(black_box(&angles)), &topo, Strategy::Eqm));
    });
    group.sample_size(20);
    group.bench_function("sweep_warm_32", |b| {
        b.iter(|| session.compile_sweep(&skeleton, &topo, Strategy::Eqm, black_box(&bindings)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_pipeline,
    bench_mapping_only,
    bench_strategy_search,
    bench_batch_throughput,
    bench_job_service,
    bench_result_cache,
    bench_routing_perf,
    bench_large_device_routing,
    bench_has_edge,
    bench_parametric_bind
);
criterion_main!(benches);
