//! Figure 12: total EPS of 25-qubit benchmarks at 10x base T1 as the
//! ququart T1 improves from 1/3 of the qubit T1 to parity; reports the
//! crossover ratio (the paper's dashed lines) where compression's total
//! EPS overtakes qubit-only.

use qompress::{CompilerConfig, Strategy};
use qompress_bench::{compile_point, fmt, ResultSink};
use qompress_workloads::Benchmark;

fn main() {
    let config = CompilerConfig::paper();
    let size = 25;
    let t1q = 10.0 * config.t1_qubit_ns(); // the figure's 10x setting
    let benches = [
        Benchmark::Cuccaro,
        Benchmark::Cnu,
        Benchmark::Qram,
        Benchmark::QaoaCylinder,
        Benchmark::QaoaTorus,
    ];
    let mut sink = ResultSink::create(
        "fig12_t1_ratio",
        &[
            "benchmark",
            "t1_ratio",
            "qubit_only_total_eps",
            "eqm_total_eps",
            "eqm_wins",
        ],
    );
    for bench in benches {
        let qo = compile_point(bench, size, Strategy::QubitOnly, &config);
        let eqm = compile_point(bench, size, Strategy::Eqm, &config);
        let qo_total = qo.metrics.with_t1(t1q, t1q / 3.0).total_eps;
        let mut crossover: Option<f64> = None;
        // Sweep the ratio T1_qubit/T1_ququart from 3 (worst case) to 1.
        let mut ratio = 3.0;
        while ratio >= 0.999 {
            let swept = eqm.metrics.with_t1(t1q, t1q / ratio);
            let wins = swept.total_eps > qo_total;
            if wins && crossover.is_none() {
                crossover = Some(ratio);
            }
            sink.row(&[
                bench.name().into(),
                format!("{ratio:.2}"),
                fmt(qo_total),
                fmt(swept.total_eps),
                wins.to_string(),
            ]);
            ratio -= 0.25;
        }
        match crossover {
            Some(r) => println!(
                "# {}: EQM total EPS overtakes qubit-only at T1 ratio {r:.2} (dashed line)",
                bench.name()
            ),
            None => println!(
                "# {}: no crossover before T1 parity at size {size}",
                bench.name()
            ),
        }
    }
}
