//! Figure 8: the distribution of gate types for a 30-qubit torus QAOA
//! circuit under each pairing strategy.
//!
//! Paper shape: overall counts are similar, but EQM uses many more internal
//! CX gates, while AWE/PP lean on partial CXs and extra SWAP variants.

use qompress::{CompilerConfig, Strategy};
use qompress_bench::{compile_point, ResultSink};
use qompress_pulse::{GateClass, ALL_GATE_CLASSES};
use qompress_workloads::Benchmark;

fn main() {
    let config = CompilerConfig::paper();
    let strategies = [
        Strategy::QubitOnly,
        Strategy::Eqm,
        Strategy::RingBased,
        Strategy::Awe,
        Strategy::ProgressivePairing,
    ];
    let mut header: Vec<&str> = vec!["strategy", "total_ops"];
    let names: Vec<String> = ALL_GATE_CLASSES
        .iter()
        .map(|c| c.paper_name().to_string())
        .collect();
    header.extend(names.iter().map(String::as_str));
    let mut sink = ResultSink::create("fig08_gate_distribution", &header);

    for strategy in strategies {
        let r = compile_point(Benchmark::QaoaTorus, 30, strategy, &config);
        let mut row = vec![
            strategy.name().to_string(),
            r.metrics.total_ops().to_string(),
        ];
        for class in ALL_GATE_CLASSES {
            row.push(r.metrics.count(class).to_string());
        }
        sink.row(&row);
        // Headline numbers the paper calls out in §7.
        let internal = r.metrics.count(GateClass::Cx0) + r.metrics.count(GateClass::Cx1);
        let partial_cx = r.metrics.count(GateClass::CxE0Bare)
            + r.metrics.count(GateClass::CxE1Bare)
            + r.metrics.count(GateClass::CxBareE0)
            + r.metrics.count(GateClass::CxBareE1)
            + r.metrics.count(GateClass::Cx00)
            + r.metrics.count(GateClass::Cx01)
            + r.metrics.count(GateClass::Cx10)
            + r.metrics.count(GateClass::Cx11);
        println!(
            "# {}: internal CX = {internal}, partial CX = {partial_cx}, communication = {}",
            strategy.name(),
            r.metrics.communication_ops
        );
    }
}
