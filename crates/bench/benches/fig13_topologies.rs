//! Figure 13: ranges (min/median/max over circuit sizes 5-40) of the
//! gate-EPS improvement ratio for CNU and cylinder QAOA on three
//! architectural topologies: grid, 65-qubit heavy-hex, 65-node ring.
//!
//! Paper shape: no significant difference between architectures — the
//! compression methods adapt to all three with similar effect.

use qompress::{compile, CompilerConfig, Strategy};
use qompress_arch::Topology;
use qompress_bench::{bench_circuit, fmt, min_median_max, relative, sweep_sizes, ResultSink};
use qompress_workloads::Benchmark;

fn main() {
    let config = CompilerConfig::paper();
    let strategies = [Strategy::Eqm, Strategy::RingBased];
    let mut sink = ResultSink::create(
        "fig13_topologies",
        &[
            "benchmark",
            "topology",
            "strategy",
            "min_ratio",
            "median_ratio",
            "max_ratio",
        ],
    );
    for bench in [Benchmark::Cnu, Benchmark::QaoaCylinder] {
        for topo_kind in ["grid", "heavy-hex", "ring"] {
            for strategy in strategies {
                let mut ratios = Vec::new();
                for &size in &sweep_sizes() {
                    let size = size.max(bench.min_size());
                    let topo = match topo_kind {
                        "grid" => Topology::grid(size),
                        "heavy-hex" => Topology::heavy_hex_65(),
                        _ => Topology::ring(65),
                    };
                    let circuit = bench_circuit(bench, size, 7);
                    let qo = compile(&circuit, &topo, Strategy::QubitOnly, &config);
                    let r = compile(&circuit, &topo, strategy, &config);
                    ratios.push(relative(r.metrics.gate_eps, qo.metrics.gate_eps));
                }
                let (min, median, max) = min_median_max(&mut ratios);
                sink.row(&[
                    bench.name().into(),
                    topo_kind.into(),
                    strategy.name().into(),
                    fmt(min),
                    fmt(median),
                    fmt(max),
                ]);
            }
        }
    }
}
