//! Figure 3: state evolution during a CX2 pulse (two bare qubits) and a
//! CX0q pulse (encoded control, bare target).
//!
//! The harness optimizes a short pulse for each gate (reduced budget) and
//! prints the population of the relevant basis states over time: the
//! control stays up while the target flips, and the partial gate evolves
//! through a visibly larger state space.

use qompress_bench::{fmt, ResultSink};
use qompress_linalg::basis_state;
use qompress_pulse::{optimize, DeviceModel, GateClass, GateTarget, GrapeConfig};

fn evolve(
    sink: &mut ResultSink,
    label: &str,
    device: &DeviceModel,
    class: GateClass,
    duration: f64,
    start: &[usize],
    track: &[(&str, Vec<usize>)],
) {
    let target = GateTarget::for_class(class, device);
    let quick = std::env::var_os("QOMPRESS_QUICK").is_some();
    let cfg = GrapeConfig {
        // ~1 segment/ns so the pulse can address anharmonicity-detuned
        // transitions (see tab01).
        segments: (duration.ceil() as usize).clamp(40, 400),
        max_iters: if quick { 150 } else { 800 },
        learning_rate: 0.05,
        leakage_weight: 0.2,
        target_fidelity: 0.95,
        seed: 23,
    };
    let res = optimize(device, &target, duration, &cfg, None);
    println!(
        "# {label}: optimized to F = {:.4} (leakage {:.2e}) in {} iters",
        res.fidelity, res.leakage, res.iterations
    );
    let psi0 = basis_state(device.dim(), device.state_index(start));
    for (t, psi) in res.pulse.evolve_state(device, &psi0) {
        let mut row = vec![label.to_string(), format!("{t:.1}")];
        for (_, levels) in track {
            let idx = device.state_index(levels);
            row.push(fmt(psi[idx].norm_sqr()));
        }
        sink.row(&row);
    }
}

fn main() {
    // CX2 between two bare qubits (3-level transmons with one guard).
    let pair3 = DeviceModel::paper_pair(3);
    let mut sink = ResultSink::create(
        "fig03_state_evolution",
        &["gate", "t_ns", "p_initial", "p_flipped"],
    );
    evolve(
        &mut sink,
        "CX2",
        &pair3,
        GateClass::Cx2,
        260.0,
        &[1, 0],
        &[("10", vec![1, 0]), ("11", vec![1, 1])],
    );

    // CX0q: control is the encoded |3> = |11> state, target a bare qubit.
    let pair5 = DeviceModel::paper_pair(5);
    evolve(
        &mut sink,
        "CX0q",
        &pair5,
        GateClass::CxE0Bare,
        560.0,
        &[3, 0],
        &[("30", vec![3, 0]), ("31", vec![3, 1])],
    );
}
