//! Ablation study of the compiler's design choices (beyond the paper's
//! figures): the routing lookahead window, the "avoid swapping through
//! ququarts" penalty, and the `X0,1` single-qubit merge pass.

use qompress::{
    compile_with_options, map_circuit, merge_singles, route, schedule_ops, trace_coherence,
    CompilerConfig, MappingOptions, Metrics,
};
use qompress_arch::{ExpandedGraph, Topology};
use qompress_bench::{bench_circuit, fmt, ResultSink};
use qompress_circuit::CircuitDag;
use qompress_workloads::Benchmark;

fn main() {
    lookahead_ablation();
    penalty_ablation();
    merge_ablation();
}

fn lookahead_ablation() {
    let mut sink = ResultSink::create(
        "ablation_lookahead",
        &[
            "benchmark",
            "lookahead",
            "gate_eps",
            "duration_ns",
            "comm_ops",
        ],
    );
    for bench in [Benchmark::Cuccaro, Benchmark::QaoaTorus] {
        let circuit = bench_circuit(bench, 20, 7);
        let topo = Topology::grid(20);
        for lookahead in [0usize, 2, 4, 8, 16] {
            let config = CompilerConfig {
                lookahead,
                ..CompilerConfig::paper()
            };
            let r = compile_with_options(&circuit, &topo, &config, &MappingOptions::eqm());
            sink.row(&[
                bench.name().into(),
                lookahead.to_string(),
                fmt(r.metrics.gate_eps),
                format!("{:.0}", r.metrics.duration_ns),
                r.metrics.communication_ops.to_string(),
            ]);
        }
    }
}

fn penalty_ablation() {
    let mut sink = ResultSink::create(
        "ablation_ququart_penalty",
        &["benchmark", "penalty", "gate_eps", "comm_ops"],
    );
    for bench in [Benchmark::Cnu, Benchmark::QaoaCylinder] {
        let circuit = bench_circuit(bench, 15, 7);
        let topo = Topology::grid(15);
        for penalty in [0.0f64, 0.01, 0.02, 0.1, 0.5] {
            let config = CompilerConfig {
                ququart_route_penalty: penalty,
                ..CompilerConfig::paper()
            };
            let r = compile_with_options(&circuit, &topo, &config, &MappingOptions::eqm());
            sink.row(&[
                bench.name().into(),
                penalty.to_string(),
                fmt(r.metrics.gate_eps),
                r.metrics.communication_ops.to_string(),
            ]);
        }
    }
}

fn merge_ablation() {
    let mut sink = ResultSink::create(
        "ablation_merge_pass",
        &["benchmark", "merge", "ops", "gate_eps", "duration_ns"],
    );
    let config = CompilerConfig::paper();
    for bench in [Benchmark::Cuccaro, Benchmark::Cnu] {
        let circuit = bench_circuit(bench, 15, 7);
        let topo = Topology::grid(15);
        let dag = CircuitDag::build(&circuit);
        let expanded = ExpandedGraph::new(topo.clone());
        for merge in [true, false] {
            let mut layout = map_circuit(&circuit, &topo, &config, &MappingOptions::eqm());
            let initial = layout.placements();
            let encoded = layout.encoded_flags().to_vec();
            let ops = route(&circuit, &dag, &mut layout, &expanded, &config);
            let ops = if merge { merge_singles(ops) } else { ops };
            let schedule = schedule_ops(ops, topo.n_nodes(), &config.library);
            let trace = trace_coherence(&schedule, &initial, &encoded);
            let metrics = Metrics::compute(&schedule, &trace, &config);
            sink.row(&[
                bench.name().into(),
                merge.to_string(),
                schedule.len().to_string(),
                fmt(metrics.gate_eps),
                format!("{:.0}", metrics.duration_ns),
            ]);
        }
    }
}
