//! Figure 10: Expected *coherence* probability of success for every
//! benchmark, per strategy, relative to qubit-only.
//!
//! Paper shape: FQ is by far the worst (longest circuits); the compression
//! strategies mitigate most of the duration increase; EQM generally leads;
//! compression still trails qubit-only at the default worst-case T1 ratio.

use qompress::{CompilerConfig, Strategy};
use qompress_bench::{
    compile_point, ec_sizes, fmt, relative, sweep_sizes, ResultSink, LINE_STRATEGIES,
};
use qompress_workloads::ALL_BENCHMARKS;

fn main() {
    let config = CompilerConfig::paper();
    let mut sink = ResultSink::create(
        "fig10_coherence_eps",
        &[
            "benchmark",
            "size",
            "strategy",
            "coherence_eps",
            "duration_ns",
            "relative_to_qubit_only",
        ],
    );
    for bench in ALL_BENCHMARKS {
        for &size in &sweep_sizes() {
            let baseline = compile_point(bench, size, Strategy::QubitOnly, &config);
            for strategy in LINE_STRATEGIES {
                let r = if strategy == Strategy::QubitOnly {
                    baseline.clone()
                } else {
                    compile_point(bench, size, strategy, &config)
                };
                sink.row(&[
                    bench.name().into(),
                    size.to_string(),
                    strategy.name().into(),
                    fmt(r.metrics.coherence_eps),
                    format!("{:.0}", r.metrics.duration_ns),
                    fmt(relative(
                        r.metrics.coherence_eps,
                        baseline.metrics.coherence_eps,
                    )),
                ]);
            }
            if ec_sizes().contains(&size) {
                let ec =
                    compile_point(bench, size, Strategy::Exhaustive { ordered: true }, &config);
                sink.row(&[
                    bench.name().into(),
                    size.to_string(),
                    "ec".into(),
                    fmt(ec.metrics.coherence_eps),
                    format!("{:.0}", ec.metrics.duration_ns),
                    fmt(relative(
                        ec.metrics.coherence_eps,
                        baseline.metrics.coherence_eps,
                    )),
                ]);
            }
        }
    }
}
