//! Deterministic I/O fault injection for [`crate::DiskStore`].
//!
//! A [`FaultPlan`] is an injectable schedule of I/O failures threaded
//! through every store operation (load / store / evict), so each disk
//! failure mode the serving stack must survive — a full disk, a
//! permission flip, a torn write, a stalling device — is reproducible in
//! a unit test or a chaos gate instead of waiting for production to roll
//! the dice. The plan is shared (`Clone` is a handle to the same
//! schedule), thread-safe, and mutable at runtime: a chaos harness can
//! [`FaultPlan::heal`] the "disk" mid-run and watch the stack recover.
//!
//! The default plan ([`FaultPlan::none`]) injects nothing and costs one
//! enum match per operation; production stores use exactly that.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Which [`crate::DiskStore`] operation a fault check is guarding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Reading an entry ([`crate::DiskStore::load`]).
    Load,
    /// Committing an entry ([`crate::DiskStore::store`]).
    Store,
    /// Removing an entry — explicit [`crate::DiskStore::remove`] or a
    /// cap-enforcement eviction.
    Evict,
}

/// The failure an armed fault injects when its schedule triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A generic I/O error ([`std::io::ErrorKind::Other`]).
    Io,
    /// Disk full / ENOSPC ([`std::io::ErrorKind::StorageFull`]).
    DiskFull,
    /// Permission denied / EACCES
    /// ([`std::io::ErrorKind::PermissionDenied`]).
    PermissionDenied,
    /// A torn (short) write: the store commits only a prefix of the
    /// envelope **and reports success** — a lying disk. The next load of
    /// the entry fails envelope validation and degrades to a miss.
    /// Meaningful on [`FaultOp::Store`] only; on other ops it injects
    /// nothing.
    TornWrite,
    /// The operation stalls for this long, then proceeds normally — a
    /// slow device rather than a broken one.
    Slow(Duration),
}

/// The trigger schedule of a plan.
#[derive(Debug, Clone, Copy)]
enum Schedule {
    /// Inject nothing (the production plan).
    Never,
    /// Every `n`-th in-scope operation fails (`n = 1` means every one).
    EveryNth { n: u64, kind: FaultKind },
    /// The first `k` in-scope operations fail, then the disk heals.
    First { k: u64, kind: FaultKind },
    /// Every in-scope operation fails until [`FaultPlan::heal`].
    Always { kind: FaultKind },
}

#[derive(Debug)]
struct PlanInner {
    schedule: Mutex<Schedule>,
    /// Operation scope; `None` means every operation is in scope.
    ops: Mutex<Option<Vec<FaultOp>>>,
    /// In-scope operations checked so far (drives the `EveryNth`/`First`
    /// cadence deterministically).
    matched: AtomicU64,
    /// Faults actually injected.
    injected: AtomicU64,
}

/// A shared, runtime-mutable fault schedule for a [`crate::DiskStore`]
/// (see the module docs). `Clone` hands out another handle to the *same*
/// schedule and counters, so a test can keep one handle while the store
/// owns the other.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    fn with_schedule(schedule: Schedule) -> Self {
        FaultPlan {
            inner: Arc::new(PlanInner {
                schedule: Mutex::new(schedule),
                ops: Mutex::new(None),
                matched: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// A plan that injects nothing — the production default.
    pub fn none() -> Self {
        FaultPlan::with_schedule(Schedule::Never)
    }

    /// Every `n`-th in-scope operation fails with `kind` (`n` is clamped
    /// to at least 1; `n = 1` fails every operation).
    pub fn every_nth(n: u64, kind: FaultKind) -> Self {
        FaultPlan::with_schedule(Schedule::EveryNth { n: n.max(1), kind })
    }

    /// The first `k` in-scope operations fail with `kind`; the disk then
    /// behaves from the `k+1`-th on.
    pub fn first(k: u64, kind: FaultKind) -> Self {
        FaultPlan::with_schedule(Schedule::First { k, kind })
    }

    /// Every in-scope operation fails with `kind` until
    /// [`FaultPlan::heal`].
    pub fn always(kind: FaultKind) -> Self {
        FaultPlan::with_schedule(Schedule::Always { kind })
    }

    /// Restricts the plan to `ops` (builder-style); operations outside
    /// the scope never trigger and never advance the cadence. An empty
    /// slice scopes to nothing, disarming the plan entirely.
    pub fn on_ops(self, ops: &[FaultOp]) -> Self {
        *self.inner.ops.lock().expect("fault plan poisoned") = Some(ops.to_vec());
        self
    }

    /// Heals the "disk": the schedule becomes [`FaultPlan::none`]'s, on
    /// every handle sharing this plan. Counters are kept.
    pub fn heal(&self) {
        *self.inner.schedule.lock().expect("fault plan poisoned") = Schedule::Never;
    }

    /// Number of faults injected so far (torn writes and slow ops count —
    /// each is a triggered fault even though the operation "succeeds").
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::Relaxed)
    }

    /// Consults the schedule for one operation: `Some(kind)` when the
    /// store must inject that fault now. Called by the store on every
    /// load/store/evict.
    pub(crate) fn check(&self, op: FaultOp) -> Option<FaultKind> {
        // Fast path out for the production plan before any counter
        // traffic, so a fault-free store stays contention-free.
        let schedule = *self.inner.schedule.lock().expect("fault plan poisoned");
        if matches!(schedule, Schedule::Never) {
            return None;
        }
        {
            let scope = self.inner.ops.lock().expect("fault plan poisoned");
            if let Some(ops) = scope.as_ref() {
                if !ops.contains(&op) {
                    return None;
                }
            }
        }
        let nth = self.inner.matched.fetch_add(1, Ordering::Relaxed) + 1;
        let fired = match schedule {
            Schedule::Never => None,
            Schedule::EveryNth { n, kind } => nth.is_multiple_of(n).then_some(kind),
            Schedule::First { k, kind } => (nth <= k).then_some(kind),
            Schedule::Always { kind } => Some(kind),
        };
        if fired.is_some() {
            self.inner.injected.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let plan = FaultPlan::none();
        for _ in 0..32 {
            assert_eq!(plan.check(FaultOp::Load), None);
            assert_eq!(plan.check(FaultOp::Store), None);
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn every_nth_cadence_is_deterministic() {
        let plan = FaultPlan::every_nth(3, FaultKind::DiskFull);
        let fired: Vec<bool> = (0..9)
            .map(|_| plan.check(FaultOp::Store).is_some())
            .collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(plan.injected(), 3);
    }

    #[test]
    fn every_nth_clamps_zero_to_one() {
        let plan = FaultPlan::every_nth(0, FaultKind::Io);
        assert_eq!(plan.check(FaultOp::Load), Some(FaultKind::Io));
        assert_eq!(plan.check(FaultOp::Load), Some(FaultKind::Io));
    }

    #[test]
    fn first_k_then_healed() {
        let plan = FaultPlan::first(2, FaultKind::PermissionDenied);
        assert!(plan.check(FaultOp::Store).is_some());
        assert!(plan.check(FaultOp::Store).is_some());
        assert_eq!(plan.check(FaultOp::Store), None);
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn scope_filters_and_does_not_advance_cadence() {
        let plan = FaultPlan::every_nth(2, FaultKind::Io).on_ops(&[FaultOp::Store]);
        // Loads are out of scope: no trigger, and no cadence advance.
        assert_eq!(plan.check(FaultOp::Load), None);
        assert_eq!(plan.check(FaultOp::Load), None);
        assert_eq!(plan.check(FaultOp::Store), None); // in-scope op 1
        assert_eq!(plan.check(FaultOp::Store), Some(FaultKind::Io)); // op 2
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn empty_scope_disarms() {
        let plan = FaultPlan::always(FaultKind::Io).on_ops(&[]);
        assert_eq!(plan.check(FaultOp::Load), None);
        assert_eq!(plan.check(FaultOp::Store), None);
        assert_eq!(plan.check(FaultOp::Evict), None);
    }

    #[test]
    fn heal_stops_injection_on_every_handle() {
        let plan = FaultPlan::always(FaultKind::DiskFull);
        let other = plan.clone();
        assert!(other.check(FaultOp::Store).is_some());
        plan.heal();
        assert_eq!(other.check(FaultOp::Store), None);
        assert_eq!(plan.injected(), 1, "counters survive healing");
    }
}
