//! # qompress-store
//!
//! A content-addressed on-disk artifact store: the **persistent cache
//! tier** shared across qompress processes.
//!
//! The compilation pipeline is deterministic and expensive relative to a
//! lookup, and the session layer's cache keys
//! (`qompress`'s `Fingerprinter`-based content addresses) are stable
//! across processes by design — so a compilation artifact written by one
//! process is a valid cache hit for every later one. [`DiskStore`] is
//! that tier: a directory of `<hex key>.bin` files, each wrapping one
//! opaque payload (in production: a `CompilationResult` serialized by
//! `qompress::persist`) in a self-checking envelope. The in-memory LRU of
//! a `Compiler` session fronts it as tier 1; `qompress-serve --cache-dir`
//! points the service at one so restarts come up warm.
//!
//! ## Durability contract
//!
//! * **Writes are atomic**: the payload is written to a unique `.tmp`
//!   file in the same directory and `rename(2)`d into place, so readers
//!   only ever observe a complete old entry or a complete new one — never
//!   a torn write. Stray `.tmp` files (a writer killed mid-write) are
//!   swept on [`DiskStore::open`].
//! * **Corruption degrades to a miss, never a panic**: every entry
//!   carries a header with a magic tag, the on-disk **format version**,
//!   the payload length and an FNV-1a integrity fingerprint of the
//!   payload. A flipped byte, a truncated file, or an entry written by a
//!   different format version fails validation and is reported as
//!   [`LoadOutcome::Rejected`] (and removed best-effort); callers treat
//!   it exactly like an absent entry.
//! * **Bounded size**: the store enforces a configurable byte cap by
//!   evicting the oldest-modified entries first. Successful loads refresh
//!   an entry's modification time (best-effort), so the policy is
//!   LRU-like across every process sharing the directory. There is no
//!   sidecar metadata to corrupt: the index is rebuilt by scanning the
//!   directory on open, and eviction re-scans before it removes anything.
//!
//! ## Fault injection
//!
//! Every store operation first consults an injectable [`FaultPlan`]
//! ([`DiskStore::open_with_faults`]) so disk failure modes — ENOSPC,
//! permission flips, torn writes, stalls — are deterministically
//! reproducible in tests and chaos gates. The production plan
//! ([`FaultPlan::none`], what [`DiskStore::open`] uses) injects nothing.
//!
//! ## Format version policy
//!
//! [`FORMAT_VERSION`] is bumped whenever the envelope layout *or* the
//! payload codec changes incompatibly. Old entries are never migrated:
//! a version mismatch is a miss, the caller recompiles, and the write-back
//! replaces the entry in the new format. A shared cache directory may
//! therefore briefly hold mixed versions while a fleet upgrades — each
//! binary simply ignores the entries it cannot read.

mod fault;

pub use fault::{FaultKind, FaultOp, FaultPlan};

use qompress_arch::Fingerprinter;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

/// Magic tag opening every stored entry.
const MAGIC: &[u8; 4] = b"QPST";

/// On-disk format version (see the crate docs for the bump policy).
pub const FORMAT_VERSION: u32 = 1;

/// Envelope header size: magic (4) + version (4) + payload length (8) +
/// payload FNV-1a fingerprint (8).
pub const HEADER_BYTES: usize = 24;

/// Default byte cap for a store: 1 GiB.
pub const DEFAULT_MAX_BYTES: u64 = 1 << 30;

/// Longest accepted key (hex characters).
const MAX_KEY_LEN: usize = 128;

/// Filename suffix of committed entries.
const ENTRY_SUFFIX: &str = ".bin";

/// Filename suffix of in-flight writes, swept on open.
const TEMP_SUFFIX: &str = ".tmp";

/// FNV-1a fingerprint of a payload, as stored in the envelope header.
fn payload_fingerprint(payload: &[u8]) -> u64 {
    Fingerprinter::new().write_bytes(payload).finish()
}

/// Materializes a triggered fault as the `io::Error` the operation must
/// fail with — or `None` when the fault does not error the call:
/// [`FaultKind::Slow`] sleeps here and lets the operation proceed, and
/// [`FaultKind::TornWrite`] is handled specially by `store` (it "succeeds"
/// short) so it errors nothing elsewhere.
fn injected_error(kind: FaultKind) -> Option<io::Error> {
    match kind {
        FaultKind::Io => Some(io::Error::other("injected I/O fault")),
        FaultKind::DiskFull => Some(io::Error::new(
            io::ErrorKind::StorageFull,
            "injected disk-full (ENOSPC) fault",
        )),
        FaultKind::PermissionDenied => Some(io::Error::new(
            io::ErrorKind::PermissionDenied,
            "injected permission-denied fault",
        )),
        FaultKind::TornWrite => None,
        FaultKind::Slow(delay) => {
            std::thread::sleep(delay);
            None
        }
    }
}

/// Wraps `payload` in the self-checking envelope: header (magic, format
/// version, length, integrity fingerprint) followed by the payload bytes.
pub fn encode_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload_fingerprint(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates an envelope and returns its payload, or `None` when the
/// bytes are truncated, carry the wrong magic or format version, declare
/// a length that does not match, or fail the integrity fingerprint.
/// Never panics on arbitrary input.
pub fn decode_envelope(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < HEADER_BYTES || &bytes[..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if version != FORMAT_VERSION {
        return None;
    }
    let declared = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let stored_fp = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
    let payload = &bytes[HEADER_BYTES..];
    if payload.len() as u64 != declared || payload_fingerprint(payload) != stored_fp {
        return None;
    }
    Some(payload)
}

/// Returns `true` when `key` is a usable content address: 1 to 128
/// lowercase hex characters (the hex rendering of a fingerprint). The
/// restriction keeps keys path-safe on every platform.
pub fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key.len() <= MAX_KEY_LEN
        && key
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// The outcome of one [`DiskStore::load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The entry exists and passed validation; here is its payload.
    Payload(Vec<u8>),
    /// No entry under this key. Equally a miss for callers, but
    /// distinguished from [`LoadOutcome::Failed`] so health tracking (the
    /// session's circuit breaker) only counts real I/O trouble.
    Absent,
    /// An entry exists but failed validation (corrupt, truncated, or a
    /// different format version). It has been removed best-effort;
    /// callers treat this exactly like [`LoadOutcome::Absent`].
    Rejected,
    /// The read itself failed with an I/O error other than not-found
    /// (a failing disk, a permission flip, an injected fault). Callers
    /// treat it as a miss *and* may count it against the tier's health.
    Failed(io::ErrorKind),
}

/// One committed entry, as reported by [`DiskStore::scan`].
#[derive(Debug, Clone)]
struct ScanEntry {
    path: PathBuf,
    bytes: u64,
    modified: SystemTime,
}

/// A content-addressed on-disk artifact store (see the crate docs).
///
/// All methods take `&self`; the store is safe to share across threads,
/// and multiple processes may open the same directory concurrently —
/// atomic renames keep every entry internally consistent, and eviction
/// re-scans the directory so per-process accounting drift self-corrects.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    max_bytes: u64,
    /// Running estimate of committed bytes; corrected by re-scan whenever
    /// the cap is enforced (other processes may add or remove entries).
    approx_bytes: AtomicU64,
    /// Serializes this process's eviction passes (and names temp files
    /// uniquely together with the pid).
    evict_lock: Mutex<u64>,
    /// Injected fault schedule; [`FaultPlan::none`] in production.
    faults: FaultPlan,
}

impl DiskStore {
    /// Opens (creating if needed) the store at `dir` with a byte cap of
    /// `max_bytes`.
    ///
    /// Rebuilds the size accounting by scanning the directory — there is
    /// no sidecar index file to corrupt — sweeps stray `.tmp` files left
    /// by writers that died mid-write, and enforces the cap immediately
    /// (so re-opening with a smaller cap shrinks the store).
    ///
    /// # Errors
    ///
    /// Returns the error if the directory cannot be created or read.
    pub fn open(dir: impl Into<PathBuf>, max_bytes: u64) -> io::Result<Self> {
        DiskStore::open_with_faults(dir, max_bytes, FaultPlan::none())
    }

    /// [`DiskStore::open`] with an injectable I/O fault schedule: every
    /// subsequent load/store/evict consults `faults` first and injects
    /// the scheduled failure. For chaos tests and resilience gates; a
    /// production store passes [`FaultPlan::none`] (what `open` does).
    ///
    /// # Errors
    ///
    /// Returns the error if the directory cannot be created or read.
    pub fn open_with_faults(
        dir: impl Into<PathBuf>,
        max_bytes: u64,
        faults: FaultPlan,
    ) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let store = DiskStore {
            dir,
            max_bytes,
            approx_bytes: AtomicU64::new(0),
            evict_lock: Mutex::new(0),
            faults,
        };
        // Sweep temp files first so they never count against the cap.
        for entry in fs::read_dir(&store.dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(TEMP_SUFFIX))
            {
                let _ = fs::remove_file(&path);
            }
        }
        let total: u64 = store.scan().iter().map(|e| e.bytes).sum();
        store.approx_bytes.store(total, Ordering::Relaxed);
        if total > max_bytes {
            store.enforce_cap(None);
        }
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte cap.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Number of committed entries, by directory scan (exact at the
    /// moment of the scan, even with concurrent writers in other
    /// processes).
    pub fn entry_count(&self) -> usize {
        self.scan().len()
    }

    /// Total committed bytes, by directory scan.
    pub fn stored_bytes(&self) -> u64 {
        self.scan().iter().map(|e| e.bytes).sum()
    }

    /// Loads the entry under `key`, validating its envelope. A corrupt or
    /// version-mismatched entry is removed best-effort and reported as
    /// [`LoadOutcome::Rejected`]; a successful load refreshes the entry's
    /// modification time (best-effort) so hot entries survive eviction.
    pub fn load(&self, key: &str) -> LoadOutcome {
        if !valid_key(key) {
            return LoadOutcome::Absent;
        }
        if let Some(err) = self.faults.check(FaultOp::Load).and_then(injected_error) {
            return LoadOutcome::Failed(err.kind());
        }
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return LoadOutcome::Absent,
            // Any other read error is real I/O trouble — still a miss for
            // the caller, but reported so tier health tracking sees it.
            Err(err) => return LoadOutcome::Failed(err.kind()),
        };
        match decode_envelope(&bytes) {
            Some(payload) => {
                // LRU-like touch: refresh mtime so eviction (oldest
                // mtime first) spares entries that are actually serving
                // hits. Best-effort — a read-only filesystem still
                // serves, it just ages.
                let _ = fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_modified(SystemTime::now()));
                LoadOutcome::Payload(payload.to_vec())
            }
            None => {
                let _ = fs::remove_file(&path);
                LoadOutcome::Rejected
            }
        }
    }

    /// Stores `payload` under `key` atomically (unique temp file in the
    /// same directory, then rename), replacing any existing entry, and
    /// enforces the byte cap by evicting oldest-modified entries.
    ///
    /// Returns `Ok(true)` when the entry was committed, `Ok(false)` when
    /// the enveloped payload alone exceeds the cap (nothing is written —
    /// the artifact is simply not persisted).
    ///
    /// # Errors
    ///
    /// Returns the error if `key` is not a [`valid_key`] or the write or
    /// rename fails.
    pub fn store(&self, key: &str, payload: &[u8]) -> io::Result<bool> {
        if !valid_key(key) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid store key `{key}` (want 1..=128 lowercase hex chars)"),
            ));
        }
        let mut torn = false;
        match self.faults.check(FaultOp::Store) {
            Some(FaultKind::TornWrite) => torn = true,
            Some(kind) => {
                if let Some(err) = injected_error(kind) {
                    return Err(err);
                }
            }
            None => {}
        }
        let mut envelope = encode_envelope(payload);
        if envelope.len() as u64 > self.max_bytes {
            return Ok(false);
        }
        if torn {
            // The lying-disk fault: commit only half the envelope yet
            // report success. The truncated entry fails validation on its
            // next load and degrades to a miss — exactly what a real torn
            // write (crash between write and fsync-less rename) produces.
            envelope.truncate(envelope.len() / 2);
        }
        let final_path = self.entry_path(key);
        let old_bytes = fs::metadata(&final_path).map(|m| m.len()).unwrap_or(0);
        let tmp_path = {
            let mut seq = self.evict_lock.lock().expect("store lock poisoned");
            *seq += 1;
            self.dir.join(format!(
                "{key}.{}.{}{TEMP_SUFFIX}",
                std::process::id(),
                *seq
            ))
        };
        let written = (|| -> io::Result<()> {
            let mut file = fs::File::create(&tmp_path)?;
            file.write_all(&envelope)?;
            // No fsync: a machine crash between write and rename can at
            // worst leave a short or empty entry, which the envelope
            // check degrades to a miss. Callers recompile; durability of
            // individual entries is not part of the contract.
            fs::rename(&tmp_path, &final_path)
        })();
        if let Err(err) = written {
            let _ = fs::remove_file(&tmp_path);
            return Err(err);
        }
        let grown = (envelope.len() as u64).saturating_sub(old_bytes);
        let total = self
            .approx_bytes
            .fetch_add(grown, Ordering::Relaxed)
            .saturating_add(grown);
        if total > self.max_bytes {
            self.enforce_cap(Some(&final_path));
        }
        Ok(true)
    }

    /// Removes the entry under `key`; returns `true` if a file was
    /// deleted.
    pub fn remove(&self, key: &str) -> bool {
        if !valid_key(key) {
            return false;
        }
        if self
            .faults
            .check(FaultOp::Evict)
            .and_then(injected_error)
            .is_some()
        {
            return false;
        }
        let path = self.entry_path(key);
        let removed = fs::metadata(&path).map(|m| m.len()).ok();
        match fs::remove_file(&path) {
            Ok(()) => {
                if let Some(bytes) = removed {
                    self.approx_bytes.fetch_sub(
                        bytes.min(self.approx_bytes.load(Ordering::Relaxed)),
                        Ordering::Relaxed,
                    );
                }
                true
            }
            Err(_) => false,
        }
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}{ENTRY_SUFFIX}"))
    }

    /// Lists committed entries (valid-key `.bin` files). Unknown files
    /// are ignored entirely: the store never deletes what it did not
    /// create.
    fn scan(&self) -> Vec<ScanEntry> {
        let Ok(read) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut entries = Vec::new();
        for entry in read.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(stem) = name.strip_suffix(ENTRY_SUFFIX) else {
                continue;
            };
            if !valid_key(stem) {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            entries.push(ScanEntry {
                path,
                bytes: meta.len(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        entries
    }

    /// Evicts oldest-modified entries until the store fits its cap,
    /// re-scanning the directory for exact sizes and mtimes (so drift
    /// from other processes self-corrects here). `protect` shields the
    /// just-written entry unless it is the only one left over the cap.
    fn enforce_cap(&self, protect: Option<&Path>) {
        let _guard = self.evict_lock.lock().expect("store lock poisoned");
        let mut entries = self.scan();
        // Oldest first; ties (coarse-mtime filesystems) break by name so
        // two processes evicting concurrently converge on the same order.
        entries.sort_by(|a, b| (a.modified, &a.path).cmp(&(b.modified, &b.path)));
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        let mut kept_protected = 0u64;
        for entry in &entries {
            if total <= self.max_bytes {
                break;
            }
            if protect.is_some_and(|p| p == entry.path) {
                kept_protected = entry.bytes;
                continue;
            }
            // An injected eviction fault leaves this entry on disk, like
            // a real unlink failure would; the next pass retries it.
            if self
                .faults
                .check(FaultOp::Evict)
                .and_then(injected_error)
                .is_some()
            {
                continue;
            }
            if fs::remove_file(&entry.path).is_ok() {
                total -= entry.bytes;
            }
        }
        // Pathological cap (smaller than the newest entry): strictness
        // wins over recency — the cap is a hard bound.
        if total > self.max_bytes && kept_protected > 0 {
            if let Some(p) = protect {
                if fs::remove_file(p).is_ok() {
                    total -= kept_protected;
                }
            }
        }
        self.approx_bytes.store(total, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trip() {
        for payload in [&b""[..], b"x", b"hello world", &[0u8; 1024]] {
            let enveloped = encode_envelope(payload);
            assert_eq!(decode_envelope(&enveloped), Some(payload));
            assert_eq!(enveloped.len(), HEADER_BYTES + payload.len());
        }
    }

    #[test]
    fn envelope_rejects_corruption() {
        let enveloped = encode_envelope(b"the quick brown fox");
        // Every single-byte flip must fail validation (header flips break
        // magic/version/length/fingerprint; payload flips break the
        // fingerprint).
        for i in 0..enveloped.len() {
            let mut bad = enveloped.clone();
            bad[i] ^= 0x40;
            assert_eq!(decode_envelope(&bad), None, "flip at byte {i} accepted");
        }
        // Every truncation must fail (the declared length no longer
        // matches, or the header itself is short).
        for len in 0..enveloped.len() {
            assert_eq!(
                decode_envelope(&enveloped[..len]),
                None,
                "truncation to {len}"
            );
        }
        // Extending the envelope must fail too.
        let mut long = enveloped.clone();
        long.push(0);
        assert_eq!(decode_envelope(&long), None);
    }

    #[test]
    fn envelope_rejects_other_versions() {
        let mut enveloped = encode_envelope(b"payload");
        let bumped = (FORMAT_VERSION + 1).to_le_bytes();
        enveloped[4..8].copy_from_slice(&bumped);
        assert_eq!(decode_envelope(&enveloped), None);
    }

    #[test]
    fn injected_faults_surface_as_errors() {
        let dir = std::env::temp_dir().join(format!("qompress-fault-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        // Store faults: ENOSPC and EACCES become the matching io errors.
        let plan = FaultPlan::first(2, FaultKind::DiskFull).on_ops(&[FaultOp::Store]);
        let store = DiskStore::open_with_faults(&dir, DEFAULT_MAX_BYTES, plan.clone()).unwrap();
        let err = store.store("aa", b"payload").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let err = store.store("aa", b"payload").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(plan.injected(), 2);
        // The schedule is exhausted: the third store commits for real.
        assert!(store.store("aa", b"payload").unwrap());
        assert_eq!(store.load("aa"), LoadOutcome::Payload(b"payload".to_vec()));

        // Load faults report `Failed` with the injected kind; the entry
        // itself is untouched and serves again once the plan heals.
        let plan = FaultPlan::always(FaultKind::PermissionDenied).on_ops(&[FaultOp::Load]);
        let store = DiskStore::open_with_faults(&dir, DEFAULT_MAX_BYTES, plan.clone()).unwrap();
        assert_eq!(
            store.load("aa"),
            LoadOutcome::Failed(io::ErrorKind::PermissionDenied)
        );
        plan.heal();
        assert_eq!(store.load("aa"), LoadOutcome::Payload(b"payload".to_vec()));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_reports_success_but_rejects_on_load() {
        let dir = std::env::temp_dir().join(format!("qompress-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let plan = FaultPlan::first(1, FaultKind::TornWrite).on_ops(&[FaultOp::Store]);
        let store = DiskStore::open_with_faults(&dir, DEFAULT_MAX_BYTES, plan.clone()).unwrap();
        // The lying disk: the call reports a committed entry…
        assert!(store.store("bb", b"the whole payload").unwrap());
        assert_eq!(plan.injected(), 1);
        // …but the next load fails validation and degrades to a miss.
        assert_eq!(store.load("bb"), LoadOutcome::Rejected);
        assert_eq!(store.load("bb"), LoadOutcome::Absent, "reject removed it");
        // A healed rewrite round-trips.
        assert!(store.store("bb", b"the whole payload").unwrap());
        assert_eq!(
            store.load("bb"),
            LoadOutcome::Payload(b"the whole payload".to_vec())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_fault_delays_but_succeeds() {
        let dir = std::env::temp_dir().join(format!("qompress-slow-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let delay = std::time::Duration::from_millis(25);
        let plan = FaultPlan::first(1, FaultKind::Slow(delay));
        let store = DiskStore::open_with_faults(&dir, DEFAULT_MAX_BYTES, plan).unwrap();
        let started = std::time::Instant::now();
        assert!(store.store("cc", b"slow but sure").unwrap());
        assert!(started.elapsed() >= delay, "slow fault must stall the op");
        assert_eq!(
            store.load("cc"),
            LoadOutcome::Payload(b"slow but sure".to_vec())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_fault_blocks_removal() {
        let dir = std::env::temp_dir().join(format!("qompress-evfault-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let plan = FaultPlan::first(1, FaultKind::Io).on_ops(&[FaultOp::Evict]);
        let store = DiskStore::open_with_faults(&dir, DEFAULT_MAX_BYTES, plan).unwrap();
        assert!(store.store("dd", b"sticky").unwrap());
        assert!(!store.remove("dd"), "injected unlink failure");
        assert!(store.remove("dd"), "second try succeeds");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_validation() {
        assert!(valid_key("0123456789abcdef"));
        assert!(valid_key("a"));
        assert!(valid_key(&"f".repeat(128)));
        assert!(!valid_key(""));
        assert!(!valid_key(&"f".repeat(129)));
        assert!(!valid_key("ABCDEF")); // uppercase is not canonical
        assert!(!valid_key("xyz"));
        assert!(!valid_key("../escape"));
        assert!(!valid_key("a b"));
    }
}
