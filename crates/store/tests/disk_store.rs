//! Filesystem-level tests for [`DiskStore`]: round trips, corruption
//! handling, temp-file sweeping, cap enforcement, and cross-handle
//! sharing of one directory (the in-process analogue of two processes
//! sharing a cache dir).

use qompress_store::{
    decode_envelope, encode_envelope, DiskStore, LoadOutcome, DEFAULT_MAX_BYTES, HEADER_BYTES,
};
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, SystemTime};

/// Fresh per-test directory under the cargo-managed tmp dir (inside the
/// repo's `target/`, cleaned by `cargo clean`).
fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Forces an entry's mtime into the past so eviction order is
/// deterministic even on coarse-timestamp filesystems.
fn age_entry(store: &DiskStore, key: &str, seconds_ago: u64) {
    let path = store.dir().join(format!("{key}.bin"));
    let file = fs::OpenOptions::new().write(true).open(&path).unwrap();
    file.set_modified(SystemTime::now() - Duration::from_secs(seconds_ago))
        .unwrap();
}

#[test]
fn store_load_round_trip() {
    let store = DiskStore::open(test_dir("round_trip"), DEFAULT_MAX_BYTES).unwrap();
    let payload = b"compilation artifact bytes".to_vec();
    assert!(store.store("aa11", &payload).unwrap());
    assert_eq!(store.load("aa11"), LoadOutcome::Payload(payload.clone()));
    assert_eq!(store.entry_count(), 1);
    assert_eq!(store.stored_bytes(), (HEADER_BYTES + payload.len()) as u64);
    // Overwriting the same key replaces, not accumulates.
    assert!(store.store("aa11", b"shorter").unwrap());
    assert_eq!(
        store.load("aa11"),
        LoadOutcome::Payload(b"shorter".to_vec())
    );
    assert_eq!(store.entry_count(), 1);
}

#[test]
fn absent_and_invalid_keys_are_misses() {
    let store = DiskStore::open(test_dir("absent"), DEFAULT_MAX_BYTES).unwrap();
    assert_eq!(store.load("feed"), LoadOutcome::Absent);
    assert_eq!(store.load("NOT-HEX"), LoadOutcome::Absent);
    assert_eq!(store.load(""), LoadOutcome::Absent);
    assert!(store.store("NOT-HEX", b"x").is_err());
    assert!(!store.remove("NOT-HEX"));
}

#[test]
fn reopen_serves_previous_entries() {
    let dir = test_dir("reopen");
    {
        let store = DiskStore::open(&dir, DEFAULT_MAX_BYTES).unwrap();
        assert!(store.store("0123abc", b"survives restart").unwrap());
    }
    // A fresh handle — the in-process analogue of a process restart —
    // rebuilds its index from the directory alone.
    let store = DiskStore::open(&dir, DEFAULT_MAX_BYTES).unwrap();
    assert_eq!(
        store.load("0123abc"),
        LoadOutcome::Payload(b"survives restart".to_vec())
    );
}

#[test]
fn corrupt_entries_become_misses_and_are_removed() {
    let store = DiskStore::open(test_dir("corrupt"), DEFAULT_MAX_BYTES).unwrap();
    assert!(store.store("dead", b"soon to be corrupted").unwrap());
    let path = store.dir().join("dead.bin");

    // Flip one payload byte on disk.
    let mut bytes = fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    fs::write(&path, &bytes).unwrap();
    assert_eq!(store.load("dead"), LoadOutcome::Rejected);
    // The bad entry was removed: the next load is a plain miss.
    assert_eq!(store.load("dead"), LoadOutcome::Absent);

    // Truncation (torn write that somehow survived) is also a rejection.
    assert!(store.store("dead", b"soon to be truncated").unwrap());
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert_eq!(store.load("dead"), LoadOutcome::Rejected);

    // An empty file (crash between create and write) too.
    assert!(store.store("dead", b"x").unwrap());
    fs::write(&path, b"").unwrap();
    assert_eq!(store.load("dead"), LoadOutcome::Rejected);
}

#[test]
fn version_mismatch_is_a_miss() {
    let store = DiskStore::open(test_dir("version"), DEFAULT_MAX_BYTES).unwrap();
    assert!(store.store("beef", b"current version").unwrap());
    let path = store.dir().join("beef.bin");
    let mut bytes = fs::read(&path).unwrap();
    // Bump the on-disk format version field (bytes 4..8, LE).
    bytes[4] = bytes[4].wrapping_add(1);
    fs::write(&path, &bytes).unwrap();
    assert_eq!(store.load("beef"), LoadOutcome::Rejected);
}

#[test]
fn stray_temp_files_are_swept_on_open() {
    let dir = test_dir("sweep");
    fs::create_dir_all(&dir).unwrap();
    // Simulate a writer killed mid-write: a half-written temp file.
    let stray = dir.join("abcd.12345.7.tmp");
    fs::write(&stray, b"partial garbage").unwrap();
    let store = DiskStore::open(&dir, DEFAULT_MAX_BYTES).unwrap();
    assert!(!stray.exists(), "stray temp file not swept");
    // The half-written key never became visible.
    assert_eq!(store.load("abcd"), LoadOutcome::Absent);
    assert_eq!(store.entry_count(), 0);
}

#[test]
fn unknown_files_are_left_alone() {
    let dir = test_dir("foreign");
    fs::create_dir_all(&dir).unwrap();
    let foreign = dir.join("README.txt");
    fs::write(&foreign, b"not ours").unwrap();
    let store = DiskStore::open(&dir, 64).unwrap();
    // Fill past the cap to trigger eviction; the foreign file survives.
    let _ = store.store("aa", &[0u8; 40]);
    let _ = store.store("bb", &[0u8; 40]);
    assert!(foreign.exists(), "store deleted a file it did not create");
}

#[test]
fn byte_cap_evicts_oldest_first() {
    let entry_bytes = (HEADER_BYTES + 8) as u64;
    // Room for exactly two entries.
    let store = DiskStore::open(test_dir("evict"), 2 * entry_bytes).unwrap();
    assert!(store.store("aa", b"payloadA").unwrap());
    assert!(store.store("bb", b"payloadB").unwrap());
    age_entry(&store, "aa", 300);
    age_entry(&store, "bb", 200);
    assert_eq!(store.entry_count(), 2);

    // A third entry exceeds the cap: the oldest (aa) must go.
    assert!(store.store("cc", b"payloadC").unwrap());
    assert_eq!(store.load("aa"), LoadOutcome::Absent);
    assert_eq!(store.load("bb"), LoadOutcome::Payload(b"payloadB".to_vec()));
    assert_eq!(store.load("cc"), LoadOutcome::Payload(b"payloadC".to_vec()));
    assert!(store.stored_bytes() <= store.max_bytes());
}

#[test]
fn loads_refresh_recency() {
    let entry_bytes = (HEADER_BYTES + 8) as u64;
    let store = DiskStore::open(test_dir("touch"), 2 * entry_bytes).unwrap();
    assert!(store.store("aa", b"payloadA").unwrap());
    assert!(store.store("bb", b"payloadB").unwrap());
    age_entry(&store, "aa", 300);
    age_entry(&store, "bb", 200);
    // Touch aa via a load: it becomes the most recent, so bb evicts next.
    assert!(matches!(store.load("aa"), LoadOutcome::Payload(_)));
    assert!(store.store("cc", b"payloadC").unwrap());
    assert_eq!(store.load("bb"), LoadOutcome::Absent);
    assert!(matches!(store.load("aa"), LoadOutcome::Payload(_)));
}

#[test]
fn oversized_payload_is_skipped_not_stored() {
    let store = DiskStore::open(test_dir("oversized"), 64).unwrap();
    assert!(store.store("aa", b"fits").unwrap());
    // An entry bigger than the whole cap is declined without touching
    // what's already stored.
    assert!(!store.store("bb", &[0u8; 256]).unwrap());
    assert_eq!(store.load("bb"), LoadOutcome::Absent);
    assert_eq!(store.load("aa"), LoadOutcome::Payload(b"fits".to_vec()));
}

#[test]
fn reopen_with_smaller_cap_shrinks() {
    let dir = test_dir("shrink");
    let entry_bytes = (HEADER_BYTES + 8) as u64;
    {
        let store = DiskStore::open(&dir, DEFAULT_MAX_BYTES).unwrap();
        for key in ["aa", "bb", "cc", "dd"] {
            assert!(store.store(key, b"payloadX").unwrap());
        }
        age_entry(&store, "aa", 400);
        age_entry(&store, "bb", 300);
        age_entry(&store, "cc", 200);
        age_entry(&store, "dd", 100);
    }
    let store = DiskStore::open(&dir, 2 * entry_bytes).unwrap();
    assert!(store.stored_bytes() <= store.max_bytes());
    assert_eq!(store.entry_count(), 2);
    // The two newest survive.
    assert!(matches!(store.load("cc"), LoadOutcome::Payload(_)));
    assert!(matches!(store.load("dd"), LoadOutcome::Payload(_)));
}

#[test]
fn two_handles_share_one_directory() {
    let dir = test_dir("shared");
    let a = DiskStore::open(&dir, DEFAULT_MAX_BYTES).unwrap();
    let b = DiskStore::open(&dir, DEFAULT_MAX_BYTES).unwrap();
    assert!(a.store("cafe", b"written by a").unwrap());
    assert_eq!(
        b.load("cafe"),
        LoadOutcome::Payload(b"written by a".to_vec())
    );
    // Concurrent overwrites of the same key: both handles then agree on
    // one complete value (rename is atomic — never a torn mix).
    assert!(b.store("cafe", b"written by b").unwrap());
    assert_eq!(
        a.load("cafe"),
        LoadOutcome::Payload(b"written by b".to_vec())
    );
    assert!(a.remove("cafe"));
    assert_eq!(b.load("cafe"), LoadOutcome::Absent);
}

#[test]
fn concurrent_writers_never_produce_a_torn_read() {
    let dir = test_dir("hammer");
    let store = std::sync::Arc::new(DiskStore::open(&dir, DEFAULT_MAX_BYTES).unwrap());
    let payload_a = vec![0xAAu8; 4096];
    let payload_b = vec![0xBBu8; 8192];
    let mut threads = Vec::new();
    for (payload, flavor) in [(payload_a.clone(), "a"), (payload_b.clone(), "b")] {
        let store = std::sync::Arc::clone(&store);
        threads.push(std::thread::spawn(move || {
            for _ in 0..50 {
                store
                    .store("77", &payload)
                    .unwrap_or_else(|e| panic!("{flavor}: {e}"));
            }
        }));
    }
    let reader = {
        let store = std::sync::Arc::clone(&store);
        let (pa, pb) = (payload_a.clone(), payload_b.clone());
        std::thread::spawn(move || {
            for _ in 0..200 {
                match store.load("77") {
                    LoadOutcome::Payload(p) => {
                        assert!(p == pa || p == pb, "torn or mixed payload observed");
                    }
                    LoadOutcome::Absent => {}
                    LoadOutcome::Rejected => panic!("validation rejected a live entry"),
                    LoadOutcome::Failed(kind) => panic!("read failed on a healthy dir: {kind}"),
                }
            }
        })
    };
    for t in threads {
        t.join().unwrap();
    }
    reader.join().unwrap();
    // The final state is one of the two complete payloads.
    match store.load("77") {
        LoadOutcome::Payload(p) => assert!(p == payload_a || p == payload_b),
        other => panic!("expected a payload at the end, got {other:?}"),
    }
}

#[test]
fn envelope_helpers_are_exposed_for_tooling() {
    let enveloped = encode_envelope(b"inspect me");
    assert_eq!(decode_envelope(&enveloped), Some(&b"inspect me"[..]));
}
