//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use qompress_linalg::{expm, expm_i_h_t, C64, CMat};

fn arb_c64() -> impl Strategy<Value = C64> {
    (-2.0f64..2.0, -2.0f64..2.0).prop_map(|(re, im)| C64::new(re, im))
}

fn arb_mat(n: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec(arb_c64(), n * n).prop_map(move |v| {
        CMat::from_fn(n, n, |i, j| v[i * n + j])
    })
}

fn arb_hermitian(n: usize) -> impl Strategy<Value = CMat> {
    arb_mat(n).prop_map(|m| (&m + &m.dagger()).scale(C64::real(0.5)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dagger_is_involutive(m in arb_mat(3)) {
        prop_assert!(m.dagger().dagger().max_abs_diff(&m) < 1e-12);
    }

    #[test]
    fn product_dagger_reverses(a in arb_mat(3), b in arb_mat(3)) {
        let lhs = a.mul_mat(&b).dagger();
        let rhs = b.dagger().mul_mat(&a.dagger());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn matmul_is_associative(a in arb_mat(2), b in arb_mat(2), c in arb_mat(2)) {
        let lhs = a.mul_mat(&b).mul_mat(&c);
        let rhs = a.mul_mat(&b.mul_mat(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn trace_is_linear(a in arb_mat(3), b in arb_mat(3)) {
        let lhs = (&a + &b).trace();
        let rhs = a.trace() + b.trace();
        prop_assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn trace_cyclic(a in arb_mat(3), b in arb_mat(3)) {
        let lhs = a.mul_mat(&b).trace();
        let rhs = b.mul_mat(&a).trace();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn kron_mixed_product(a in arb_mat(2), b in arb_mat(2), c in arb_mat(2), d in arb_mat(2)) {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let lhs = a.kron(&b).mul_mat(&c.kron(&d));
        let rhs = a.mul_mat(&c).kron(&b.mul_mat(&d));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn exp_of_hermitian_generator_is_unitary(h in arb_hermitian(3), t in -2.0f64..2.0) {
        let u = expm_i_h_t(&h, t);
        prop_assert!(u.is_unitary(1e-8));
    }

    #[test]
    fn exp_inverse_is_exp_of_negation(h in arb_hermitian(2), t in -1.5f64..1.5) {
        let u = expm_i_h_t(&h, t);
        let v = expm_i_h_t(&h, -t);
        prop_assert!(u.mul_mat(&v).is_identity(1e-8));
    }

    #[test]
    fn expm_similarity_with_scalar(x in -1.0f64..1.0, y in -1.0f64..1.0) {
        // 1x1 matrix exp equals scalar exp.
        let m = CMat::diag(&[C64::new(x, y)]);
        let e = expm(&m);
        prop_assert!((e[(0, 0)] - C64::new(x, y).exp()).abs() < 1e-10);
    }

    #[test]
    fn complex_field_axioms(a in arb_c64(), b in arb_c64(), c in arb_c64()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!((lhs - rhs).abs() < 1e-10);
        prop_assert!((a * b - b * a).abs() < 1e-12);
    }

    #[test]
    fn conj_is_multiplicative(a in arb_c64(), b in arb_c64()) {
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-12);
    }
}
