//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use qompress_linalg::{expm, expm_i_h_t, CMat, C64};

fn arb_c64() -> impl Strategy<Value = C64> {
    (-2.0f64..2.0, -2.0f64..2.0).prop_map(|(re, im)| C64::new(re, im))
}

fn arb_mat(n: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec(arb_c64(), n * n)
        .prop_map(move |v| CMat::from_fn(n, n, |i, j| v[i * n + j]))
}

fn arb_hermitian(n: usize) -> impl Strategy<Value = CMat> {
    arb_mat(n).prop_map(|m| (&m + &m.dagger()).scale(C64::real(0.5)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dagger_is_involutive(m in arb_mat(3)) {
        prop_assert!(m.dagger().dagger().max_abs_diff(&m) < 1e-12);
    }

    #[test]
    fn product_dagger_reverses(a in arb_mat(3), b in arb_mat(3)) {
        let lhs = a.mul_mat(&b).dagger();
        let rhs = b.dagger().mul_mat(&a.dagger());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn matmul_is_associative(a in arb_mat(2), b in arb_mat(2), c in arb_mat(2)) {
        let lhs = a.mul_mat(&b).mul_mat(&c);
        let rhs = a.mul_mat(&b.mul_mat(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn trace_is_linear(a in arb_mat(3), b in arb_mat(3)) {
        let lhs = (&a + &b).trace();
        let rhs = a.trace() + b.trace();
        prop_assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn trace_cyclic(a in arb_mat(3), b in arb_mat(3)) {
        let lhs = a.mul_mat(&b).trace();
        let rhs = b.mul_mat(&a).trace();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn kron_mixed_product(a in arb_mat(2), b in arb_mat(2), c in arb_mat(2), d in arb_mat(2)) {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let lhs = a.kron(&b).mul_mat(&c.kron(&d));
        let rhs = a.mul_mat(&c).kron(&b.mul_mat(&d));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn exp_of_hermitian_generator_is_unitary(h in arb_hermitian(3), t in -2.0f64..2.0) {
        let u = expm_i_h_t(&h, t);
        prop_assert!(u.is_unitary(1e-8));
    }

    #[test]
    fn exp_inverse_is_exp_of_negation(h in arb_hermitian(2), t in -1.5f64..1.5) {
        let u = expm_i_h_t(&h, t);
        let v = expm_i_h_t(&h, -t);
        prop_assert!(u.mul_mat(&v).is_identity(1e-8));
    }

    #[test]
    fn expm_similarity_with_scalar(x in -1.0f64..1.0, y in -1.0f64..1.0) {
        // 1x1 matrix exp equals scalar exp.
        let m = CMat::diag(&[C64::new(x, y)]);
        let e = expm(&m);
        prop_assert!((e[(0, 0)] - C64::new(x, y).exp()).abs() < 1e-10);
    }

    #[test]
    fn complex_field_axioms(a in arb_c64(), b in arb_c64(), c in arb_c64()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!((lhs - rhs).abs() < 1e-10);
        prop_assert!((a * b - b * a).abs() < 1e-12);
    }

    #[test]
    fn conj_is_multiplicative(a in arb_c64(), b in arb_c64()) {
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-12);
    }

    // --- complex arithmetic round-trips ---

    #[test]
    fn conj_is_involutive(a in arb_c64()) {
        prop_assert!((a.conj().conj() - a).abs() < 1e-15);
    }

    #[test]
    fn recip_round_trips(a in arb_c64()) {
        // Stay away from the pole at 0 where recip is ill-conditioned.
        if a.abs() > 1e-3 {
            prop_assert!((a.recip().recip() - a).abs() < 1e-9);
            prop_assert!((a * a.recip() - C64::ONE).abs() < 1e-10);
        }
    }

    #[test]
    fn polar_round_trips(a in arb_c64()) {
        // z == |z| · e^{i arg z}.
        let back = C64::cis(a.arg()).scale(a.abs());
        prop_assert!((back - a).abs() < 1e-12);
    }

    #[test]
    fn conj_times_self_is_norm_sqr(a in arb_c64()) {
        let p = a * a.conj();
        prop_assert!((p.re - a.norm_sqr()).abs() < 1e-12);
        prop_assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn exp_commutes_with_conj(a in arb_c64()) {
        prop_assert!((a.conj().exp() - a.exp().conj()).abs() < 1e-10);
    }

    #[test]
    fn exp_of_sum_is_product(a in arb_c64(), b in arb_c64()) {
        // Scalars commute, so exp(a+b) = exp(a)exp(b) holds exactly.
        prop_assert!(((a + b).exp() - a.exp() * b.exp()).abs() < 1e-8);
    }

    // --- unitarity preservation in expm ---

    #[test]
    fn expm_unitary_group_closure(
        h1 in arb_hermitian(3),
        h2 in arb_hermitian(3),
        t in -1.5f64..1.5,
    ) {
        // Products of unitaries from independent generators stay unitary.
        let u = expm_i_h_t(&h1, t).mul_mat(&expm_i_h_t(&h2, t));
        prop_assert!(u.is_unitary(1e-8));
    }

    #[test]
    fn expm_preserves_vector_norm(h in arb_hermitian(4), t in -2.0f64..2.0) {
        use qompress_linalg::{basis_state, norm_sqr};
        let u = expm_i_h_t(&h, t);
        for k in 0..4 {
            let v = u.mul_vec(&basis_state(4, k));
            prop_assert!((norm_sqr(&v) - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn expm_of_time_sum_composes(h in arb_hermitian(2), s in -1.0f64..1.0, t in -1.0f64..1.0) {
        // A Hermitian generator commutes with itself, so evolution composes
        // in time: U(s)U(t) = U(s+t).
        let lhs = expm_i_h_t(&h, s).mul_mat(&expm_i_h_t(&h, t));
        let rhs = expm_i_h_t(&h, s + t);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-8);
    }

    #[test]
    fn dagger_inverts_expm_unitary(h in arb_hermitian(3), t in -2.0f64..2.0) {
        let u = expm_i_h_t(&h, t);
        prop_assert!(u.mul_mat(&u.dagger()).is_identity(1e-8));
        prop_assert!(u.dagger().mul_mat(&u).is_identity(1e-8));
    }
}
