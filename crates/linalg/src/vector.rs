//! Helpers for complex state vectors.

use crate::complex::C64;

/// Inner product `⟨a|b⟩` (conjugate-linear in the first argument).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn inner(a: &[C64], b: &[C64]) -> C64 {
    assert_eq!(a.len(), b.len(), "inner product length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x.conj() * *y).sum()
}

/// Squared 2-norm of a state vector.
pub fn norm_sqr(v: &[C64]) -> f64 {
    v.iter().map(|z| z.norm_sqr()).sum()
}

/// Normalizes `v` in place; returns the original norm.
pub fn normalize(v: &mut [C64]) -> f64 {
    let n = norm_sqr(v).sqrt();
    if n > 0.0 {
        for z in v.iter_mut() {
            *z = z.scale(1.0 / n);
        }
    }
    n
}

/// State-overlap fidelity `|⟨a|b⟩|^2` between two (normalized) states.
pub fn overlap_fidelity(a: &[C64], b: &[C64]) -> f64 {
    inner(a, b).norm_sqr()
}

/// Returns a basis state `|k⟩` of the given dimension.
///
/// # Panics
///
/// Panics if `k >= dim`.
pub fn basis_state(dim: usize, k: usize) -> Vec<C64> {
    assert!(k < dim, "basis index out of range");
    let mut v = vec![C64::ZERO; dim];
    v[k] = C64::ONE;
    v
}

/// Checks whether two states are equal up to a global phase, within `tol`.
pub fn equal_up_to_phase(a: &[C64], b: &[C64], tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let ip = inner(a, b);
    let na = norm_sqr(a);
    let nb = norm_sqr(b);
    (ip.abs() * ip.abs() - na * nb).abs() < tol * na.max(nb).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_states_are_orthonormal() {
        let e0 = basis_state(4, 0);
        let e3 = basis_state(4, 3);
        assert_eq!(inner(&e0, &e0), C64::ONE);
        assert_eq!(inner(&e0, &e3), C64::ZERO);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = vec![C64::new(3.0, 0.0), C64::new(0.0, 4.0)];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm_sqr(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_equality_ignores_global_phase() {
        let a = vec![C64::new(0.6, 0.0), C64::new(0.8, 0.0)];
        let phase = C64::cis(1.234);
        let b: Vec<C64> = a.iter().map(|z| *z * phase).collect();
        assert!(equal_up_to_phase(&a, &b, 1e-12));
    }

    #[test]
    fn phase_equality_detects_difference() {
        let a = vec![C64::ONE, C64::ZERO];
        let b = vec![C64::ZERO, C64::ONE];
        assert!(!equal_up_to_phase(&a, &b, 1e-9));
    }

    #[test]
    fn overlap_fidelity_bounds() {
        let a = vec![C64::new(1.0, 0.0), C64::ZERO];
        let b = vec![C64::new(0.5f64.sqrt(), 0.0), C64::new(0.0, 0.5f64.sqrt())];
        let f = overlap_fidelity(&a, &b);
        assert!((f - 0.5).abs() < 1e-12);
    }
}
