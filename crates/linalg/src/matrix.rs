//! Dense, row-major complex matrices sized for small qudit Hilbert spaces.
//!
//! Matrices here are at most a few hundred rows (two transmons with guard
//! levels), so a simple dense representation with `O(n^3)` multiplication is
//! the right tool: no sparsity bookkeeping, fully deterministic, easy to test.

use crate::complex::C64;
use core::fmt;
use core::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense complex matrix in row-major order.
///
/// ```
/// use qompress_linalg::{C64, CMat};
/// let x = CMat::from_rows(&[
///     &[C64::ZERO, C64::ONE],
///     &[C64::ONE, C64::ZERO],
/// ]);
/// assert!(x.mul_mat(&x).is_identity(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        CMat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut m = CMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a diagonal matrix from the given entries.
    pub fn diag(entries: &[C64]) -> Self {
        let n = entries.len();
        let mut m = CMat::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the backing storage (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_mat(&self, other: &CMat) -> CMat {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul");
        let mut out = CMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == C64::ZERO {
                    continue;
                }
                let lhs_row = i * other.cols;
                let rhs_row = k * other.cols;
                for j in 0..other.cols {
                    let prod = a * other.data[rhs_row + j];
                    out.data[lhs_row + j] += prod;
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![C64::ZERO; self.rows];
        for i in 0..self.rows {
            let row = i * self.cols;
            let mut acc = C64::ZERO;
            for j in 0..self.cols {
                acc += self.data[row + j] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Plain transpose without conjugation.
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: C64) -> CMat {
        let mut out = self.clone();
        for z in &mut out.data {
            *z *= k;
        }
        out
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace needs a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Induced 1-norm (maximum absolute column sum), used to pick the
    /// scaling exponent in [`crate::expm`].
    pub fn one_norm(&self) -> f64 {
        let mut best = 0.0f64;
        for j in 0..self.cols {
            let s: f64 = (0..self.rows).map(|i| self[(i, j)].abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == C64::ZERO {
                    continue;
                }
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Checks whether `self` approximates the identity within `tol`
    /// (max-entry deviation).
    pub fn is_identity(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                let want = if i == j { C64::ONE } else { C64::ZERO };
                if (self[(i, j)] - want).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Checks unitarity: `U† U ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.is_square() && self.dagger().mul_mat(self).is_identity(tol)
    }

    /// Checks Hermiticity within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..=i {
                if (self[(i, j)] - self[(j, i)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute entry difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &CMat) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Extracts the sub-matrix with the given row and column index sets.
    ///
    /// Used to restrict a propagator to the logical subspace of a guarded
    /// Hilbert space.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> CMat {
        CMat::from_fn(row_idx.len(), col_idx.len(), |i, j| {
            self[(row_idx[i], col_idx[j])]
        })
    }

    /// Embeds `small` at the given basis indices of a larger identity matrix.
    ///
    /// Entries of the result outside `idx x idx` are identity. This is how a
    /// logical target unitary is lifted to the full (guarded) Hilbert space.
    ///
    /// # Panics
    ///
    /// Panics if `small` is not `idx.len()` square or any index is out of
    /// range.
    pub fn embed(small: &CMat, dim: usize, idx: &[usize]) -> CMat {
        assert_eq!(small.rows(), idx.len());
        assert_eq!(small.cols(), idx.len());
        let mut out = CMat::identity(dim);
        for (i, &ri) in idx.iter().enumerate() {
            // Clear the identity rows we are about to overwrite.
            for c in 0..dim {
                out[(ri, c)] = C64::ZERO;
            }
            for (j, &cj) in idx.iter().enumerate() {
                out[(ri, cj)] = small[(i, j)];
            }
        }
        out
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, other: &CMat) -> CMat {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
        out
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, other: &CMat) -> CMat {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(other.data.iter()) {
            *a -= *b;
        }
        out
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, other: &CMat) -> CMat {
        self.mul_mat(other)
    }
}

impl fmt::Display for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>18}", format!("{}", self[(i, j)]))?;
                if j + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMat {
        CMat::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
    }

    fn pauli_z() -> CMat {
        CMat::diag(&[C64::ONE, -C64::ONE])
    }

    #[test]
    fn identity_times_anything() {
        let x = pauli_x();
        assert_eq!(CMat::identity(2).mul_mat(&x), x);
        assert_eq!(x.mul_mat(&CMat::identity(2)), x);
    }

    #[test]
    fn x_z_anticommute() {
        let x = pauli_x();
        let z = pauli_z();
        let xz = x.mul_mat(&z);
        let zx = z.mul_mat(&x);
        assert!(xz.max_abs_diff(&zx.scale(-C64::ONE)) < 1e-15);
    }

    #[test]
    fn dagger_reverses_products() {
        let a = CMat::from_fn(3, 3, |i, j| C64::new(i as f64, j as f64 * 0.5));
        let b = CMat::from_fn(3, 3, |i, j| C64::new(j as f64 - 1.0, i as f64));
        let lhs = a.mul_mat(&b).dagger();
        let rhs = b.dagger().mul_mat(&a.dagger());
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let z = pauli_z();
        let k = x.kron(&z);
        assert_eq!(k.rows(), 4);
        assert_eq!(k.cols(), 4);
        // X⊗Z has block structure [[0, Z],[Z, 0]].
        assert_eq!(k[(0, 2)], C64::ONE);
        assert_eq!(k[(1, 3)], -C64::ONE);
        assert_eq!(k[(2, 0)], C64::ONE);
        assert_eq!(k[(3, 1)], -C64::ONE);
    }

    #[test]
    fn trace_of_kron_is_product_of_traces() {
        let a = CMat::from_fn(2, 2, |i, j| C64::new((i + j) as f64, 0.3));
        let b = CMat::from_fn(3, 3, |i, j| C64::new(i as f64 - j as f64, 1.0));
        let lhs = a.kron(&b).trace();
        let rhs = a.trace() * b.trace();
        assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn pauli_gates_are_unitary_and_hermitian() {
        assert!(pauli_x().is_unitary(1e-12));
        assert!(pauli_x().is_hermitian(1e-12));
        assert!(pauli_z().is_unitary(1e-12));
    }

    #[test]
    fn embed_places_block() {
        let x = pauli_x();
        let e = CMat::embed(&x, 4, &[1, 3]);
        assert_eq!(e[(0, 0)], C64::ONE);
        assert_eq!(e[(2, 2)], C64::ONE);
        assert_eq!(e[(1, 3)], C64::ONE);
        assert_eq!(e[(3, 1)], C64::ONE);
        assert_eq!(e[(1, 1)], C64::ZERO);
        assert!(e.is_unitary(1e-12));
    }

    #[test]
    fn submatrix_extracts() {
        let m = CMat::from_fn(4, 4, |i, j| C64::new((4 * i + j) as f64, 0.0));
        let s = m.submatrix(&[0, 2], &[1, 3]);
        assert_eq!(s[(0, 0)].re, 1.0);
        assert_eq!(s[(1, 1)].re, 11.0);
    }

    #[test]
    fn mul_vec_matches_mul_mat() {
        let m = CMat::from_fn(3, 3, |i, j| C64::new(i as f64 + 1.0, j as f64));
        let v = vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0), C64::new(-1.0, 0.5)];
        let as_mat = CMat::from_fn(3, 1, |i, _| v[i]);
        let prod = m.mul_mat(&as_mat);
        let got = m.mul_vec(&v);
        for i in 0..3 {
            assert!((got[i] - prod[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn one_norm_is_max_column_sum() {
        let m = CMat::from_rows(&[
            &[C64::real(1.0), C64::real(-7.0)],
            &[C64::real(2.0), C64::real(0.5)],
        ]);
        assert!((m.one_norm() - 7.5).abs() < 1e-12);
    }
}
