//! Matrix exponential via scaling-and-squaring with a Taylor core.
//!
//! The pulse optimizer exponentiates skew-Hermitian matrices `-i H dt` whose
//! norms are already small after scaling, so a Taylor series with a fixed
//! term budget reaches machine precision; Padé machinery would be overkill.

use crate::complex::C64;
use crate::matrix::CMat;

/// Number of Taylor terms used by the core series. `‖A‖ ≤ 0.5` after scaling
/// makes 18 terms accurate to well below `1e-15`.
const TAYLOR_TERMS: usize = 18;

/// Computes `exp(A)` for a square complex matrix.
///
/// Uses scaling and squaring: `exp(A) = exp(A / 2^s)^{2^s}` with `s` chosen
/// so the scaled one-norm is at most `0.5`, then a Taylor series.
///
/// ```
/// use qompress_linalg::{C64, CMat, expm};
/// let zero = CMat::zeros(3, 3);
/// assert!(expm(&zero).is_identity(1e-14));
/// ```
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn expm(a: &CMat) -> CMat {
    assert!(a.is_square(), "expm needs a square matrix");
    let norm = a.one_norm();
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(C64::real(1.0 / f64::powi(2.0, s as i32)));
    let mut result = taylor_exp(&scaled);
    for _ in 0..s {
        result = result.mul_mat(&result);
    }
    result
}

/// Computes `exp(-i H t)` for a Hermitian `H`; the workhorse for propagators.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn expm_i_h_t(h: &CMat, t: f64) -> CMat {
    expm(&h.scale(C64::new(0.0, -t)))
}

fn taylor_exp(a: &CMat) -> CMat {
    let n = a.rows();
    let mut acc = CMat::identity(n);
    let mut term = CMat::identity(n);
    for k in 1..=TAYLOR_TERMS {
        term = term.mul_mat(a).scale(C64::real(1.0 / k as f64));
        acc = &acc + &term;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_zero_is_identity() {
        assert!(expm(&CMat::zeros(4, 4)).is_identity(1e-14));
    }

    #[test]
    fn exp_of_diagonal() {
        let d = CMat::diag(&[C64::real(1.0), C64::real(-2.0), C64::new(0.0, 1.5)]);
        let e = expm(&d);
        assert!((e[(0, 0)] - C64::real(1.0f64.exp())).abs() < 1e-12);
        assert!((e[(1, 1)] - C64::real((-2.0f64).exp())).abs() < 1e-12);
        assert!((e[(2, 2)] - C64::cis(1.5)).abs() < 1e-12);
        assert_eq!(e[(0, 1)], C64::ZERO);
    }

    #[test]
    fn exp_of_skew_hermitian_is_unitary() {
        // H Hermitian => exp(-iH) unitary.
        let h = CMat::from_rows(&[
            &[C64::real(1.0), C64::new(0.3, -0.7), C64::new(0.0, 0.2)],
            &[C64::new(0.3, 0.7), C64::real(-0.5), C64::real(1.1)],
            &[C64::new(0.0, -0.2), C64::real(1.1), C64::real(2.0)],
        ]);
        assert!(h.is_hermitian(1e-14));
        let u = expm_i_h_t(&h, 2.7);
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn pauli_x_rotation() {
        // exp(-i theta X) = cos(theta) I - i sin(theta) X.
        let x = CMat::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let theta = 0.9;
        let u = expm_i_h_t(&x, theta);
        let want = &CMat::identity(2).scale(C64::real(theta.cos()))
            + &x.scale(C64::new(0.0, -theta.sin()));
        assert!(u.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn additivity_for_commuting_matrices() {
        // exp(A + B) = exp(A) exp(B) when [A, B] = 0 (diagonal case).
        let a = CMat::diag(&[C64::new(0.1, 0.4), C64::new(-0.2, 0.0)]);
        let b = CMat::diag(&[C64::new(1.0, -0.3), C64::new(0.5, 0.9)]);
        let lhs = expm(&(&a + &b));
        let rhs = expm(&a).mul_mat(&expm(&b));
        assert!(lhs.max_abs_diff(&rhs) < 1e-11);
    }

    #[test]
    fn scaling_handles_large_norm() {
        let h = CMat::from_fn(3, 3, |i, j| {
            if i == j {
                C64::real(40.0 + i as f64)
            } else {
                C64::new(3.0, -(i as f64) + j as f64)
            }
        });
        // Make it Hermitian.
        let h = &h + &h.dagger();
        let u = expm_i_h_t(&h, 1.0);
        assert!(u.is_unitary(1e-8));
    }
}
