//! # qompress-linalg
//!
//! Dense complex linear algebra sized for small qudit Hilbert spaces.
//!
//! This crate is the numerics substrate of the Qompress reproduction: it
//! backs the transmon pulse optimizer ([`qompress-pulse`]) and the
//! mixed-radix state-vector simulator ([`qompress-sim`]). It deliberately
//! implements exactly what those consumers need — complex scalars, dense
//! matrices, Kronecker products and the matrix exponential — with no
//! external numeric dependencies.
//!
//! ```
//! use qompress_linalg::{C64, CMat, expm_i_h_t};
//!
//! // A qubit X rotation: exp(-i (pi/2) X) ~ X up to phase.
//! let x = CMat::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
//! let u = expm_i_h_t(&x, std::f64::consts::FRAC_PI_2);
//! assert!(u.is_unitary(1e-10));
//! ```
//!
//! [`qompress-pulse`]: https://example.invalid/qompress-rs
//! [`qompress-sim`]: https://example.invalid/qompress-rs

#![warn(missing_docs)]
// Dense matrix kernels read more clearly with explicit index loops.
#![allow(clippy::needless_range_loop)]

mod complex;
mod expm;
mod matrix;
mod vector;

pub use complex::C64;
pub use expm::{expm, expm_i_h_t};
pub use matrix::CMat;
pub use vector::{basis_state, equal_up_to_phase, inner, norm_sqr, normalize, overlap_fidelity};
