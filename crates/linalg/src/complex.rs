//! A minimal double-precision complex scalar.
//!
//! The reproduction deliberately avoids external numerics crates, so this
//! module provides the small amount of complex arithmetic needed by the pulse
//! optimizer and the mixed-radix simulator.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// ```
/// use qompress_linalg::C64;
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        C64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// `e^{i theta}` for a real angle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Does not panic, but returns non-finite parts when `self` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64::new(self.re * k, self.im * k)
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * w^{-1}
    fn div(self, o: C64) -> C64 {
        self * o.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, k: f64) -> C64 {
        self.scale(k)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, z: C64) -> C64 {
        z.scale(self)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, o: C64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, o: C64) {
        *self = *self * o;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
    }

    #[test]
    fn conjugate_flips_imaginary() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.conj(), C64::new(3.0, 4.0));
        assert!((z.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn euler_identity() {
        let z = C64::cis(std::f64::consts::PI);
        assert!(close(z, C64::new(-1.0, 0.0)));
    }

    #[test]
    fn exp_matches_cis_for_imaginary_input() {
        let t = 0.731;
        assert!(close((C64::I * t).exp(), C64::cis(t)));
    }

    #[test]
    fn division_roundtrip() {
        let a = C64::new(1.5, -2.5);
        let b = C64::new(0.25, 4.0);
        assert!(close(a / b * b, a));
    }

    #[test]
    fn recip_of_unit_circle_is_conj() {
        let z = C64::cis(1.0);
        assert!(close(z.recip(), z.conj()));
    }

    #[test]
    fn sum_accumulates() {
        let s: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert_eq!(s, C64::new(6.0, 4.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", C64::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", C64::ZERO), "0+0i");
    }

    #[test]
    fn arg_quadrants() {
        assert!((C64::new(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((C64::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < 1e-12);
    }
}
