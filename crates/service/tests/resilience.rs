//! Client-retry and graceful-drain behaviour: `busy` backpressure is
//! ridden out by a [`RetryPolicy`], transport loss is ridden out by a
//! reconnect hook (safe to resubmit — results are content-addressed), a
//! draining server rejects new submits structurally while still
//! streaming in-flight completions, and the backoff schedule itself is
//! deterministic.

use qompress::{Compiler, Strategy};
use qompress_service::{
    loopback, serve_duplex_draining, serve_duplex_with_limits, serve_tcp_draining, DrainHandle,
    RetryPolicy, ServiceClient, ServiceError, ServiceEvent, ServiceLimits,
};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

type LoopClient =
    ServiceClient<BufReader<qompress_service::LoopbackReader>, qompress_service::LoopbackWriter>;

/// Spawns a loopback server with explicit limits; returns the connected
/// client and the server thread handle.
fn connect_with_limits(
    session: Arc<Compiler>,
    limits: ServiceLimits,
) -> (LoopClient, std::thread::JoinHandle<std::io::Result<()>>) {
    let (client_end, server_end) = loopback();
    let (server_reader, server_writer) = server_end.split();
    let server = std::thread::spawn(move || {
        serve_duplex_with_limits(session, server_reader, server_writer, limits)
    });
    let (reader, writer) = client_end.split();
    (ServiceClient::new(BufReader::new(reader), writer), server)
}

/// Same, but on a draining connection handler.
fn connect_draining(
    session: Arc<Compiler>,
    limits: ServiceLimits,
    drain: DrainHandle,
) -> (LoopClient, std::thread::JoinHandle<std::io::Result<()>>) {
    let (client_end, server_end) = loopback();
    let (server_reader, server_writer) = server_end.split();
    let server = std::thread::spawn(move || {
        serve_duplex_draining(session, server_reader, server_writer, limits, drain)
    });
    let (reader, writer) = client_end.split();
    (ServiceClient::new(BufReader::new(reader), writer), server)
}

const SMALL_QASM: &str = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";

/// A fast test policy: generous attempts, millisecond backoff.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(40),
        deadline: Some(Duration::from_secs(10)),
        jitter: true,
        seed: 7,
    }
}

#[test]
fn busy_submits_retry_until_the_queue_drains() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let limits = ServiceLimits {
        max_queue_depth: 1,
        ..ServiceLimits::default()
    };
    let (mut client, server) = connect_with_limits(Arc::clone(&session), limits);
    client.set_retry_policy(fast_policy());

    // Pause the pool so the first submit parks in the queue, filling it.
    session.pause_workers();
    let first = client
        .submit("first", Strategy::Eqm, "grid:2", SMALL_QASM)
        .expect("first submit fills the queue");

    // Un-pause shortly, from outside the blocked client.
    let unpause = {
        let session = Arc::clone(&session);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            session.resume_workers();
        })
    };

    // This submit hits `busy`, backs off, and lands once the queue
    // drains — the caller never sees the transient.
    let second = client
        .submit("second", Strategy::Eqm, "grid:2", SMALL_QASM)
        .expect("retry must ride out the backpressure");
    assert!(
        client.retry_stats().busy_retries >= 1,
        "the transient was retried, not avoided: {:?}",
        client.retry_stats()
    );
    assert_eq!(client.retry_stats().give_ups, 0);

    for expected in [first, second] {
        assert!(matches!(
            client.next_event().expect("completion"),
            ServiceEvent::Done { job, .. } if job == expected
        ));
    }
    unpause.join().expect("unpause thread");
    drop(client);
    server.join().expect("server thread").expect("server exit");
}

#[test]
fn retry_gives_up_at_the_attempt_cap() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let limits = ServiceLimits {
        max_queue_depth: 1,
        ..ServiceLimits::default()
    };
    let (mut client, server) = connect_with_limits(Arc::clone(&session), limits);
    client.set_retry_policy(RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(8),
        deadline: None,
        jitter: false,
        seed: 0,
    });

    // The queue stays full: nobody resumes the pool this time.
    session.pause_workers();
    let parked = client
        .submit("parked", Strategy::Eqm, "grid:2", SMALL_QASM)
        .expect("fills the queue");
    let err = client
        .submit("doomed", Strategy::Eqm, "grid:2", SMALL_QASM)
        .expect_err("cap must surface the busy error");
    assert!(matches!(err, ServiceError::Busy { .. }), "{err}");
    let stats = client.retry_stats();
    assert_eq!(stats.busy_retries, 2, "attempts 2 and 3 were retries");
    assert_eq!(stats.give_ups, 1);

    session.resume_workers();
    assert!(matches!(
        client.next_event().expect("completion"),
        ServiceEvent::Done { job, .. } if job == parked
    ));
    drop(client);
    server.join().expect("server thread").expect("server exit");
}

#[test]
fn fail_fast_policy_surfaces_busy_immediately() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let limits = ServiceLimits {
        max_queue_depth: 1,
        ..ServiceLimits::default()
    };
    let (mut client, server) = connect_with_limits(Arc::clone(&session), limits);
    // The default policy is RetryPolicy::none(): no sleeps, no retries.

    session.pause_workers();
    let parked = client
        .submit("parked", Strategy::Eqm, "grid:2", SMALL_QASM)
        .expect("fills the queue");
    let err = client
        .submit("rejected", Strategy::Eqm, "grid:2", SMALL_QASM)
        .expect_err("no policy, no retry");
    assert!(matches!(err, ServiceError::Busy { .. }), "{err}");
    let stats = client.retry_stats();
    assert_eq!((stats.busy_retries, stats.give_ups), (0, 0));

    session.resume_workers();
    assert!(matches!(
        client.next_event().expect("completion"),
        ServiceEvent::Done { job, .. } if job == parked
    ));
    drop(client);
    server.join().expect("server thread").expect("server exit");
}

#[test]
fn draining_server_rejects_submits_but_streams_in_flight_work() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let drain = DrainHandle::new();
    let (mut client, server) = connect_draining(
        Arc::clone(&session),
        ServiceLimits::default(),
        drain.clone(),
    );
    // Even an aggressive retry policy must not retry `draining`.
    client.set_retry_policy(fast_policy());

    // Park one job in flight, then trip the drain.
    session.pause_workers();
    let inflight = client
        .submit("inflight", Strategy::Eqm, "grid:2", SMALL_QASM)
        .expect("accepted before the drain");
    drain.trigger();

    let err = client
        .submit("late", Strategy::Eqm, "grid:2", SMALL_QASM)
        .expect_err("draining server accepts no new jobs");
    let ServiceError::Draining { message } = &err else {
        panic!("expected a draining rejection, got {err}");
    };
    assert!(message.contains("draining"), "{message}");
    assert_eq!(
        client.retry_stats().busy_retries,
        0,
        "draining is terminal — never retried"
    );

    // Non-submit ops keep working, and the in-flight job still completes
    // with its event streamed to the client.
    assert!(
        client
            .stats()
            .expect("stats during drain")
            .service
            .submitted
            >= 1
    );
    session.resume_workers();
    assert!(matches!(
        client.next_event().expect("in-flight completion"),
        ServiceEvent::Done { job, .. } if job == inflight
    ));

    drop(client);
    server.join().expect("server thread").expect("server exit");
}

#[test]
fn reconnect_hook_rides_over_transport_loss() {
    let session = Arc::new(Compiler::builder().workers(1).build());
    let drain = DrainHandle::new();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let server = {
        let session = Arc::clone(&session);
        let drain = drain.clone();
        std::thread::spawn(move || {
            serve_tcp_draining(listener, session, ServiceLimits::default(), drain)
        })
    };

    let dial = move || -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
        let stream = TcpStream::connect(addr)?;
        Ok((BufReader::new(stream.try_clone()?), stream))
    };
    let (reader, writer) = dial().expect("initial dial");
    // Keep a handle on the first socket so the test can sever it.
    let first_socket = writer.try_clone().expect("clone socket");
    let mut client = ServiceClient::new(reader, writer);
    client.set_retry_policy(fast_policy());
    client.set_reconnect(dial);

    let job = client
        .submit("before", Strategy::Eqm, "grid:2", SMALL_QASM)
        .expect("submit over the first connection");
    assert!(matches!(
        client.next_event().expect("completion"),
        ServiceEvent::Done { job: done, .. } if done == job
    ));

    // Sever the transport under the client's feet.
    first_socket
        .shutdown(std::net::Shutdown::Both)
        .expect("sever first connection");

    // The next submit fails on the dead socket, reconnects, resubmits —
    // safe because an identical circuit resolves to the same cached,
    // content-addressed result.
    let retried = client
        .submit("after", Strategy::Eqm, "grid:2", SMALL_QASM)
        .expect("reconnect must ride over transport loss");
    assert!(matches!(
        client.next_event().expect("completion after reconnect"),
        ServiceEvent::Done { job, .. } if job == retried
    ));
    let stats = client.retry_stats();
    assert!(stats.reconnects >= 1, "the hook was exercised: {stats:?}");

    drop(client);
    drain.trigger();
    server
        .join()
        .expect("server thread")
        .expect("accept loop exit");
}

#[test]
fn io_errors_without_a_reconnect_hook_fail_fast() {
    // A dead loopback: drop the server end immediately.
    let (client_end, server_end) = loopback();
    drop(server_end);
    let (reader, writer) = client_end.split();
    let mut client = ServiceClient::new(BufReader::new(reader), writer);
    client.set_retry_policy(fast_policy());

    let err = client
        .submit("nowhere", Strategy::Eqm, "grid:2", SMALL_QASM)
        .expect_err("no transport, no hook, no retry");
    assert!(matches!(err, ServiceError::Io(_)), "{err}");
    assert_eq!(client.retry_stats().reconnects, 0);
}

#[test]
fn backoff_schedule_is_deterministic_and_bounded() {
    let policy = RetryPolicy::standard();
    let replay = RetryPolicy::standard();
    for i in 0..8 {
        let delay = policy.delay_for(i);
        assert_eq!(delay, replay.delay_for(i), "same seed, same schedule");
        assert!(delay <= policy.max_delay, "retry {i}: {delay:?} over cap");
    }
    // Jitter stays in [0.5, 1.0) of the unjittered value.
    let unjittered = RetryPolicy {
        jitter: false,
        ..RetryPolicy::standard()
    };
    for i in 0..8 {
        let base = unjittered.delay_for(i);
        let jittered = policy.delay_for(i);
        assert!(
            jittered >= base.mul_f64(0.5),
            "retry {i}: {jittered:?} < half of {base:?}"
        );
        assert!(jittered <= base, "retry {i}: {jittered:?} > {base:?}");
    }
    // Different seeds desynchronize at least one retry slot.
    let other = RetryPolicy {
        seed: 999,
        ..RetryPolicy::standard()
    };
    assert!(
        (0..8).any(|i| other.delay_for(i) != policy.delay_for(i)),
        "distinct seeds must produce distinct schedules"
    );
    // The growth is exponential until the cap.
    assert_eq!(unjittered.delay_for(0), Duration::from_millis(25));
    assert_eq!(unjittered.delay_for(1), Duration::from_millis(50));
    assert_eq!(unjittered.delay_for(5), Duration::from_millis(800));
    assert_eq!(unjittered.delay_for(6), Duration::from_secs(1), "capped");
    assert_eq!(unjittered.delay_for(31), Duration::from_secs(1));
    assert_eq!(unjittered.delay_for(63), Duration::from_secs(1));
}
